"""repro: reproduction of "Performance Analysis of Sequence Alignment
Applications" (Sánchez, Salamí, Ramirez, Valero — IISWC 2006).

The package stacks four layers:

* :mod:`repro.bio` — sequences, scoring matrices, synthetic databases;
* :mod:`repro.align` — the five applications under study: scalar and
  SIMD Smith-Waterman, BLAST, and FASTA;
* :mod:`repro.isa` / :mod:`repro.kernels` — instrumented kernels that
  execute the real algorithms while emitting PowerPC/Altivec-style
  dynamic instruction traces;
* :mod:`repro.uarch` / :mod:`repro.analysis` — a Turandot-style
  out-of-order superscalar simulator and the experiment drivers that
  regenerate every table and figure of the paper.

Quick start::

    from repro import quickstart
    print(quickstart())
"""

from repro.align import smith_waterman, sw_score
from repro.analysis import ExperimentContext, run_experiment
from repro.bio import BLOSUM62, Sequence, default_query, generate_database
from repro.bio.synthetic import SyntheticDatabaseConfig
from repro.kernels import create_kernel
from repro.uarch import PROC_4WAY, simulate
from repro.workloads import WorkloadSuite

__version__ = "1.0.0"

__all__ = [
    "smith_waterman",
    "sw_score",
    "ExperimentContext",
    "run_experiment",
    "BLOSUM62",
    "Sequence",
    "default_query",
    "generate_database",
    "SyntheticDatabaseConfig",
    "create_kernel",
    "PROC_4WAY",
    "simulate",
    "WorkloadSuite",
    "quickstart",
]


def quickstart() -> str:
    """Align two short sequences and report the paper's intro example."""
    alignment = smith_waterman("CSTTPGGG", "CSDTNGLAWGG")
    return alignment.pretty()
