"""FlowLint: whole-repo call-graph + dataflow analysis (FL001-FL005).

The single-function AST layers (RepoLint, TraceLint, SweepLint) cannot
see across calls: a wall-clock read two helpers below a cached task
body, a configuration field read deep in the cache model but absent
from the cache key, or a ``time.sleep`` hidden inside a synchronous
helper a serve coroutine calls are all invisible to per-file pattern
matching.  This module builds a *whole-repo* model and checks
reachability and dataflow properties over it:

1. a **module symbol table** — every function, method, class (with
   bases), module-level dispatch table, and re-export under
   ``src/repro``;
2. a **call graph** — direct calls, method resolution through local
   type inference (``x = ClassName(...)`` / annotated parameters /
   ``self``), dict dispatch (``TASK_KINDS[kind](payload)`` — the
   runtime's task-kind dispatch), pool callbacks (``pool.map(f, ...)``)
   and one-hop import re-exports;
3. **forward dataflow facts** per function — nondeterminism sources,
   blocking primitives, environment reads, and a class-taint pass that
   tracks values of the configuration dataclasses
   (``ProcessorConfig`` and friends) and the fork-shared plane classes
   through assignments, attribute reads, and nested functions.

On top of the graph, five interprocedural rule families:

=======  =============================================================
FL001    nondeterminism reachable from a cached task body: any
         function transitively reachable from the runtime's cached
         task kinds (``simulate``, ``trace``, ``sweep_point``,
         ``lint``, ...) that can reach an unseeded RNG, a wall-clock
         read, or unsorted set iteration.  Interprocedural REP001.
FL002    cache-key soundness: every configuration-dataclass field
         read anywhere under the simulate call graph must also be
         read by ``runtime.keys.config_key``; a field that influences
         simulation but escapes the key aliases distinct
         configurations onto one cache entry.  Interprocedural REP003
         (REP003 checks *declared* fields; FL002 checks *used* ones).
FL003    fork-shared-state safety: writes to instances of the warmed
         lockstep/decode plane classes (or cross-module global
         mutation) from code reachable in fork workers.  Pre-fork
         planes are inherited copy-on-write as shared read-only
         state; a worker-side write silently forks the physical pages
         and defeats the sharing — or, in-process, corrupts every
         other lane.
FL004    blocking-call reachability in serve coroutines: REP006
         through the call graph, so a ``time.sleep`` one synchronous
         helper deep still stalls the event loop and still fails.
FL005    environment-influence escape: an environment variable read
         reachable from a cached task body that is not salted into
         the cache key (compare ``REPRO_SCALE``, which flows through
         ``scale_factor`` into every key) silently aliases cache
         entries produced under different environments.  The same
         rule covers artifact-store reads: loading from the
         content-addressed store on a cached-task path without
         deriving the key through the code-salted ``artifact_key``
         can serve artifacts written by a different code version.
=======  =============================================================

Suppression: append ``# flowlint: disable=FL00x`` to the *offending*
line (where the violation anchors), or ``# flowlint:
disable-file=FL00x`` anywhere in the file — the same machinery as
RepoLint (:func:`repro.verify.repolint.suppression_maps`).

The graph is picklable and content-addressed: :func:`build_graph`
caches the linked graph under ``<cache-dir>/flow/`` keyed by a digest
of every source file, so warm runs (CI re-runs, ``--strict``
experiment starts) skip the whole-repo scan.  ``repro lint-flow``
is the CLI; ``--jobs N`` fans the per-module scan out over the
runtime worker pool via the ``flow_facts`` task kind.
"""

from __future__ import annotations

import ast
import hashlib
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.verify.repolint import (
    PACKAGE_ROOT,
    LintViolation,
    _dataclass_fields_from_source,
    blocking_findings,
    nondet_findings,
    suppression_maps,
)

#: Bump when the analysis itself changes shape: cached graphs carry the
#: version in their content digest, so stale pickles self-invalidate.
ENGINE_VERSION = 1

FLOW_RULES: dict[str, str] = {
    "FL001": "nondeterminism reachable from a cached task body",
    "FL002": "config field read under simulate but absent from the "
             "cache key",
    "FL003": "write to pre-fork shared state from fork-worker code",
    "FL004": "blocking call reachable from a serve coroutine",
    "FL005": "environment or artifact-store read reaching cached "
             "results without key salting",
}

#: The runtime's dispatch table; its entries are the cached task roots.
_TASKS_MODULE = "repro.runtime.tasks"
_TASK_TABLE = "TASK_KINDS"
#: Task functions whose results never enter the content-addressed
#: cache (the executor's own test scaffolding may sleep/exit freely).
_UNCACHED_TASKS = {"execute_selftest"}
#: The cached tasks that run the simulator (FL002's root set).
_SIM_TASKS = {
    "execute_simulate", "execute_simulate_batch",
    "execute_sweep_point", "execute_sweep_batch",
}
#: Entry points that execute inside fork workers over pre-warmed state.
_FORK_EXTRA_ROOTS = ("repro.uarch.pipeline.lockstep._run_fork_chunk",)
#: The single definition of configuration → cache-key coverage.
_KEY_FUNCTION = "repro.runtime.keys.config_key"
#: Key builders: environment reads reachable from these are "salted".
_KEY_ROOTS = (
    "repro.runtime.keys.simulate_key",
    "repro.runtime.keys.trace_task_key",
    "repro.runtime.keys.search_shard_key",
)
#: Artifact-store read methods: loading a compiled artifact by digest.
_STORE_READS = ("repro.store.artifacts.ArtifactStore.load_arrays",)
#: The one code-salted key builder for artifact-store entries.  A store
#: read reachable from a cached task must derive its key here (directly
#: or through a helper) or it can serve artifacts written by a
#: different code version.
_STORE_SALT = "repro.store.artifacts.artifact_key"
#: The storage layer itself pairs every read with the salted key by
#: construction, so its own modules are exempt.
_STORE_PREFIX = "repro.store"
#: Packages whose coroutines must never block the event loop: the
#: single-server serve layer and the cluster router/supervisor built
#: on top of it (one stalled router coroutine stalls every replica's
#: traffic, so the cluster tier is held to the same standard).
_SERVE_PREFIXES = ("repro.serve", "repro.cluster")

#: Receiver methods that dispatch a function argument onto a pool.
_CALLBACK_METHODS = {
    "map", "imap", "imap_unordered", "starmap", "submit", "apply_async",
}
#: Mutating container methods: calling one on ``tainted.attr`` counts
#: as a write to that attribute for FL003.
_MUTATOR_METHODS = {
    "append", "extend", "add", "insert", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "sort", "reverse",
}


@dataclass(frozen=True)
class FlowViolation:
    """One flow finding, anchored where the offending code lives."""

    rule: str
    path: str
    line: int
    message: str
    chain: tuple[str, ...] = ()

    def __str__(self) -> str:
        via = ""
        if self.chain:
            via = "  [" + " -> ".join(
                part.rsplit(".", 1)[-1] for part in self.chain
            ) + "]"
        return f"{self.path}:{self.line}: {self.rule} {self.message}{via}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "chain": list(self.chain),
        }


class FlowLintError(RuntimeError):
    """Raised by strict hooks when the flow rules find violations."""

    def __init__(self, violations: list[FlowViolation]) -> None:
        self.violations = violations
        lines = "\n".join(str(violation) for violation in violations)
        super().__init__(
            f"flow lint failed with {len(violations)} violation(s):\n{lines}"
        )


@dataclass
class TaintSpec:
    """What the dataflow pass tracks.

    ``config_fields`` maps a dataclass qualname to its declared fields
    (field name → the taint-class qualname of the field's own type, or
    ``None`` for leaves); reads of these fields feed FL002.
    ``name_seeds`` are parameter-name conventions used when a
    parameter carries no annotation.  ``shared`` maps fork-shared
    plane classes to the modules allowed to write them (FL003).
    """

    config_fields: dict[str, dict[str, str | None]] = field(
        default_factory=dict
    )
    name_seeds: dict[str, str] = field(default_factory=dict)
    shared: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def class_names(self) -> dict[str, str]:
        """bare class name → qualname for every tracked class."""
        names = {}
        for qual in (*self.config_fields, *self.shared):
            names[qual.rsplit(".", 1)[-1]] = qual
        return names


_CONFIG_MODULE = "repro.uarch.config"
_SHARED_OWNERS = {
    # decode.py owns the lazy `_decoded` plane memo on Trace, exactly
    # as the isa modules own the columns (mirrors REP002's ownership).
    "repro.isa.trace.Trace": (
        "repro/isa/trace.py", "repro/isa/builder.py",
        "repro/isa/serialize.py", "repro/uarch/pipeline/decode.py",
    ),
    "repro.uarch.pipeline.decode.DecodedTrace": (
        "repro/uarch/pipeline/decode.py",
    ),
    "repro.uarch.pipeline.lockstep.SharedPlanes": (
        "repro/uarch/pipeline/lockstep.py",
    ),
    "repro.uarch.pipeline.lockstep._BranchPlane": (
        "repro/uarch/pipeline/lockstep.py",
    ),
    "repro.uarch.pipeline.lockstep._FrontPlane": (
        "repro/uarch/pipeline/lockstep.py",
    ),
}


def default_taint_spec(package_root: Path | None = None) -> TaintSpec:
    """The repo's spec: config dataclasses + lockstep plane classes."""
    root = PACKAGE_ROOT if package_root is None else package_root
    config_source = (root / "uarch" / "config.py").read_text()
    tree = ast.parse(config_source)
    declared = _dataclass_fields_from_source(config_source)
    # Field type names, for taint propagation through nested configs
    # (config.memory → MemoryConfig, memory.dl1 → CacheConfig, ...).
    annotations: dict[str, dict[str, str]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef) or node.name not in declared:
            continue
        per_field: dict[str, str] = {}
        for statement in node.body:
            if isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                per_field[statement.target.id] = _annotation_name(
                    statement.annotation
                ) or ""
        annotations[node.name] = per_field
    config_fields: dict[str, dict[str, str | None]] = {}
    for class_name, fields in declared.items():
        qual = f"{_CONFIG_MODULE}.{class_name}"
        config_fields[qual] = {}
        for field_name in fields:
            type_name = annotations.get(class_name, {}).get(field_name, "")
            config_fields[qual][field_name] = (
                f"{_CONFIG_MODULE}.{type_name}"
                if type_name in declared else None
            )
    name_seeds = {
        "config": f"{_CONFIG_MODULE}.ProcessorConfig",
        "memory": f"{_CONFIG_MODULE}.MemoryConfig",
        "branch": f"{_CONFIG_MODULE}.BranchPredictorConfig",
        "branch_config": f"{_CONFIG_MODULE}.BranchPredictorConfig",
        "cache": f"{_CONFIG_MODULE}.CacheConfig",
        "il1": f"{_CONFIG_MODULE}.CacheConfig",
        "dl1": f"{_CONFIG_MODULE}.CacheConfig",
        "l2": f"{_CONFIG_MODULE}.CacheConfig",
        "tlb": f"{_CONFIG_MODULE}.TlbConfig",
        "itlb": f"{_CONFIG_MODULE}.TlbConfig",
        "dtlb": f"{_CONFIG_MODULE}.TlbConfig",
        "trace": "repro.isa.trace.Trace",
        "plane": "repro.uarch.pipeline.decode.DecodedTrace",
        "shared": "repro.uarch.pipeline.lockstep.SharedPlanes",
    }
    return TaintSpec(
        config_fields=config_fields,
        name_seeds=name_seeds,
        shared=dict(_SHARED_OWNERS),
    )


# ----------------------------------------------------------------------
# Per-function facts (plain data: the graph must pickle)
# ----------------------------------------------------------------------

@dataclass
class FunctionFacts:
    """Everything the rules need to know about one function."""

    qualname: str
    module: str
    relative: str
    line: int
    cls: str | None = None
    is_coroutine: bool = False
    #: Raw call descriptors ``(kind, data, line)`` resolved at link
    #: time: ("qual", dotted), ("typed", (class_qual, method)),
    #: ("method", name), ("table", (module, table)), ("ref", dotted).
    calls: list[tuple] = field(default_factory=list)
    nondet: list[tuple[int, str]] = field(default_factory=list)
    blocking: list[tuple[int, str]] = field(default_factory=list)
    env_reads: list[tuple[int, str | None]] = field(default_factory=list)
    #: (line, class qualname, field) — config-dataclass field reads.
    field_reads: list[tuple[int, str, str]] = field(default_factory=list)
    #: (line, class qualname, attr) — writes on tainted instances.
    tainted_writes: list[tuple[int, str, str]] = field(default_factory=list)
    #: (line, name, owning module) — module-global mutation.
    global_writes: list[tuple[int, str, str]] = field(default_factory=list)


@dataclass
class ClassFacts:
    qualname: str
    module: str
    name: str
    line: int
    bases: list[str] = field(default_factory=list)
    methods: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleFacts:
    module: str
    relative: str
    functions: dict[str, FunctionFacts] = field(default_factory=dict)
    classes: dict[str, ClassFacts] = field(default_factory=dict)
    #: Dispatch tables: name → function qualnames (the dict's values).
    tables: dict[str, list[str]] = field(default_factory=dict)
    #: Module-level ``from x import y`` map: name → dotted target.
    imports: dict[str, str] = field(default_factory=dict)


def _annotation_name(node: ast.expr | None) -> str | None:
    """The rightmost class-ish name of an annotation expression."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split("[")[0].split(".")[-1].strip() or None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.BinOp):  # "ProcessorConfig | None"
        return _annotation_name(node.left)
    if isinstance(node, ast.Subscript):  # Optional[X] / list[X]
        base = _annotation_name(node.value)
        if base in {"Optional", "Annotated"}:
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return _annotation_name(inner)
        return base
    return None


# ----------------------------------------------------------------------
# Module scanning
# ----------------------------------------------------------------------

class _ModuleScanner:
    """Extract one module's symbol table, raw calls, and local facts."""

    def __init__(
        self,
        source: str,
        relative: str,
        module: str,
        is_package: bool,
        spec: TaintSpec,
    ) -> None:
        self.source = source
        self.relative = relative
        self.module = module
        self.is_package = is_package
        self.spec = spec
        self.tree = ast.parse(source)
        self.package = module.split(".", 1)[0]
        # name → module path for plain ``import x[.y] [as z]``.
        self.module_aliases: dict[str, str] = {}
        # name → dotted target for ``from m import n [as z]``.
        self.from_imports: dict[str, str] = {}
        # Aliases in RepoLint's shape, for the shared fact cores.
        self.rep_aliases: dict[str, str] = {}
        self.local_functions: set[str] = set()
        self.local_classes: dict[str, ast.ClassDef] = {}
        self.module_globals: set[str] = set()
        #: class qualname → {attr → taint class} from __init__ bodies.
        self.class_attr_taints: dict[str, dict[str, str]] = {}
        #: bare name → taint-class qualname, for annotation seeds.
        self.known_classes = spec.class_names()
        self.facts = ModuleFacts(module=module, relative=relative)

    # -- symbol collection -------------------------------------------

    def scan(self) -> ModuleFacts:
        # Imports are collected from the WHOLE tree, not just module
        # top level: the repo leans on lazy function-level imports
        # (CLI subcommands, strict hooks), and a call through one must
        # still resolve.  The union over scopes is a sound
        # over-approximation for name→module resolution.
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self._collect_import(node)
        for node in self.tree.body:
            self._collect_top_level(node)
        self.facts.imports = dict(self.from_imports)
        # Dispatch tables need local function names; second pass.
        for node in self.tree.body:
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Dict
            ):
                self._collect_table(node)
        # Class attribute taints (self.config = config in __init__)
        # must exist before methods are scanned.
        for class_node in self.local_classes.values():
            self._collect_attr_taints(class_node)
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_function(node, cls=None)
            elif isinstance(node, ast.ClassDef):
                self._scan_class(node)
        return self.facts

    def _collect_import(self, node: ast.Import | ast.ImportFrom) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                first = alias.name.split(".")[0]
                if alias.asname:
                    self.module_aliases[alias.asname] = alias.name
                    self.rep_aliases[alias.asname] = alias.name
                else:
                    self.module_aliases[first] = first
                    self.rep_aliases[first] = alias.name
        else:
            base = self._import_base(node)
            for alias in node.names:
                local = alias.asname or alias.name
                if base is not None:
                    self.from_imports[local] = f"{base}.{alias.name}"

    def _collect_top_level(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.local_functions.add(node.name)
        elif isinstance(node, ast.ClassDef):
            self.local_classes[node.name] = node
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.module_globals.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            self.module_globals.add(node.target.id)

    def _import_base(self, node: ast.ImportFrom) -> str | None:
        if not node.level:
            return node.module
        parts = self.module.split(".")
        package_path = parts if self.is_package else parts[:-1]
        strip = node.level - 1
        if strip > len(package_path):
            return None
        base = package_path[:len(package_path) - strip]
        if node.module:
            base = base + [node.module]
        return ".".join(base) if base else None

    def _collect_table(self, node: ast.Assign) -> None:
        names = [
            target.id for target in node.targets
            if isinstance(target, ast.Name)
        ]
        if not names:
            return
        values: list[str] = []
        assert isinstance(node.value, ast.Dict)
        for value in node.value.values:
            if not isinstance(value, ast.Name):
                return
            resolved = self._resolve_bare(value.id)
            if resolved is None:
                return
            values.append(resolved)
        if values:
            for name in names:
                self.facts.tables[name] = values

    def _resolve_bare(self, name: str) -> str | None:
        """A bare name's dotted target, if it names repo code."""
        if name in self.local_functions or name in self.local_classes:
            return f"{self.module}.{name}"
        target = self.from_imports.get(name)
        if target and target.split(".", 1)[0] == self.package:
            return target
        return None

    def _class_qual(self, name: str) -> str | None:
        """A bare name as a class qualname (local, imported, or spec)."""
        if name in self.local_classes:
            return f"{self.module}.{name}"
        target = self.from_imports.get(name)
        if target and target.split(".", 1)[0] == self.package:
            return target
        return self.known_classes.get(name)

    def _collect_attr_taints(self, node: ast.ClassDef) -> None:
        qual = f"{self.module}.{node.name}"
        taints: dict[str, str] = {}
        for statement in node.body:
            if (
                isinstance(statement, ast.FunctionDef)
                and statement.name == "__init__"
            ):
                scanner = _FunctionScanner(
                    self, statement, cls_qual=qual,
                    qualname=f"{qual}.__init__", collect_only=True,
                )
                scanner.run_taint()
                for target, value in scanner.self_assignments:
                    if value is not None:
                        taints[target] = value
        if taints:
            self.class_attr_taints[qual] = taints

    def _scan_class(self, node: ast.ClassDef) -> None:
        qual = f"{self.module}.{node.name}"
        bases: list[str] = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                resolved = self._class_qual(base.id)
                bases.append(resolved or base.id)
            elif isinstance(base, ast.Attribute):
                bases.append(base.attr)
        facts = ClassFacts(
            qualname=qual, module=self.module, name=node.name,
            line=node.lineno, bases=bases,
        )
        for statement in node.body:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                facts.methods[statement.name] = (
                    f"{qual}.{statement.name}"
                )
                self._scan_function(statement, cls=qual)
        self.facts.classes[node.name] = facts

    def _scan_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, cls: str | None
    ) -> None:
        qualname = (
            f"{cls}.{node.name}" if cls else f"{self.module}.{node.name}"
        )
        scanner = _FunctionScanner(self, node, cls_qual=cls, qualname=qualname)
        self.facts.functions[qualname] = scanner.run()


class _FunctionScanner:
    """Taint + fact extraction for one function (nested defs included)."""

    def __init__(
        self,
        owner: _ModuleScanner,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls_qual: str | None,
        qualname: str,
        collect_only: bool = False,
    ) -> None:
        self.owner = owner
        self.node = node
        self.cls_qual = cls_qual
        self.qualname = qualname
        self.collect_only = collect_only
        self.spec = owner.spec
        self.env: dict[str, str] = {}
        self.dispatch_env: dict[str, str] = {}
        #: (attr, taint) assignments to ``self`` (attr-taint pre-pass).
        self.self_assignments: list[tuple[str, str | None]] = []
        self.field_reads: set[tuple[int, str, str]] = set()
        self.tainted_writes: set[tuple[int, str, str]] = set()
        self.global_names: set[str] = set()
        self._globals_out: set[tuple[int, str, str]] = set()

    # -- taint environment -------------------------------------------

    def _seed_params(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef,
        env: dict[str, str],
    ) -> None:
        args = node.args
        every = (
            list(args.posonlyargs) + list(args.args)
            + list(args.kwonlyargs)
        )
        for arg in every:
            if arg.arg == "self" and self.cls_qual:
                env["self"] = self.cls_qual
                continue
            annotated = _annotation_name(arg.annotation)
            if annotated:
                qual = self.owner._class_qual(annotated)
                if qual:
                    env[arg.arg] = qual
                    continue
            seed = self.spec.name_seeds.get(arg.arg)
            if seed and arg.annotation is None:
                env[arg.arg] = seed

    def run_taint(self) -> None:
        self._seed_params(self.node, self.env)
        # Fixpoint over the body: taint only accumulates, and two
        # passes settle the common backward-reference shapes.
        for _ in range(3):
            before = dict(self.env)
            for statement in self.node.body:
                self._exec(statement, self.env)
            if self.env == before:
                break

    def _eval(self, node: ast.expr, env: dict[str, str]) -> str | None:
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._eval(node.value, env)
            if base is None:
                return None
            fields = self.spec.config_fields.get(base)
            if fields is not None:
                if node.attr in fields:
                    self.field_reads.add((node.lineno, base, node.attr))
                    return fields[node.attr]
                return None
            return self.owner.class_attr_taints.get(base, {}).get(node.attr)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id == "replace" and node.args:
                    target = self.owner.from_imports.get("replace", "")
                    if target == "dataclasses.replace":
                        return self._eval(node.args[0], env)
                qual = self.owner._class_qual(func.id)
                if qual:
                    return qual
            return None
        if isinstance(node, ast.IfExp):
            return (
                self._eval(node.body, env) or self._eval(node.orelse, env)
            )
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value, env)
            if isinstance(node.target, ast.Name):
                env[node.target.id] = value or env.get(node.target.id, None)
                if env.get(node.target.id) is None:
                    env.pop(node.target.id, None)
            return value
        return None

    def _assign(
        self, target: ast.expr, taint: str | None, env: dict[str, str],
        line: int,
    ) -> None:
        if isinstance(target, ast.Name):
            if taint is None:
                env.pop(target.id, None)
            else:
                env[target.id] = taint
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, None, env, line)
            return
        if isinstance(target, ast.Starred):
            self._assign(target.value, None, env, line)
            return
        base = target
        while isinstance(base, ast.Subscript):
            base = base.value
        if isinstance(base, ast.Attribute):
            receiver = self._eval(base.value, env)
            if receiver is not None:
                self.tainted_writes.add((line, receiver, base.attr))
            if (
                isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and base is target
            ):
                self.self_assignments.append((base.attr, taint))
        elif isinstance(base, ast.Name) and base is not target:
            # Subscript store through a bare name: module-global
            # mutation if the name is module-level or imported.
            self._record_global_write(base.id, line)

    def _record_global_write(self, name: str, line: int) -> None:
        owner = None
        if name in self.global_names or name in self.owner.module_globals:
            owner = self.owner.module
        else:
            target = self.owner.from_imports.get(name)
            if target and target.split(".", 1)[0] == self.owner.package:
                owner = target.rsplit(".", 1)[0]
        if owner is not None:
            self._globals_out.add((line, name, owner))

    def _exec(self, node: ast.stmt, env: dict[str, str]) -> None:
        if isinstance(node, ast.Global):
            self.global_names.update(node.names)
        elif isinstance(node, ast.Assign):
            taint = self._eval(node.value, env)
            if (
                isinstance(node.value, ast.Subscript)
                and isinstance(node.value.value, ast.Name)
                and node.value.value.id in self.owner.facts.tables
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.dispatch_env[target.id] = (
                            node.value.value.id
                        )
            for target in node.targets:
                self._assign(target, taint, env, node.lineno)
        elif isinstance(node, ast.AnnAssign):
            taint = (
                self._eval(node.value, env) if node.value else None
            )
            if taint is None:
                annotated = _annotation_name(node.annotation)
                if annotated:
                    taint = self.owner._class_qual(annotated)
            self._assign(node.target, taint, env, node.lineno)
        elif isinstance(node, ast.AugAssign):
            self._eval(node.value, env)
            self._assign(node.target, None, env, node.lineno)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._eval(node.iter, env)
            self._assign(node.target, None, env, node.lineno)
            for child in node.body + node.orelse:
                self._exec(child, env)
        elif isinstance(node, (ast.While, ast.If)):
            self._eval(node.test, env)
            for child in node.body + node.orelse:
                self._exec(child, env)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                taint = self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, taint, env, node.lineno)
            for child in node.body:
                self._exec(child, env)
        elif isinstance(node, ast.Try):
            for child in (
                node.body + node.orelse + node.finalbody
                + [s for handler in node.handlers for s in handler.body]
            ):
                self._exec(child, env)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = dict(env)
            self._seed_params(node, inner)
            for child in node.body:
                self._exec(child, inner)
        elif isinstance(node, (ast.Return, ast.Expr)):
            if node.value is not None:
                self._eval(node.value, env)
        # Remaining statement kinds carry no taint effects we track.

    # -- full fact extraction ----------------------------------------

    def run(self) -> FunctionFacts:
        self.run_taint()
        facts = FunctionFacts(
            qualname=self.qualname,
            module=self.owner.module,
            relative=self.owner.relative,
            line=self.node.lineno,
            cls=self.cls_qual,
            is_coroutine=isinstance(self.node, ast.AsyncFunctionDef),
        )
        facts.nondet = self._nondet()
        facts.blocking = blocking_findings(self.node, self.owner.rep_aliases)
        self._walk_effects(facts)
        facts.field_reads = sorted(self.field_reads)
        facts.tainted_writes = sorted(self.tainted_writes)
        facts.global_writes = sorted(
            set(facts.global_writes) | self._globals_out
        )
        return facts

    def _nondet(self) -> list[tuple[int, str]]:
        found = nondet_findings(
            self.node, self.owner.rep_aliases, self.owner.from_imports
        )
        found.extend(self._unsorted_set_iteration())
        return sorted(set(found))

    def _unsorted_set_iteration(self) -> list[tuple[int, str]]:
        """Iterating a set of strings is PYTHONHASHSEED-dependent."""
        sorted_args: set[int] = set()
        for node in ast.walk(self.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in {"sorted", "len", "min", "max", "sum"}
            ):
                for argument in node.args:
                    sorted_args.add(id(argument))
        iterables: list[ast.expr] = []
        for node in ast.walk(self.node):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp,
                       ast.GeneratorExp)
            ):
                iterables.extend(gen.iter for gen in node.generators)
        findings = []
        for iterable in iterables:
            if id(iterable) in sorted_args:
                continue
            is_set = isinstance(iterable, (ast.Set, ast.SetComp)) or (
                isinstance(iterable, ast.Call)
                and isinstance(iterable.func, ast.Name)
                and iterable.func.id in {"set", "frozenset"}
            )
            if is_set:
                findings.append((
                    iterable.lineno,
                    "iterates a set in hash order; wrap in sorted() — "
                    "string hashing varies per process (PYTHONHASHSEED)",
                ))
        return findings

    def _walk_env(self) -> dict[str, str]:
        """The settled taint env plus nested-function param seeds.

        The effects walk below is flat (``ast.walk``), so parameters
        of nested helpers (``config_key``'s ``cache_key(cache)``) must
        be visible when their bodies' attribute loads are evaluated;
        outer bindings win on collision.
        """
        env = dict(self.env)
        for node in ast.walk(self.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is self.node:
                    continue
                inner: dict[str, str] = {}
                self._seed_params(node, inner)
                for name, taint in inner.items():
                    env.setdefault(name, taint)
        return env

    def _walk_effects(self, facts: FunctionFacts) -> None:
        owner = self.owner
        awaited_env = self._walk_env()
        for node in ast.walk(self.node):
            if isinstance(node, ast.Call):
                self._record_call(node, facts, awaited_env)
                self._record_env_call(node, facts)
                self._record_mutator(node, facts, awaited_env)
            elif isinstance(node, ast.Subscript) and isinstance(
                node.ctx, ast.Load
            ):
                chain = _dotted(node.value)
                if chain in {"os.environ"} or (
                    chain == "environ"
                    and owner.from_imports.get("environ") == "os.environ"
                ):
                    facts.env_reads.append(
                        (node.lineno, _const_str(node.slice))
                    )
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                # Every attribute load on a typed receiver: a declared
                # dataclass field becomes a field read (the taint pass
                # only sees assignment positions; this catches reads
                # embedded in tuples, call arguments, f-strings, ...),
                # anything else a typed call edge so property reads
                # resolve through the graph.
                receiver = self._eval_quiet(node.value, awaited_env)
                if receiver is None:
                    continue
                fields = self.spec.config_fields.get(receiver)
                if fields is not None and node.attr in fields:
                    self.field_reads.add(
                        (node.lineno, receiver, node.attr)
                    )
                else:
                    facts.calls.append(
                        ("typed", (receiver, node.attr), node.lineno)
                    )

    def _eval_quiet(self, node: ast.expr, env: dict[str, str]) -> str | None:
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._eval_quiet(node.value, env)
            if base is None:
                return None
            fields = self.spec.config_fields.get(base)
            if fields is not None:
                return fields.get(node.attr)
            return self.owner.class_attr_taints.get(base, {}).get(node.attr)
        return None

    def _record_call(
        self, node: ast.Call, facts: FunctionFacts, env: dict[str, str]
    ) -> None:
        owner = self.owner
        func = node.func
        line = node.lineno
        if isinstance(func, ast.Name):
            resolved = owner._resolve_bare(func.id)
            if resolved is not None:
                facts.calls.append(("qual", resolved, line))
            elif func.id in self.dispatch_env:
                facts.calls.append(
                    ("table", (owner.module, self.dispatch_env[func.id]),
                     line)
                )
            return
        if isinstance(func, ast.Subscript) and isinstance(
            func.value, ast.Name
        ) and func.value.id in owner.facts.tables:
            facts.calls.append(
                ("table", (owner.module, func.value.id), line)
            )
            return
        if not isinstance(func, ast.Attribute):
            return
        # Dotted module call: repro.uarch.simulator.simulate(...).
        chain = _name_chain(func)
        if chain is not None:
            root = chain[0]
            if root in owner.module_aliases:
                full = ".".join(
                    [owner.module_aliases[root], *chain[1:]]
                )
                if full.split(".", 1)[0] == owner.package:
                    facts.calls.append(("qual", full, line))
                return
            if root in owner.from_imports:
                full = ".".join([owner.from_imports[root], *chain[1:]])
                if full.split(".", 1)[0] == owner.package:
                    facts.calls.append(("qual", full, line))
                return
        # Pool callbacks: pool.map(worker, ...) runs `worker`.
        if func.attr in _CALLBACK_METHODS:
            for argument in node.args:
                if isinstance(argument, ast.Name):
                    resolved = owner._resolve_bare(argument.id)
                    if resolved is not None:
                        facts.calls.append(("ref", resolved, line))
        receiver = self._eval_quiet(func.value, env)
        if receiver is not None:
            facts.calls.append(("typed", (receiver, func.attr), line))
        else:
            facts.calls.append(("method", func.attr, line))

    def _record_env_call(self, node: ast.Call, facts: FunctionFacts) -> None:
        func = node.func
        dotted = _dotted(func)
        if dotted in {"os.environ.get", "os.getenv"}:
            variable = _const_str(node.args[0]) if node.args else None
            facts.env_reads.append((node.lineno, variable))
        elif dotted in {"environ.get", "getenv"}:
            root = dotted.split(".", 1)[0]
            target = self.owner.from_imports.get(root, "")
            if target in {"os.environ", "os.getenv"}:
                variable = _const_str(node.args[0]) if node.args else None
                facts.env_reads.append((node.lineno, variable))

    def _record_mutator(
        self, node: ast.Call, facts: FunctionFacts, env: dict[str, str]
    ) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATOR_METHODS
        ):
            return
        target = func.value
        base = target
        while isinstance(base, ast.Subscript):
            base = base.value
        if isinstance(base, ast.Attribute):
            receiver = self._eval_quiet(base.value, env)
            if receiver is not None:
                self.tainted_writes.add(
                    (node.lineno, receiver, base.attr)
                )
        elif isinstance(base, ast.Name):
            self._record_global_write(base.id, node.lineno)


def _name_chain(node: ast.expr) -> list[str] | None:
    """A pure dotted-name chain (no calls/subscripts), or ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _dotted(node: ast.expr) -> str | None:
    chain = _name_chain(node)
    return ".".join(chain) if chain else None


def _const_str(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def scan_module(
    source: str,
    relative: str,
    module: str,
    is_package: bool = False,
    spec: TaintSpec | None = None,
) -> ModuleFacts:
    """Scan one module's source into plain facts (worker-friendly)."""
    if spec is None:
        spec = default_taint_spec()
    return _ModuleScanner(source, relative, module, is_package, spec).scan()


# ----------------------------------------------------------------------
# Linking: facts → graph
# ----------------------------------------------------------------------

@dataclass
class FlowGraph:
    """The linked whole-repo model (picklable, content-addressed)."""

    source_root: str
    package: str
    digest: str
    functions: dict[str, FunctionFacts]
    classes: dict[str, ClassFacts]
    tables: dict[tuple[str, str], list[str]]
    imports: dict[str, dict[str, str]]
    edges: dict[str, list[tuple[str, int]]]
    modules: int = 0
    built_seconds: float = 0.0
    from_cache: bool = False

    def callees(self, qualname: str) -> list[str]:
        return sorted({callee for callee, _ in self.edges.get(qualname, [])})


def _link(
    modules: list[ModuleFacts],
    source_root: Path,
    package: str,
    digest: str,
) -> FlowGraph:
    functions: dict[str, FunctionFacts] = {}
    classes: dict[str, ClassFacts] = {}
    tables: dict[tuple[str, str], list[str]] = {}
    imports: dict[str, dict[str, str]] = {}
    for facts in modules:
        functions.update(facts.functions)
        imports[facts.module] = facts.imports
        for class_facts in facts.classes.values():
            classes[class_facts.qualname] = class_facts
        for name, values in facts.tables.items():
            tables[(facts.module, name)] = values
    class_by_name: dict[str, list[str]] = {}
    for qual, class_facts in classes.items():
        class_by_name.setdefault(class_facts.name, []).append(qual)
    method_index: dict[str, list[str]] = {}
    for qual, info in functions.items():
        if info.cls is not None:
            method_index.setdefault(
                qual.rsplit(".", 1)[-1], []
            ).append(qual)

    def resolve_qual(dotted: str) -> list[str]:
        """A dotted target → function qualnames (re-exports followed)."""
        seen = set()
        current = dotted
        for _ in range(8):
            if current in functions:
                return [current]
            if current in classes:
                init = classes[current].methods.get("__init__")
                return [init] if init else []
            if current in seen or "." not in current:
                return []
            seen.add(current)
            module_part, name = current.rsplit(".", 1)
            remap = imports.get(module_part, {}).get(name)
            if remap is None:
                return []
            current = remap
        return []

    def resolve_method(class_qual: str, method: str) -> list[str]:
        seen: set[str] = set()
        queue = [class_qual]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = classes.get(current)
            if info is None:
                # Bare/unresolvable base name: try by class name.
                queue.extend(class_by_name.get(current, []))
                continue
            if method in info.methods:
                return [info.methods[method]]
            queue.extend(info.bases)
        return []

    edges: dict[str, list[tuple[str, int]]] = {}
    for qual, info in functions.items():
        out: list[tuple[str, int]] = []
        for kind, data, line in info.calls:
            targets: list[str] = []
            if kind in {"qual", "ref"}:
                targets = resolve_qual(data)
            elif kind == "typed":
                class_qual, method = data
                targets = resolve_method(class_qual, method)
                if not targets and class_qual not in classes:
                    targets = method_index.get(method, [])
            elif kind == "method":
                targets = method_index.get(data, [])
            elif kind == "table":
                targets = []
                for value in tables.get(tuple(data), []):
                    targets.extend(resolve_qual(value))
            for target in targets:
                out.append((target, line))
        if out:
            deduped: dict[str, int] = {}
            for target, line in out:
                deduped.setdefault(target, line)
            edges[qual] = sorted(deduped.items())
    return FlowGraph(
        source_root=str(source_root),
        package=package,
        digest=digest,
        functions=functions,
        classes=classes,
        tables=tables,
        imports=imports,
        edges=edges,
        modules=len(modules),
    )


def _iter_sources(package_root: Path) -> list[tuple[Path, str, str, bool]]:
    """``(path, relative, module, is_package)`` for every module."""
    package = package_root.name
    entries = []
    for path in sorted(package_root.rglob("*.py")):
        relative = path.relative_to(package_root.parent)
        parts = list(relative.with_suffix("").parts)
        is_package = parts[-1] == "__init__"
        if is_package:
            parts = parts[:-1]
        module = ".".join(parts) if parts else package
        entries.append((path, str(relative), module, is_package))
    return entries


def source_digest(package_root: Path) -> str:
    """Content address of the analysis input (sources + engine)."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(f"flow-engine-v{ENGINE_VERSION}".encode())
    for path, relative, _, _ in _iter_sources(package_root):
        digest.update(relative.encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


def build_graph(
    package_root: Path | None = None,
    *,
    spec: TaintSpec | None = None,
    cache_dir: str | Path | None = None,
    runtime=None,
) -> FlowGraph:
    """Scan + link the package; reuse a pickled graph when unchanged.

    ``runtime`` is an :class:`repro.runtime.engine.ExperimentRuntime`:
    when given (and parallel), per-module scans fan out over its worker
    pool via the ``flow_facts`` task kind.  ``cache_dir`` stores the
    linked graph under ``flow/graph-<digest>.pkl``; a warm invocation
    with unchanged sources skips the scan entirely.
    """
    start = time.perf_counter()
    root = PACKAGE_ROOT if package_root is None else Path(package_root)
    if spec is None:
        spec = (
            default_taint_spec() if package_root is None else TaintSpec()
        )
    digest = source_digest(root)
    cache_path = None
    if cache_dir is not None:
        cache_path = Path(cache_dir) / "flow" / f"graph-{digest}.pkl"
        if cache_path.exists():
            try:
                with cache_path.open("rb") as stream:
                    graph = pickle.load(stream)
                if (
                    isinstance(graph, FlowGraph)
                    and graph.digest == digest
                ):
                    graph.from_cache = True
                    graph.built_seconds = time.perf_counter() - start
                    return graph
            except Exception:
                pass  # corrupt cache entry: rebuild below
    sources = _iter_sources(root)
    if runtime is not None and not runtime.executor.inline:
        from repro.runtime.tasks import Task

        tasks = [
            Task(
                kind="flow_facts",
                payload=(str(path), relative, module, is_package, spec),
                label=f"flow:{module}",
            )
            for path, relative, module, is_package in sources
        ]
        outcomes = runtime.executor.run_many(tasks)
        modules = [outcome.value for outcome in outcomes]
    else:
        modules = [
            scan_module(
                path.read_text(), relative, module, is_package, spec
            )
            for path, relative, module, is_package in sources
        ]
    graph = _link(modules, root.parent, root.name, digest)
    graph.built_seconds = time.perf_counter() - start
    if cache_path is not None:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        temporary = cache_path.with_suffix(".tmp")
        with temporary.open("wb") as stream:
            # The flow-graph cache predates repro.store and is already
            # digest-gated (source digest checked on load) and written
            # atomically via the .tmp rename below.
            pickle.dump(graph, stream)  # repolint: disable=REP009
        temporary.replace(cache_path)
    return graph


def graph_json(graph: FlowGraph) -> dict:
    """A JSON-serializable dump of the symbol table and edges."""
    return {
        "digest": graph.digest,
        "package": graph.package,
        "modules": graph.modules,
        "functions": [
            {
                "qualname": info.qualname,
                "path": info.relative,
                "line": info.line,
                "coroutine": info.is_coroutine,
            }
            for info in sorted(
                graph.functions.values(), key=lambda f: f.qualname
            )
        ],
        "edges": [
            [caller, callee, line]
            for caller in sorted(graph.edges)
            for callee, line in graph.edges[caller]
        ],
        "tables": {
            f"{module}.{name}": values
            for (module, name), values in sorted(graph.tables.items())
        },
    }


# ----------------------------------------------------------------------
# Reachability
# ----------------------------------------------------------------------

def reachable(
    graph: FlowGraph, roots: list[str]
) -> dict[str, str | None]:
    """BFS parents map: reached qualname → caller (roots → ``None``)."""
    parents: dict[str, str | None] = {}
    queue: list[str] = []
    for root in roots:
        if root in graph.functions and root not in parents:
            parents[root] = None
            queue.append(root)
    while queue:
        current = queue.pop(0)
        for callee, _ in graph.edges.get(current, []):
            if callee not in parents:
                parents[callee] = current
                queue.append(callee)
    return parents


def chain_to(parents: dict[str, str | None], target: str) -> tuple[str, ...]:
    chain = [target]
    seen = {target}
    while True:
        parent = parents.get(chain[0])
        if parent is None or parent in seen:
            break
        chain.insert(0, parent)
        seen.add(parent)
    return tuple(chain)


# ----------------------------------------------------------------------
# Rule implementations
# ----------------------------------------------------------------------

def default_task_roots(graph: FlowGraph) -> list[str]:
    """The cached task bodies: TASK_KINDS entries minus test scaffolding."""
    table = graph.tables.get((_TASKS_MODULE, _TASK_TABLE), [])
    return [
        qual for qual in table
        if qual.rsplit(".", 1)[-1] not in _UNCACHED_TASKS
    ]


def fl001(
    graph: FlowGraph, roots: list[str] | None = None
) -> list[FlowViolation]:
    """Nondeterminism reachable from a cached task body."""
    if roots is None:
        roots = default_task_roots(graph)
    parents = reachable(graph, roots)
    violations = []
    for qual in parents:
        info = graph.functions[qual]
        for line, message in info.nondet:
            violations.append(FlowViolation(
                "FL001", info.relative, line,
                f"{message} — reachable from cached task "
                f"{chain_to(parents, qual)[0].rsplit('.', 1)[-1]}, so "
                "cached results would not be reproducible",
                chain=chain_to(parents, qual),
            ))
    return violations


def fl002(
    graph: FlowGraph,
    sim_roots: list[str] | None = None,
    key_function: str = _KEY_FUNCTION,
) -> list[FlowViolation]:
    """Config fields read under simulate must flow into the cache key."""
    if sim_roots is None:
        sim_roots = [
            qual for qual in default_task_roots(graph)
            if qual.rsplit(".", 1)[-1] in _SIM_TASKS
        ]
    key_parents = reachable(graph, [key_function])
    if not key_parents:
        return []  # no key builder in this graph (fixture packages)
    key_reads: set[tuple[str, str]] = set()
    for qual in key_parents:
        for _, class_qual, field_name in graph.functions[qual].field_reads:
            key_reads.add((class_qual, field_name))
    key_module = key_function.rsplit(".", 1)[0]
    parents = reachable(graph, sim_roots)
    violations = []
    for qual in parents:
        info = graph.functions[qual]
        if info.module == key_module:
            continue
        for line, class_qual, field_name in info.field_reads:
            if (class_qual, field_name) in key_reads:
                continue
            class_name = class_qual.rsplit(".", 1)[-1]
            violations.append(FlowViolation(
                "FL002", info.relative, line,
                f"{class_name}.{field_name} is read under the simulate "
                f"call graph but never by {key_function.rsplit('.', 1)[-1]}"
                ": configurations differing only in this field would "
                "alias one cache entry",
                chain=chain_to(parents, qual),
            ))
    return violations


def fl003(
    graph: FlowGraph,
    fork_roots: list[str] | None = None,
    shared: dict[str, tuple[str, ...]] | None = None,
) -> list[FlowViolation]:
    """Writes to pre-fork shared state from fork-worker code."""
    if shared is None:
        shared = dict(_SHARED_OWNERS)
    if fork_roots is None:
        fork_roots = default_task_roots(graph) + [
            qual for qual in _FORK_EXTRA_ROOTS if qual in graph.functions
        ]
    parents = reachable(graph, fork_roots)
    violations = []
    for qual in parents:
        info = graph.functions[qual]
        for line, class_qual, attr in info.tainted_writes:
            owners = shared.get(class_qual)
            if owners is None:
                continue
            relative = info.relative.replace("\\", "/")
            if any(relative.endswith(owner) for owner in owners):
                continue
            class_name = class_qual.rsplit(".", 1)[-1]
            violations.append(FlowViolation(
                "FL003", info.relative, line,
                f"writes {class_name}.{attr} from code reachable in "
                "fork workers; pre-fork planes are shared "
                "copy-on-write and must stay read-only outside "
                f"{', '.join(owners)}",
                chain=chain_to(parents, qual),
            ))
        for line, name, owner_module in info.global_writes:
            if owner_module == info.module:
                continue
            violations.append(FlowViolation(
                "FL003", info.relative, line,
                f"mutates module global {owner_module}.{name} from "
                "code reachable in fork workers; cross-module global "
                "state diverges silently across worker processes",
                chain=chain_to(parents, qual),
            ))
    return violations


def fl004(
    graph: FlowGraph,
    serve_prefix: str | tuple[str, ...] = _SERVE_PREFIXES,
) -> list[FlowViolation]:
    """Blocking calls reachable from serve coroutines (interproc REP006)."""
    prefixes = (
        (serve_prefix,) if isinstance(serve_prefix, str)
        else tuple(serve_prefix)
    )
    roots = [
        qual for qual, info in graph.functions.items()
        if info.is_coroutine and any(
            info.module == prefix
            or info.module.startswith(prefix + ".")
            for prefix in prefixes
        )
    ]
    parents = reachable(graph, sorted(roots))
    violations = {}
    for qual in parents:
        info = graph.functions[qual]
        for line, message in info.blocking:
            key = (info.relative, line)
            if key in violations:
                continue
            chain = chain_to(parents, qual)
            suffix = ""
            if len(chain) > 1:
                suffix = (
                    " (called from coroutine "
                    f"{chain[0].rsplit('.', 1)[-1]})"
                )
            violations[key] = FlowViolation(
                "FL004", info.relative, line,
                f"{message}{suffix}", chain=chain,
            )
    return list(violations.values())


def fl005(
    graph: FlowGraph,
    cached_roots: list[str] | None = None,
    key_roots: list[str] | None = None,
) -> list[FlowViolation]:
    """Environment reads reaching cached results must be key-salted."""
    if cached_roots is None:
        cached_roots = default_task_roots(graph)
    if key_roots is None:
        key_roots = [
            qual for qual in _KEY_ROOTS if qual in graph.functions
        ]
    salted: set[str] = set()
    for qual in reachable(graph, key_roots):
        for _, variable in graph.functions[qual].env_reads:
            if variable is not None:
                salted.add(variable)
    key_modules = {qual.rsplit(".", 1)[0] for qual in key_roots}
    parents = reachable(graph, cached_roots)
    violations = []
    for qual in parents:
        info = graph.functions[qual]
        if info.module in key_modules:
            continue
        for line, variable in info.env_reads:
            if variable is not None and variable in salted:
                continue
            shown = variable if variable is not None else "<dynamic>"
            violations.append(FlowViolation(
                "FL005", info.relative, line,
                f"reads ${shown} on a path feeding cached results, but "
                "the cache key is never salted with it; two "
                "environments would alias one cache entry",
                chain=chain_to(parents, qual),
            ))
    store_reads = {
        qual for qual in _STORE_READS if qual in graph.functions
    }
    for qual in sorted(parents):
        if not store_reads:
            break
        info = graph.functions[qual]
        if qual in store_reads or (
            info.module == _STORE_PREFIX
            or info.module.startswith(_STORE_PREFIX + ".")
        ):
            continue
        hits = [
            (callee, line)
            for callee, line in graph.edges.get(qual, [])
            if callee in store_reads
        ]
        if not hits:
            continue
        if _STORE_SALT in reachable(graph, [qual]):
            continue
        for callee, line in hits:
            method = callee.rsplit(".", 1)[-1]
            violations.append(FlowViolation(
                "FL005", info.relative, line,
                f"calls {method} on the artifact store without "
                "deriving the key through artifact_key (code-salted); "
                "an un-salted read can serve artifacts written by a "
                "different code version",
                chain=chain_to(parents, qual),
            ))
    return violations


FLOW_RULE_IMPLS = {
    "FL001": fl001,
    "FL002": fl002,
    "FL003": fl003,
    "FL004": fl004,
    "FL005": fl005,
}


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def _filter_suppressed(
    violations: list[FlowViolation],
    source_root: Path,
    tag: str = "flowlint",
) -> list[FlowViolation]:
    by_file: dict[str, tuple[dict[int, set[str]], set[str]]] = {}
    kept = []
    for violation in violations:
        maps = by_file.get(violation.path)
        if maps is None:
            path = source_root / violation.path
            try:
                maps = suppression_maps(path.read_text(), tag)
            except OSError:
                maps = ({}, set())
            by_file[violation.path] = maps
        per_line, whole_file = maps
        if violation.rule in whole_file:
            continue
        if violation.rule in per_line.get(violation.line, ()):
            continue
        kept.append(violation)
    return kept


def lint_flow(
    graph: FlowGraph | None = None,
    rules: set[str] | None = None,
    *,
    cache_dir: str | Path | None = None,
    runtime=None,
    honor_suppressions: bool = True,
) -> list[FlowViolation]:
    """Run the FL rules over the package (or a prebuilt graph)."""
    if graph is None:
        graph = build_graph(cache_dir=cache_dir, runtime=runtime)
    violations: list[FlowViolation] = []
    for rule, implementation in FLOW_RULE_IMPLS.items():
        if rules is not None and rule not in rules:
            continue
        violations.extend(implementation(graph))
    if honor_suppressions:
        violations = _filter_suppressed(
            violations, Path(graph.source_root)
        )
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def rep006_violations(
    graph: FlowGraph | None = None,
) -> list[LintViolation]:
    """FL004's reachability analysis reported under the REP006 rule id.

    ``repro lint-code`` routes REP006 through here on full-package
    runs, so the classic rule id gains call-graph depth; suppression
    uses the ordinary ``# repolint: disable=REP006`` comments at the
    blocking line.
    """
    graph = _default_graph() if graph is None else graph
    source_root = Path(graph.source_root)
    # Honor both spellings: an FL004 flowlint disable on the blocking
    # line quiets the flow-routed REP006 too (same finding, two rule
    # ids), as does the classic REP006 repolint disable.
    findings = _filter_suppressed(fl004(graph), source_root)
    filtered = _filter_suppressed(
        [
            FlowViolation("REP006", f.path, f.line, f.message, f.chain)
            for f in findings
        ],
        source_root,
        tag="repolint",
    )
    return [
        LintViolation("REP006", f.path, f.line, f.message)
        for f in filtered
    ]


#: Per-process memo of the default whole-repo graph, revalidated by
#: source digest so in-process edits (tests writing fixtures) miss.
_graph_memo: FlowGraph | None = None


def _default_graph() -> FlowGraph:
    global _graph_memo
    digest = source_digest(PACKAGE_ROOT)
    if _graph_memo is None or _graph_memo.digest != digest:
        _graph_memo = build_graph()
    return _graph_memo


_strict_checked: set[str] = set()


def check_flow(cache_dir: str | Path | None = None) -> None:
    """Strict-mode hook: raise :class:`FlowLintError` on violations.

    Runs at most once per process per source state (the experiment
    runtime calls this for every ``--strict`` run; repeated
    construction must not re-pay the whole-repo scan).
    """
    digest = source_digest(PACKAGE_ROOT)
    if digest in _strict_checked:
        return
    violations = lint_flow(cache_dir=cache_dir)
    if violations:
        raise FlowLintError(violations)
    _strict_checked.add(digest)


# ----------------------------------------------------------------------
# Stale-suppression audit
# ----------------------------------------------------------------------

def stale_suppressions(
    package_root: Path | None = None,
) -> list[LintViolation]:
    """Disable comments that no longer suppress any finding.

    Runs RepoLint and FlowLint with suppressions ignored, then checks
    every ``# repolint: disable``/``# flowlint: disable`` comment
    against the raw findings: a per-line disable is stale when its
    rule no longer fires on that line, a file-level disable when the
    rule no longer fires anywhere in the file.  Stale suppressions are
    worse than dead code — they silently swallow the *next* genuine
    violation at that line.
    """
    from repro.verify.repolint import (
        lint_source as repolint_source,
        suppression_comments,
    )

    root = PACKAGE_ROOT if package_root is None else Path(package_root)
    source_root = root.parent
    graph = build_graph(root if package_root is not None else None)
    flow_raw = lint_flow(graph=graph, honor_suppressions=False)
    rep006_raw = [
        LintViolation("REP006", f.path, f.line, f.message)
        for f in fl004(graph)
    ]
    findings: dict[str, list[tuple[int, str, str]]] = {}
    for violation in flow_raw:
        findings.setdefault(violation.path, []).append(
            (violation.line, "flowlint", violation.rule)
        )
    for violation in rep006_raw:
        findings.setdefault(violation.path, []).append(
            (violation.line, "repolint", violation.rule)
        )
    stale: list[LintViolation] = []
    for path in sorted(root.rglob("*.py")):
        relative = str(path.relative_to(source_root))
        source = path.read_text()
        comments = suppression_comments(source)
        if not comments:
            continue
        raw = repolint_source(
            source, relative, honor_suppressions=False
        )
        per_file = list(findings.get(relative, []))
        per_file.extend(
            (violation.line, "repolint", violation.rule)
            for violation in raw
        )
        for line, tag, rule, file_level in comments:
            hits = [
                entry for entry in per_file
                if entry[1] == tag and entry[2] == rule
                and (file_level or entry[0] == line)
            ]
            if not hits:
                scope = "anywhere in this file" if file_level else (
                    "on this line"
                )
                stale.append(LintViolation(
                    "STALE", relative, line,
                    f"stale suppression: {tag} rule {rule} no longer "
                    f"fires {scope}; remove the disable comment",
                ))
    stale.sort(key=lambda v: (v.path, v.line))
    return stale
