"""Dynamic invariant guards shared by the test suite and ``lint-code``.

REP003's static pass (:func:`repro.verify.repolint.config_key_coverage`)
proves every configuration field is *read* by the cache key builder;
the guards here prove the stronger dynamic property: mutating any field
actually *changes* the key.  Both live in ``repro.verify`` so the guard
logic exists in exactly one place — ``tests/test_config_key_guard.py``
is a thin caller.

Each table maps ``field name -> mutation`` producing a valid,
structurally different configuration.  Adding a field to a config
dataclass fails :func:`config_mutation_gaps` until the table (and the
key builder) answer the "does this knob address the cache?" question.
"""

from __future__ import annotations

import dataclasses
from dataclasses import replace

from repro.isa.opcodes import FunctionalUnit
from repro.runtime.keys import config_key
from repro.uarch.config import (
    ME1,
    PROC_4WAY,
    BranchPredictorConfig,
    CacheConfig,
    MemoryConfig,
    ProcessorConfig,
    TlbConfig,
)

BASE = PROC_4WAY.with_memory(ME1)


def _bump_units(config):
    units = dict(config.units)
    units[FunctionalUnit.FX] += 1
    return replace(config, units=units)


PROCESSOR_MUTATIONS = {
    "name": lambda c: replace(c, name=c.name + "-x"),
    "fetch_width": lambda c: replace(c, fetch_width=c.fetch_width + 1),
    "dispatch_width": lambda c: replace(
        c, dispatch_width=c.dispatch_width + 1
    ),
    "retire_width": lambda c: replace(c, retire_width=c.retire_width + 1),
    "inflight": lambda c: replace(c, inflight=c.inflight + 1),
    "gpr": lambda c: replace(c, gpr=c.gpr + 1),
    "vpr": lambda c: replace(c, vpr=c.vpr + 1),
    "fpr": lambda c: replace(c, fpr=c.fpr + 1),
    "units": _bump_units,
    "issue_queue_size": lambda c: replace(
        c, issue_queue_size=c.issue_queue_size + 1
    ),
    "ibuffer_size": lambda c: replace(c, ibuffer_size=c.ibuffer_size + 1),
    "retire_queue": lambda c: replace(c, retire_queue=c.retire_queue + 1),
    "dcache_read_ports": lambda c: replace(
        c, dcache_read_ports=c.dcache_read_ports + 1
    ),
    "dcache_write_ports": lambda c: replace(
        c, dcache_write_ports=c.dcache_write_ports + 1
    ),
    "max_outstanding_misses": lambda c: replace(
        c, max_outstanding_misses=c.max_outstanding_misses + 1
    ),
    "store_queue_size": lambda c: replace(
        c, store_queue_size=c.store_queue_size + 1
    ),
    "memory": lambda c: c.with_memory(
        replace(c.memory, memory_latency=c.memory.memory_latency + 1)
    ),
    "branch": lambda c: c.with_branch(
        replace(
            c.branch, mispredict_recovery=c.branch.mispredict_recovery + 1
        )
    ),
    "wide_load_extra_latency": lambda c: replace(
        c, wide_load_extra_latency=c.wide_load_extra_latency + 1
    ),
}

MEMORY_MUTATIONS = {
    "name": lambda m: replace(m, name=m.name + "-x"),
    "il1": lambda m: replace(m, il1=replace(m.il1, latency=m.il1.latency + 1)),
    "dl1": lambda m: replace(m, dl1=replace(m.dl1, latency=m.dl1.latency + 1)),
    "l2": lambda m: replace(m, l2=replace(m.l2, latency=m.l2.latency + 1)),
    "memory_latency": lambda m: replace(
        m, memory_latency=m.memory_latency + 1
    ),
    "itlb": lambda m: replace(
        m, itlb=replace(m.itlb, miss_penalty=m.itlb.miss_penalty + 1)
    ),
    "dtlb": lambda m: replace(
        m, dtlb=replace(m.dtlb, miss_penalty=m.dtlb.miss_penalty + 1)
    ),
    "sequential_prefetch": lambda m: replace(
        m, sequential_prefetch=not m.sequential_prefetch
    ),
}

CACHE_MUTATIONS = {
    "size_bytes": lambda c: replace(c, size_bytes=c.size_bytes * 2),
    "associativity": lambda c: replace(c, associativity=c.associativity * 2),
    "line_bytes": lambda c: replace(c, line_bytes=c.line_bytes // 2),
    "latency": lambda c: replace(c, latency=c.latency + 1),
}

TLB_MUTATIONS = {
    "entries": lambda t: replace(t, entries=t.entries * 2),
    "associativity": lambda t: replace(t, associativity=t.associativity * 2),
    "page_bytes": lambda t: replace(t, page_bytes=t.page_bytes * 2),
    "miss_penalty": lambda t: replace(t, miss_penalty=t.miss_penalty + 1),
}

BRANCH_MUTATIONS = {
    "kind": lambda b: replace(b, kind="gshare"),
    "table_entries": lambda b: replace(b, table_entries=b.table_entries * 2),
    "btb_entries": lambda b: replace(b, btb_entries=b.btb_entries * 2),
    "btb_associativity": lambda b: replace(
        b, btb_associativity=b.btb_associativity * 2
    ),
    "btb_miss_penalty": lambda b: replace(
        b, btb_miss_penalty=b.btb_miss_penalty + 1
    ),
    "max_predicted_branches": lambda b: replace(
        b, max_predicted_branches=b.max_predicted_branches + 1
    ),
    "mispredict_recovery": lambda b: replace(
        b, mispredict_recovery=b.mispredict_recovery + 1
    ),
}

#: dataclass -> (mutation table, how to graft a mutated value onto BASE).
GUARDED_CONFIGS = {
    ProcessorConfig: (PROCESSOR_MUTATIONS, lambda mutate: mutate(BASE)),
    MemoryConfig: (
        MEMORY_MUTATIONS,
        lambda mutate: BASE.with_memory(mutate(BASE.memory)),
    ),
    BranchPredictorConfig: (
        BRANCH_MUTATIONS,
        lambda mutate: BASE.with_branch(mutate(BASE.branch)),
    ),
}

#: Nested dataclasses grafted through every containing slot.
NESTED_CONFIGS = {
    CacheConfig: (CACHE_MUTATIONS, ("il1", "dl1", "l2")),
    TlbConfig: (TLB_MUTATIONS, ("itlb", "dtlb")),
}


def config_mutation_gaps() -> dict[str, set[str]]:
    """Dataclass fields with no mutation entry (should be empty)."""
    gaps: dict[str, set[str]] = {}
    tables = {
        **{cls: mutations for cls, (mutations, _) in GUARDED_CONFIGS.items()},
        **{cls: mutations for cls, (mutations, _) in NESTED_CONFIGS.items()},
    }
    for cls, mutations in tables.items():
        fields = {field.name for field in dataclasses.fields(cls)}
        difference = fields ^ set(mutations)
        if difference:
            gaps[cls.__name__] = difference
    return gaps


def config_key_blind_spots() -> list[str]:
    """Mutations that fail to change the cache key (should be empty).

    Each entry names a ``Class.field`` whose mutation produced the same
    structural key as the base configuration — i.e. two different
    machines would alias one cache entry.
    """
    base_key = config_key(BASE)
    blind: list[str] = []
    for cls, (mutations, graft) in GUARDED_CONFIGS.items():
        for name, mutate in mutations.items():
            if config_key(graft(mutate)) == base_key:
                blind.append(f"{cls.__name__}.{name}")
    for cls, (mutations, slots) in NESTED_CONFIGS.items():
        for slot in slots:
            for name, mutate in mutations.items():
                memory = replace(
                    BASE.memory,
                    **{slot: mutate(getattr(BASE.memory, slot))},
                )
                if config_key(BASE.with_memory(memory)) == base_key:
                    blind.append(f"{cls.__name__}.{name} (via {slot})")
    return blind
