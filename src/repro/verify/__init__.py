"""repro.verify — static trace/ISA invariant checker and domain lint.

Two layers:

* **TraceLint** (:mod:`repro.verify.tracelint`): vectorized
  well-formedness rules (TR001-TR010) over the SoA trace columns and
  the decode plane, runnable without simulating.  Exposed on the CLI
  as ``python -m repro lint-trace`` and as ``strict=True`` hooks in
  ``load_trace`` / ``TraceBuilder.build`` / the runtime cache.
* **RepoLint** (:mod:`repro.verify.repolint`): ``ast``-based passes
  (REP001-REP005) encoding repo-specific hazards — nondeterminism,
  column mutation, cache-key drift, serialization-version drift, and
  exception hygiene.  Exposed as ``python -m repro lint-code`` and as
  a tier-1 pytest gate.

See ``docs/verify.md`` for the rule catalogue and suppression syntax.
"""

from repro.verify.repolint import (
    RULES,
    LintViolation,
    config_key_coverage,
    lint_paths,
    lint_source,
    serialization_fingerprint,
    write_manifest,
)
from repro.verify.tracelint import (
    TRACE_RULES,
    TraceCheck,
    TraceLintError,
    TraceLintReport,
    TraceViolation,
    check_trace,
    lint_trace,
)

__all__ = [
    "RULES",
    "TRACE_RULES",
    "LintViolation",
    "TraceCheck",
    "TraceLintError",
    "TraceLintReport",
    "TraceViolation",
    "check_trace",
    "config_key_coverage",
    "lint_paths",
    "lint_source",
    "lint_trace",
    "serialization_fingerprint",
    "write_manifest",
]
