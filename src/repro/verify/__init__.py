"""repro.verify — static trace/ISA invariant checker and domain lint.

Four layers:

* **TraceLint** (:mod:`repro.verify.tracelint`): vectorized
  well-formedness rules (TR001-TR011) over the SoA trace columns and
  the decode plane, runnable without simulating.  Exposed on the CLI
  as ``python -m repro lint-trace`` and as ``strict=True`` hooks in
  ``load_trace`` / ``TraceBuilder.build`` / the runtime cache.
* **RepoLint** (:mod:`repro.verify.repolint`): per-file ``ast`` passes
  (REP001-REP008) encoding repo-specific hazards — nondeterminism,
  column mutation, cache-key drift, serialization-version drift,
  exception hygiene, ad-hoc config-grid loops that bypass
  ``repro.sweep``, and per-cycle allocation.  Exposed as
  ``python -m repro lint-code`` and as a tier-1 pytest gate.
* **SweepLint** (:mod:`repro.verify.sweeplint`): data-level validation
  rules (SW001-SW007) for declarative sweep specs, run at spec load
  time so a campaign fails before any task executes.
* **FlowLint** (:mod:`repro.verify.flow`): whole-repo call-graph +
  dataflow rules (FL001-FL005) — interprocedural proofs that cached
  task bodies cannot reach nondeterminism, every config field read
  under simulate flows into the cache key, fork-shared planes stay
  read-only in workers, serve coroutines cannot reach blocking calls,
  and environment reads feeding cached results are key-salted.
  Exposed as ``python -m repro lint-flow`` and the
  ``ExperimentRuntime(strict=True)`` hook; full ``lint-code`` runs
  route REP006 through its call graph.

See ``docs/verify.md`` for the rule catalogue and suppression syntax.
"""

from repro.verify.flow import (
    FLOW_RULES,
    FlowGraph,
    FlowLintError,
    FlowViolation,
    build_graph,
    check_flow,
    lint_flow,
    stale_suppressions,
)
from repro.verify.repolint import (
    RULES,
    LintViolation,
    config_key_coverage,
    lint_paths,
    lint_source,
    serialization_fingerprint,
    write_manifest,
)
from repro.verify.sweeplint import (
    RULES as SWEEP_RULES,
)
from repro.verify.sweeplint import (
    SpecViolation,
    validate_spec_data,
)
from repro.verify.tracelint import (
    TRACE_RULES,
    TraceCheck,
    TraceLintError,
    TraceLintReport,
    TraceViolation,
    check_trace,
    lint_trace,
)

__all__ = [
    "FLOW_RULES",
    "RULES",
    "SWEEP_RULES",
    "TRACE_RULES",
    "FlowGraph",
    "FlowLintError",
    "FlowViolation",
    "LintViolation",
    "SpecViolation",
    "validate_spec_data",
    "TraceCheck",
    "TraceLintError",
    "TraceLintReport",
    "TraceViolation",
    "build_graph",
    "check_flow",
    "check_trace",
    "config_key_coverage",
    "lint_flow",
    "lint_paths",
    "lint_source",
    "lint_trace",
    "serialization_fingerprint",
    "stale_suppressions",
    "write_manifest",
]
