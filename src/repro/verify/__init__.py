"""repro.verify — static trace/ISA invariant checker and domain lint.

Three layers:

* **TraceLint** (:mod:`repro.verify.tracelint`): vectorized
  well-formedness rules (TR001-TR011) over the SoA trace columns and
  the decode plane, runnable without simulating.  Exposed on the CLI
  as ``python -m repro lint-trace`` and as ``strict=True`` hooks in
  ``load_trace`` / ``TraceBuilder.build`` / the runtime cache.
* **RepoLint** (:mod:`repro.verify.repolint`): ``ast``-based passes
  (REP001-REP007) encoding repo-specific hazards — nondeterminism,
  column mutation, cache-key drift, serialization-version drift,
  exception hygiene, and ad-hoc config-grid loops that bypass
  ``repro.sweep``.  Exposed as ``python -m repro lint-code`` and as
  a tier-1 pytest gate.
* **SweepLint** (:mod:`repro.verify.sweeplint`): data-level validation
  rules (SW001-SW007) for declarative sweep specs, run at spec load
  time so a campaign fails before any task executes.

See ``docs/verify.md`` for the rule catalogue and suppression syntax.
"""

from repro.verify.repolint import (
    RULES,
    LintViolation,
    config_key_coverage,
    lint_paths,
    lint_source,
    serialization_fingerprint,
    write_manifest,
)
from repro.verify.sweeplint import (
    RULES as SWEEP_RULES,
)
from repro.verify.sweeplint import (
    SpecViolation,
    validate_spec_data,
)
from repro.verify.tracelint import (
    TRACE_RULES,
    TraceCheck,
    TraceLintError,
    TraceLintReport,
    TraceViolation,
    check_trace,
    lint_trace,
)

__all__ = [
    "RULES",
    "SWEEP_RULES",
    "TRACE_RULES",
    "LintViolation",
    "SpecViolation",
    "validate_spec_data",
    "TraceCheck",
    "TraceLintError",
    "TraceLintReport",
    "TraceViolation",
    "check_trace",
    "config_key_coverage",
    "lint_paths",
    "lint_source",
    "lint_trace",
    "serialization_fingerprint",
    "write_manifest",
]
