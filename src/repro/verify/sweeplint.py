"""SweepLint: static validation of declarative sweep specs.

``repro.sweep`` specs are data (TOML/YAML/JSON), so a typo'd axis name
or a memory preset crossed with a parametric DL1 axis would otherwise
surface as a mid-campaign crash after minutes of tracing.  These rules
run at load time (and under ``repro sweep`` before any task executes)
and name each problem precisely:

=======  =============================================================
SW001    spec structure: missing/invalid ``[sweep] name``, unknown
         top-level section, wrong value type for a known key
SW002    unknown axis under ``[axes]``
SW003    invalid axis value (unknown preset name, non-positive or
         non-integer parametric value)
SW004    degenerate grid: an empty axis, duplicate values within an
         axis, or an empty workload list
SW005    conflicting axes: a ``memory`` preset axis crossed with
         parametric DL1/L2 axes (the preset already pins them)
SW006    unknown workload name
SW007    report selection: unknown metric, or a knee axis that is not
         a swept numeric axis
=======  =============================================================

The rule implementations work on the *parsed mapping*, not on
:class:`repro.sweep.spec.SweepSpec`, so they can reject data a spec
object could never represent.
"""

from __future__ import annotations

from dataclasses import dataclass

RULES: dict[str, str] = {
    "SW001": "spec structure (sections, name, value types)",
    "SW002": "unknown axis",
    "SW003": "invalid axis value",
    "SW004": "degenerate grid (empty axis, duplicates, no workloads)",
    "SW005": "memory preset crossed with parametric cache axes",
    "SW006": "unknown workload name",
    "SW007": "invalid report metric or knee axis",
}

#: Preset-valued axes and their legal names.
WIDTH_NAMES: tuple[str, ...] = ("4-way", "8-way", "12-way", "16-way")
MEMORY_NAMES: tuple[str, ...] = ("me1", "me2", "me3", "me4", "meinf")
PREDICTOR_NAMES: tuple[str, ...] = (
    "real", "combined", "perfect", "gshare", "bimodal",
)

#: Parametric (numeric) axes; "inf" is additionally legal where noted.
NUMERIC_AXES: tuple[str, ...] = (
    "dl1_size_kb", "dl1_assoc", "dl1_latency", "l2_mb",
)
INF_OK_AXES: tuple[str, ...] = ("dl1_size_kb", "l2_mb")

#: Every legal ``[axes]`` key.
AXIS_NAMES: tuple[str, ...] = (
    "width", "memory", "predictor",
) + NUMERIC_AXES

#: Parametric axes that conflict with a ``memory`` preset axis.
_PRESET_CONFLICTS: tuple[str, ...] = NUMERIC_AXES

_SECTIONS: tuple[str, ...] = ("sweep", "axes", "workloads", "report")


@dataclass(frozen=True)
class SpecViolation:
    """One sweeplint finding."""

    rule: str
    where: str
    message: str

    def __str__(self) -> str:
        return f"{self.where}: {self.rule} {self.message}"


def _check_string_list(
    values: object, where: str, rule: str = "SW001"
) -> list[SpecViolation]:
    if not isinstance(values, (list, tuple)) or not all(
        isinstance(value, str) for value in values
    ):
        return [SpecViolation(rule, where, "expected a list of strings")]
    return []


def _axis_value_errors(name: str, values: list) -> list[SpecViolation]:
    where = f"axes.{name}"
    violations: list[SpecViolation] = []
    presets = {
        "width": WIDTH_NAMES,
        "memory": MEMORY_NAMES,
        "predictor": PREDICTOR_NAMES,
    }.get(name)
    for value in values:
        if presets is not None:
            if not isinstance(value, str) or value not in presets:
                violations.append(SpecViolation(
                    "SW003", where,
                    f"unknown {name} preset {value!r}; "
                    f"choose from {', '.join(presets)}",
                ))
        elif isinstance(value, str):
            if not (value == "inf" and name in INF_OK_AXES):
                violations.append(SpecViolation(
                    "SW003", where,
                    f"{value!r} is not a positive integer"
                    + (" or 'inf'" if name in INF_OK_AXES else ""),
                ))
        elif not isinstance(value, int) or isinstance(value, bool) \
                or value < 1:
            violations.append(SpecViolation(
                "SW003", where,
                f"{value!r} is not a positive integer",
            ))
    return violations


def validate_spec_data(data: object) -> list[SpecViolation]:
    """Run every SweepLint rule over one parsed spec mapping."""
    if not isinstance(data, dict):
        return [SpecViolation(
            "SW001", "spec", "top level must be a table/mapping"
        )]
    violations: list[SpecViolation] = []
    for section in data:
        if section not in _SECTIONS:
            violations.append(SpecViolation(
                "SW001", section,
                f"unknown section [{section}]; "
                f"expected one of {', '.join(_SECTIONS)}",
            ))

    # -- [sweep] ------------------------------------------------------------
    sweep = data.get("sweep")
    if not isinstance(sweep, dict):
        violations.append(SpecViolation(
            "SW001", "sweep", "missing [sweep] section"
        ))
        sweep = {}
    name = sweep.get("name")
    if not isinstance(name, str) or not name or any(
        character not in
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_."
        for character in name
    ):
        violations.append(SpecViolation(
            "SW001", "sweep.name",
            "name must be a non-empty string of [A-Za-z0-9._-] "
            "(it becomes the manifest/report filename)",
        ))
    budget = sweep.get("trace_budget")
    if budget is not None and (
        not isinstance(budget, int) or isinstance(budget, bool)
        or budget < 1000
    ):
        violations.append(SpecViolation(
            "SW001", "sweep.trace_budget",
            "trace_budget must be an integer >= 1000",
        ))

    # -- [axes] -------------------------------------------------------------
    axes = data.get("axes")
    if not isinstance(axes, dict) or not axes:
        violations.append(SpecViolation(
            "SW004", "axes",
            "missing or empty [axes]: a sweep needs at least one axis",
        ))
        axes = {}
    for axis, values in axes.items():
        if axis not in AXIS_NAMES:
            violations.append(SpecViolation(
                "SW002", f"axes.{axis}",
                f"unknown axis; available: {', '.join(AXIS_NAMES)}",
            ))
            continue
        if not isinstance(values, (list, tuple)):
            violations.append(SpecViolation(
                "SW001", f"axes.{axis}", "axis values must be a list"
            ))
            continue
        if not values:
            violations.append(SpecViolation(
                "SW004", f"axes.{axis}", "axis has no values"
            ))
            continue
        seen: set = set()
        for value in values:
            marker = repr(value)
            if marker in seen:
                violations.append(SpecViolation(
                    "SW004", f"axes.{axis}",
                    f"duplicate value {value!r}",
                ))
            seen.add(marker)
        violations.extend(_axis_value_errors(axis, list(values)))
    if "memory" in axes:
        clash = [axis for axis in _PRESET_CONFLICTS if axis in axes]
        if clash:
            violations.append(SpecViolation(
                "SW005", "axes.memory",
                "memory presets already pin the cache geometry; drop "
                f"the parametric axes ({', '.join(clash)}) or the "
                "memory axis",
            ))

    # -- [workloads] --------------------------------------------------------
    from repro.kernels.registry import WORKLOAD_NAMES

    workloads = data.get("workloads", {})
    if not isinstance(workloads, dict):
        violations.append(SpecViolation(
            "SW001", "workloads", "[workloads] must be a table"
        ))
        workloads = {}
    names = workloads.get("names")
    if names is not None:
        bad_shape = _check_string_list(names, "workloads.names")
        violations.extend(bad_shape)
        if not bad_shape:
            if not names:
                violations.append(SpecViolation(
                    "SW004", "workloads.names", "no workloads selected"
                ))
            for workload in names:
                if workload not in WORKLOAD_NAMES:
                    violations.append(SpecViolation(
                        "SW006", "workloads.names",
                        f"unknown workload {workload!r}; available: "
                        f"{', '.join(WORKLOAD_NAMES)}",
                    ))

    # -- [report] -----------------------------------------------------------
    from repro.analysis.points import SCALAR_METRICS

    report = data.get("report", {})
    if not isinstance(report, dict):
        violations.append(SpecViolation(
            "SW001", "report", "[report] must be a table"
        ))
        report = {}
    metrics = report.get("metrics")
    if metrics is not None:
        bad_shape = _check_string_list(metrics, "report.metrics")
        violations.extend(bad_shape)
        if not bad_shape:
            for metric in metrics:
                if metric not in SCALAR_METRICS:
                    violations.append(SpecViolation(
                        "SW007", "report.metrics",
                        f"unknown metric {metric!r}; available: "
                        f"{', '.join(SCALAR_METRICS)}",
                    ))
    knee_axes = report.get("knee_axes")
    if knee_axes is not None:
        bad_shape = _check_string_list(knee_axes, "report.knee_axes")
        violations.extend(bad_shape)
        if not bad_shape:
            for axis in knee_axes:
                if axis not in NUMERIC_AXES:
                    violations.append(SpecViolation(
                        "SW007", "report.knee_axes",
                        f"{axis!r} is not a numeric axis "
                        f"({', '.join(NUMERIC_AXES)})",
                    ))
                elif axis not in axes:
                    violations.append(SpecViolation(
                        "SW007", "report.knee_axes",
                        f"knee axis {axis!r} is not swept by this spec",
                    ))
    return violations
