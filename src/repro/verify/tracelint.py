"""TraceLint: static well-formedness checks over columnar traces.

Every measurement in the reproduction — instruction mixes, dependency
stalls, cache behaviour — is only meaningful if the dynamic traces the
kernels emit are well-formed.  This module verifies that *without
running the simulator*: each rule is a vectorized pass over the eight
SoA columns (:data:`repro.isa.trace.COLUMN_DTYPES`) or over the cached
:class:`~repro.uarch.pipeline.decode.DecodedTrace` plane.

Rules (see ``docs/verify.md`` for the full catalogue):

======  ==============================================================
TR001   every opcode maps to a known functional unit and latency
TR002   register def-before-use: dependencies point strictly backward
        and producers write a register
TR003   source tuples are canonical (``-1`` padding trailing only,
        on-disk width)
TR004   memory operands: address/size agree with the load/store class,
        stay inside the modeled address space, and respect per-class
        alignment
TR005   branch operands: taken flags and targets appear only on CTRL
TR006   destination flags agree with the opcode's register-file class
TR007   column schema: all eight columns, pinned dtypes, equal length
TR008   recomputed content digest matches the expected digest
TR009   serialize -> load round-trips column-byte-identically
TR010   the cached decode plane agrees with the columns
TR011   template-stamped regions match their emit templates (per-slot
        opcode/dest/size, constant distinct pcs, control targets)
======  ==============================================================

The checks are deliberately *independent recomputations*: TR010, for
example, re-derives functional units and memory word spans from the
authoritative :mod:`repro.isa.opcodes` tables rather than trusting the
decode module's private lookup arrays.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.isa.opcodes import (
    FU_OF_OPCLASS,
    LATENCY_OF_OPCLASS,
    LOAD_OPS,
    MEMORY_OPS,
    STORE_OPS,
    OpClass,
)
from repro.isa.trace import COLUMN_DTYPES, MAX_SOURCES, Trace

#: Synthetic segment bases (mirrors repro.isa.builder; imported lazily
#: there to keep this module import-light for the strict hooks).
CODE_SEGMENT_BASE = 0x0001_0000
DATA_SEGMENT_BASE = 0x1000_0000

#: Upper bound of the modeled (48-bit) address space.
ADDRESS_SPACE_LIMIT = 1 << 47

#: Legal access widths per ISA class: scalar memory ops move 1-8 bytes,
#: vector ops a full 16-byte VMX register (32 for an uncracked
#: double-width access).  Sub-word scalar accesses must be naturally
#: aligned; wider accesses may be unaligned (AltiVec-era kernels lean
#: on unaligned vector loads, and the golden traces contain them).
SCALAR_MEMORY_SIZES = frozenset({1, 2, 4, 8})
VECTOR_MEMORY_SIZES = frozenset({16, 32})
ALIGNED_BELOW = 4

_N_OPS = len(OpClass)
_MEMORY_MASK = np.zeros(_N_OPS, dtype=bool)
_MEMORY_MASK[[int(op) for op in MEMORY_OPS]] = True
_LOAD_MASK = np.zeros(_N_OPS, dtype=bool)
_LOAD_MASK[[int(op) for op in LOAD_OPS]] = True
_STORE_MASK = np.zeros(_N_OPS, dtype=bool)
_STORE_MASK[[int(op) for op in STORE_OPS]] = True
_VECTOR_MEMORY = np.zeros(_N_OPS, dtype=bool)
_VECTOR_MEMORY[[int(OpClass.VLOAD), int(OpClass.VSTORE)]] = True


@dataclass(frozen=True)
class TraceViolation:
    """One rule violation, anchored at its first offending instruction."""

    rule: str
    message: str
    index: int | None = None
    count: int = 1

    def __str__(self) -> str:
        where = "" if self.index is None else f" @ instruction {self.index}"
        extra = "" if self.count <= 1 else f" ({self.count} instructions)"
        return f"{self.rule}{where}: {self.message}{extra}"


@dataclass(frozen=True)
class TraceCheck:
    """Outcome of one rule over one trace."""

    rule: str
    title: str
    violations: tuple[TraceViolation, ...] = ()

    @property
    def passed(self) -> bool:
        return not self.violations


@dataclass
class TraceLintReport:
    """All rule outcomes for one trace."""

    trace_name: str
    instructions: int
    checks: list[TraceCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def violations(self) -> list[TraceViolation]:
        return [v for check in self.checks for v in check.violations]

    def to_dict(self) -> dict:
        """Machine-readable form (the ``--json`` CLI output)."""
        return {
            "trace": self.trace_name,
            "instructions": self.instructions,
            "ok": self.ok,
            "checks": [
                {
                    "rule": check.rule,
                    "title": check.title,
                    "passed": check.passed,
                    "violations": [
                        {
                            "rule": v.rule,
                            "message": v.message,
                            "index": v.index,
                            "count": v.count,
                        }
                        for v in check.violations
                    ],
                }
                for check in self.checks
            ],
        }

    def format_table(self) -> str:
        """Per-check pass/fail table for terminal output."""
        lines = [f"trace {self.trace_name} ({self.instructions} instructions)"]
        for check in self.checks:
            status = "ok" if check.passed else "FAIL"
            lines.append(f"  {check.rule}  {check.title:<28} {status}")
            for violation in check.violations:
                lines.append(f"         {violation}")
        lines.append(f"  => {'clean' if self.ok else 'VIOLATIONS FOUND'}")
        return "\n".join(lines)


class TraceLintError(ValueError):
    """Raised by :func:`check_trace` when a trace fails lint."""

    def __init__(self, report: TraceLintReport) -> None:
        self.report = report
        first = report.violations[:3]
        summary = "; ".join(str(v) for v in first)
        more = len(report.violations) - len(first)
        if more > 0:
            summary += f"; +{more} more"
        super().__init__(
            f"trace {report.trace_name!r} failed lint: {summary}"
        )


def _first(mask: np.ndarray) -> int:
    return int(np.flatnonzero(mask)[0])


# ----------------------------------------------------------------------
# Individual rule implementations (each: columns -> list of violations)
# ----------------------------------------------------------------------

def check_schema(trace: Trace) -> list[TraceViolation]:
    """TR007: all eight columns exist with pinned dtypes and one length."""
    violations = []
    columns = trace.columns
    missing = COLUMN_DTYPES.keys() - columns.keys()
    if missing:
        violations.append(TraceViolation(
            "TR007", f"missing columns {sorted(missing)}"
        ))
        return violations
    lengths = set()
    for name, dtype in COLUMN_DTYPES.items():
        column = columns[name]
        if column.dtype != np.dtype(dtype):
            violations.append(TraceViolation(
                "TR007",
                f"column {name!r} has dtype {column.dtype}, expected "
                f"{np.dtype(dtype)}",
            ))
        expected_ndim = 2 if name == "sources" else 1
        if column.ndim != expected_ndim:
            violations.append(TraceViolation(
                "TR007",
                f"column {name!r} is {column.ndim}-D, expected "
                f"{expected_ndim}-D",
            ))
            continue
        lengths.add(column.shape[0])
    if len(lengths) > 1:
        violations.append(TraceViolation(
            "TR007", f"column lengths disagree: {sorted(lengths)}"
        ))
    return violations


def check_opcodes(trace: Trace) -> list[TraceViolation]:
    """TR001: every op value maps to a functional unit and latency."""
    ops = trace.columns["ops"]
    bad = ops >= _N_OPS
    if bad.any():
        index = _first(bad)
        return [TraceViolation(
            "TR001",
            f"opcode {int(ops[index])} has no functional unit or "
            f"latency mapping (valid: 0..{_N_OPS - 1})",
            index=index,
            count=int(bad.sum()),
        )]
    # Completeness of the ISA tables themselves (drift guard: a class
    # added to OpClass but not to the FU/latency maps).
    missing_fu = [op.name for op in OpClass if op not in FU_OF_OPCLASS]
    missing_lat = [op.name for op in OpClass if op not in LATENCY_OF_OPCLASS]
    violations = []
    if missing_fu:
        violations.append(TraceViolation(
            "TR001", f"OpClass {missing_fu} missing from FU_OF_OPCLASS"
        ))
    if missing_lat:
        violations.append(TraceViolation(
            "TR001", f"OpClass {missing_lat} missing from LATENCY_OF_OPCLASS"
        ))
    return violations


def check_dependencies(trace: Trace) -> list[TraceViolation]:
    """TR002: sources point strictly backward, at producers with dests."""
    columns = trace.columns
    sources = columns["sources"]
    n = sources.shape[0]
    if not n:
        return []
    valid = sources >= 0
    rows = np.arange(n).reshape(n, 1)
    forward = valid & (sources >= rows)
    violations = []
    if forward.any():
        row_mask = forward.any(axis=1)
        index = _first(row_mask)
        column = int(np.argmax(forward[index]))
        violations.append(TraceViolation(
            "TR002",
            f"depends on instruction {int(sources[index, column])}, which "
            "is not strictly earlier in the trace",
            index=index,
            count=int(row_mask.sum()),
        ))
    producers = np.where(valid & ~forward, sources, 0)
    destless = valid & ~forward & (columns["dests"][producers] == 0)
    if destless.any():
        row_mask = destless.any(axis=1)
        index = _first(row_mask)
        column = int(np.argmax(destless[index]))
        violations.append(TraceViolation(
            "TR002",
            f"depends on instruction {int(sources[index, column])}, which "
            "produces no register result",
            index=index,
            count=int(row_mask.sum()),
        ))
    return violations


def check_source_layout(trace: Trace) -> list[TraceViolation]:
    """TR003: canonical source rows (trailing -1 padding, legal width)."""
    sources = trace.columns["sources"]
    violations = []
    if sources.ndim != 2:
        return []  # TR007 already reported the shape problem
    if sources.shape[1] != MAX_SOURCES:
        violations.append(TraceViolation(
            "TR003",
            f"source width {sources.shape[1]} != on-disk width "
            f"{MAX_SOURCES}",
        ))
    below = sources < -1
    if below.any():
        row_mask = below.any(axis=1)
        violations.append(TraceViolation(
            "TR003",
            "source entries below -1 (padding must be exactly -1)",
            index=_first(row_mask),
            count=int(row_mask.sum()),
        ))
    if sources.shape[1] > 1:
        # A real producer after a -1 means the padding is interior: the
        # decode plane's pruned tuples would silently reorder it.
        interior = (sources[:, :-1] < 0) & (sources[:, 1:] >= 0)
        if interior.any():
            row_mask = interior.any(axis=1)
            violations.append(TraceViolation(
                "TR003",
                "-1 padding is interior; producers must be left-packed",
                index=_first(row_mask),
                count=int(row_mask.sum()),
            ))
    return violations


def check_memory_operands(
    trace: Trace, *, builder_invariants: bool = True
) -> list[TraceViolation]:
    """TR004: addresses/sizes agree with the memory class and ISA limits."""
    columns = trace.columns
    ops = columns["ops"]
    safe_ops = np.minimum(ops, _N_OPS - 1)
    memory = _MEMORY_MASK[safe_ops] & (ops < _N_OPS)
    addresses = columns["addresses"]
    sizes = columns["sizes"].astype(np.int64)
    violations = []

    nonmem_addr = ~memory & (addresses != -1)
    if nonmem_addr.any():
        violations.append(TraceViolation(
            "TR004",
            "non-memory instruction carries a memory address",
            index=_first(nonmem_addr),
            count=int(nonmem_addr.sum()),
        ))
    nonmem_size = ~memory & (sizes != 0)
    if nonmem_size.any():
        violations.append(TraceViolation(
            "TR004",
            "non-memory instruction carries a nonzero access size",
            index=_first(nonmem_size),
            count=int(nonmem_size.sum()),
        ))

    floor = DATA_SEGMENT_BASE if builder_invariants else 0
    low = memory & (addresses < floor)
    if low.any():
        violations.append(TraceViolation(
            "TR004",
            f"memory address below 0x{floor:x} "
            + ("(data segment base)" if builder_invariants
               else "(negative address)"),
            index=_first(low),
            count=int(low.sum()),
        ))
    high = memory & (addresses + np.maximum(sizes, 1) > ADDRESS_SPACE_LIMIT)
    if high.any():
        violations.append(TraceViolation(
            "TR004",
            f"access crosses the modeled address-space limit "
            f"0x{ADDRESS_SPACE_LIMIT:x}",
            index=_first(high),
            count=int(high.sum()),
        ))

    vector = _VECTOR_MEMORY[safe_ops] & memory
    scalar = memory & ~vector
    scalar_sizes = np.array(sorted(SCALAR_MEMORY_SIZES), dtype=np.int64)
    vector_sizes = np.array(sorted(VECTOR_MEMORY_SIZES), dtype=np.int64)
    bad_scalar = scalar & ~np.isin(sizes, scalar_sizes)
    if bad_scalar.any():
        index = _first(bad_scalar)
        violations.append(TraceViolation(
            "TR004",
            f"scalar access size {int(sizes[index])} not in "
            f"{sorted(SCALAR_MEMORY_SIZES)}",
            index=index,
            count=int(bad_scalar.sum()),
        ))
    bad_vector = vector & ~np.isin(sizes, vector_sizes)
    if bad_vector.any():
        index = _first(bad_vector)
        violations.append(TraceViolation(
            "TR004",
            f"vector access size {int(sizes[index])} not in "
            f"{sorted(VECTOR_MEMORY_SIZES)}",
            index=index,
            count=int(bad_vector.sum()),
        ))
    subword = memory & (sizes > 0) & (sizes < ALIGNED_BELOW)
    misaligned = subword & (addresses % np.maximum(sizes, 1) != 0)
    if misaligned.any():
        index = _first(misaligned)
        violations.append(TraceViolation(
            "TR004",
            f"sub-word access (size {int(sizes[index])}) is not "
            "naturally aligned",
            index=index,
            count=int(misaligned.sum()),
        ))
    return violations


def check_branch_operands(trace: Trace) -> list[TraceViolation]:
    """TR005: branch outcome/target fields appear only on CTRL ops."""
    columns = trace.columns
    ops = columns["ops"]
    ctrl = ops == int(OpClass.CTRL)
    takens = columns["takens"]
    targets = columns["targets"]
    violations = []
    bad_taken_value = takens > 1
    if bad_taken_value.any():
        violations.append(TraceViolation(
            "TR005",
            "taken flag outside {0, 1}",
            index=_first(bad_taken_value),
            count=int(bad_taken_value.sum()),
        ))
    nonctrl_taken = ~ctrl & (takens != 0)
    if nonctrl_taken.any():
        violations.append(TraceViolation(
            "TR005",
            "non-branch instruction marked taken",
            index=_first(nonctrl_taken),
            count=int(nonctrl_taken.sum()),
        ))
    nonctrl_target = ~ctrl & (targets != 0)
    if nonctrl_target.any():
        violations.append(TraceViolation(
            "TR005",
            "non-branch instruction carries a branch target",
            index=_first(nonctrl_target),
            count=int(nonctrl_target.sum()),
        ))
    bad_target = ctrl & (targets <= 0)
    if bad_target.any():
        violations.append(TraceViolation(
            "TR005",
            "branch target is not a positive code address",
            index=_first(bad_target),
            count=int(bad_target.sum()),
        ))
    return violations


def check_dest_flags(
    trace: Trace, *, builder_invariants: bool = True
) -> list[TraceViolation]:
    """TR006: destination flags agree with the opcode's result class."""
    from repro.uarch.pipeline.decode import REGFILE_OF_OPCLASS

    columns = trace.columns
    ops = columns["ops"]
    dests = columns["dests"]
    violations = []
    bad_value = dests > 1
    if bad_value.any():
        violations.append(TraceViolation(
            "TR006",
            "dest flag outside {0, 1}",
            index=_first(bad_value),
            count=int(bad_value.sum()),
        ))
    destless_table = np.array(
        [REGFILE_OF_OPCLASS.get(OpClass(v), -1) < 0 for v in range(_N_OPS)]
    )
    safe_ops = np.minimum(ops, _N_OPS - 1)
    known = ops < _N_OPS
    destless_class = destless_table[safe_ops] & known
    phantom = destless_class & (dests != 0)
    if phantom.any():
        violations.append(TraceViolation(
            "TR006",
            "store/branch-class instruction claims a register result",
            index=_first(phantom),
            count=int(phantom.sum()),
        ))
    if builder_invariants:
        result_class = ~destless_table[safe_ops] & known
        missing = result_class & (dests == 0)
        if missing.any():
            violations.append(TraceViolation(
                "TR006",
                "result-producing instruction has no dest flag",
                index=_first(missing),
                count=int(missing.sum()),
            ))
    return violations


def check_digest(
    trace: Trace, expected_digest: str | None
) -> list[TraceViolation]:
    """TR008: the recomputed content digest matches the expected one."""
    if expected_digest is None:
        return []
    from repro.runtime.keys import compute_trace_digest

    actual = compute_trace_digest(trace)
    if actual != expected_digest:
        return [TraceViolation(
            "TR008",
            f"content digest {actual} != expected {expected_digest}",
        )]
    return []


def check_roundtrip(trace: Trace) -> list[TraceViolation]:
    """TR009: serialize -> load reproduces the exact column bytes."""
    from repro.isa.serialize import load_trace, save_trace, trace_columns
    from repro.runtime.keys import compute_trace_digest

    violations = []
    with tempfile.TemporaryDirectory(prefix="repro-tracelint-") as root:
        path = Path(root) / "roundtrip.npz"
        try:
            save_trace(trace, path)
            loaded = load_trace(path)
        except (OSError, ValueError) as error:
            return [TraceViolation(
                "TR009", f"serialize round-trip failed: {error}"
            )]
        if loaded.name != trace.name:
            violations.append(TraceViolation(
                "TR009",
                f"round-trip renamed the trace: {loaded.name!r}",
            ))
        original = trace_columns(trace)
        reloaded = trace_columns(loaded)
        for name in sorted(original):
            before = original[name]
            after = reloaded[name]
            if before.dtype != after.dtype:
                violations.append(TraceViolation(
                    "TR009",
                    f"column {name!r} dtype changed across round-trip "
                    f"({before.dtype} -> {after.dtype})",
                ))
            elif before.tobytes() != after.tobytes():
                violations.append(TraceViolation(
                    "TR009",
                    f"column {name!r} bytes changed across round-trip",
                ))
        if not violations:
            before_digest = compute_trace_digest(trace)
            after_digest = compute_trace_digest(loaded)
            if before_digest != after_digest:
                violations.append(TraceViolation(
                    "TR009",
                    f"digest drifted across round-trip "
                    f"({before_digest} -> {after_digest})",
                ))
    return violations


def check_stamped_regions(trace: Trace) -> list[TraceViolation]:
    """TR011: template-stamped spans agree with their emit templates.

    Builders that stamp :class:`~repro.isa.emit.EmitTemplate` blocks
    attach :class:`~repro.isa.emit.StampRegion` records to the built
    trace (in-memory only; serialization drops them).  For every such
    region this rule re-derives, per instruction, the producing slot's
    static fields and checks the materialized columns against them:

    * the opcode equals the slot's class (and therefore its functional
      unit and latency, which key off the opcode tables);
    * dest flags and access sizes equal the slot's static shape;
    * each slot maps to one constant pc inside the region, distinct
      per slot (every slot is one static site);
    * control slots carry the builder's synthetic target (pc - 128 for
      back-edges, pc + 64 forward) and only control slots are taken.
    """
    regions = getattr(trace, "stamped_regions", ())
    if not regions:
        return []
    columns = trace.columns
    ops = columns["ops"]
    pcs = columns["pcs"]
    dests = columns["dests"]
    sizes = columns["sizes"]
    takens = columns["takens"]
    targets = columns["targets"]
    n = ops.shape[0]
    violations = []

    for number, region in enumerate(regions):
        template = region.template
        slot_of = np.asarray(region.slot_of)
        stop = region.start + slot_of.shape[0]
        label = f"stamped region #{number} ({template.name})"
        if region.start < 0 or stop > n:
            violations.append(TraceViolation(
                "TR011",
                f"{label} spans [{region.start}, {stop}) outside the "
                f"{n}-instruction trace",
            ))
            continue
        if not slot_of.size:
            continue
        if int(slot_of.max()) >= len(template.slots):
            violations.append(TraceViolation(
                "TR011",
                f"{label} names slot {int(slot_of.max())}; template has "
                f"{len(template.slots)}",
                index=region.start,
            ))
            continue
        span = slice(region.start, stop)

        bad = ops[span] != template.ops[slot_of]
        if bad.any():
            index = _first(bad)
            violations.append(TraceViolation(
                "TR011",
                f"{label}: opcode {int(ops[region.start + index])} "
                f"disagrees with slot "
                f"{template.slots[int(slot_of[index])].site!r} "
                "(functional unit and latency key off the opcode)",
                index=region.start + index,
                count=int(bad.sum()),
            ))
        bad = dests[span] != template.dests[slot_of]
        if bad.any():
            violations.append(TraceViolation(
                "TR011",
                f"{label}: dest flag disagrees with the slot's "
                "result class",
                index=region.start + _first(bad),
                count=int(bad.sum()),
            ))
        bad = sizes[span] != template.sizes[slot_of]
        if bad.any():
            violations.append(TraceViolation(
                "TR011",
                f"{label}: access size disagrees with the slot's "
                "static size",
                index=region.start + _first(bad),
                count=int(bad.sum()),
            ))

        # Per-slot pc constancy + distinctness (each slot is one static
        # site, so one synthetic pc).
        span_pcs = pcs[span]
        slot_pc: dict[int, int] = {}
        drifted = False
        for slot, pc in zip(slot_of.tolist(), span_pcs.tolist()):
            expected = slot_pc.setdefault(slot, pc)
            if expected != pc and not drifted:
                drifted = True
                violations.append(TraceViolation(
                    "TR011",
                    f"{label}: slot "
                    f"{template.slots[slot].site!r} emitted under "
                    f"multiple pcs (0x{expected:x}, 0x{pc:x})",
                ))
        if len(set(slot_pc.values())) != len(slot_pc):
            violations.append(TraceViolation(
                "TR011",
                f"{label}: distinct slots share one pc",
            ))

        is_ctrl = template.ops[slot_of] == int(OpClass.CTRL)
        bad = ~is_ctrl & (takens[span] != 0)
        if bad.any():
            violations.append(TraceViolation(
                "TR011",
                f"{label}: non-control slot marked taken",
                index=region.start + _first(bad),
                count=int(bad.sum()),
            ))
        backward = np.array(
            [slot.backward for slot in template.slots], dtype=bool
        )[slot_of]
        expected_targets = np.where(
            backward, span_pcs - 128, span_pcs + 64
        )
        bad = is_ctrl & (targets[span] != expected_targets)
        if bad.any():
            violations.append(TraceViolation(
                "TR011",
                f"{label}: control target disagrees with the builder's "
                "synthetic offset (pc - 128 backward, pc + 64 forward)",
                index=region.start + _first(bad),
                count=int(bad.sum()),
            ))
    return violations


def check_decode_plane(trace: Trace) -> list[TraceViolation]:
    """TR010: the decode plane agrees with an independent re-derivation.

    Verifies the *cached* plane when one exists (catching columns that
    were mutated after decoding, or a stale plane shipped through
    pickling) and a freshly built plane otherwise (catching decode
    logic that disagrees with the authoritative ISA tables).
    """
    from repro.uarch.pipeline.decode import (
        FETCH_LINE_SHIFT,
        REGFILE_OF_OPCLASS,
        DecodedTrace,
    )

    columns = trace.columns
    ops = columns["ops"]
    if (ops >= _N_OPS).any():
        return []  # unknown opcodes are TR001's finding; no plane exists
    decoded = trace._decoded
    if decoded is None:
        decoded = DecodedTrace(trace)
    n = len(ops)
    violations = []

    def mismatch(name: str, expected, actual) -> None:
        if expected != actual:
            index = next(
                (i for i, (e, a) in enumerate(zip(expected, actual))
                 if e != a),
                None,
            )
            violations.append(TraceViolation(
                "TR010",
                f"decode plane field {name!r} disagrees with the columns",
                index=index,
            ))

    if decoded.n != n:
        return [TraceViolation(
            "TR010",
            f"decode plane covers {decoded.n} instructions, trace has {n}",
        )]

    fu_table = np.array(
        [int(FU_OF_OPCLASS[OpClass(v)]) for v in range(_N_OPS)],
        dtype=np.int64,
    )
    latency_table = np.array(
        [LATENCY_OF_OPCLASS[OpClass(v)] for v in range(_N_OPS)],
        dtype=np.int64,
    )
    regfile_table = np.array(
        [REGFILE_OF_OPCLASS.get(OpClass(v), -1) for v in range(_N_OPS)],
        dtype=np.int64,
    )
    mismatch("op", ops.tolist(), decoded.op)
    mismatch("fu", fu_table[ops].tolist(), decoded.fu)
    mismatch("latency", latency_table[ops].tolist(), decoded.latency)
    mismatch("regfile", regfile_table[ops].tolist(), decoded.regfile)
    mismatch("is_load", _LOAD_MASK[ops].tolist(), decoded.is_load)
    mismatch("is_store", _STORE_MASK[ops].tolist(), decoded.is_store)
    mismatch(
        "is_branch", (ops == int(OpClass.CTRL)).tolist(), decoded.is_branch
    )
    mismatch("is_memory", _MEMORY_MASK[ops].tolist(), decoded.is_memory)
    mismatch("has_dest", columns["dests"].astype(bool).tolist(),
             decoded.has_dest)
    pcs = columns["pcs"]
    mismatch("pc", pcs.tolist(), decoded.pc)
    mismatch("line", (pcs >> FETCH_LINE_SHIFT).tolist(), decoded.line)
    addresses = columns["addresses"]
    sizes = columns["sizes"]
    mismatch("address", addresses.tolist(), decoded.address)
    mismatch("size", sizes.tolist(), decoded.size)
    mismatch("taken", columns["takens"].astype(bool).tolist(), decoded.taken)
    mismatch("target", columns["targets"].tolist(), decoded.target)

    memory = _MEMORY_MASK[ops]
    first_words = (addresses >> 3).tolist()
    last_words = (
        (addresses + np.maximum(sizes, 1).astype(np.int64) - 1) >> 3
    ).tolist()
    expected_words: list[tuple[int, ...] | None] = [None] * n
    for index in np.flatnonzero(memory).tolist():
        first = first_words[index]
        last = last_words[index]
        expected_words[index] = (
            (first,) if first == last else tuple(range(first, last + 1))
        )
    mismatch("words", expected_words, decoded.words)

    expected_sources = [
        tuple(int(s) for s in row if s >= 0)
        for row in columns["sources"].tolist()
    ]
    mismatch("sources", expected_sources, decoded.sources)
    return violations


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

#: rule id -> (title, applies in fast/strict mode).  TR008/TR009 do I/O
#: or need external expectations, so strict hooks skip them by default.
TRACE_RULES: dict[str, str] = {
    "TR001": "opcode validity",
    "TR002": "def-before-use",
    "TR003": "source layout",
    "TR004": "memory operands",
    "TR005": "branch operands",
    "TR006": "destination flags",
    "TR007": "column schema",
    "TR008": "content digest",
    "TR009": "serialize round-trip",
    "TR010": "decode plane",
    "TR011": "stamped regions",
}


def lint_trace(
    trace: Trace,
    *,
    expected_digest: str | None = None,
    builder_invariants: bool = True,
    include_roundtrip: bool = True,
) -> TraceLintReport:
    """Run every applicable rule; returns a full per-check report.

    ``builder_invariants`` additionally enforces conventions every
    :class:`~repro.isa.builder.TraceBuilder`-generated trace satisfies
    (data-segment addresses, dest flags on all result classes); turn it
    off for hand-assembled traces.  ``include_roundtrip`` controls the
    TR009 disk round-trip (skipped in the hot strict hooks).
    """
    try:
        instructions = len(trace)
    except (KeyError, TypeError):
        instructions = 0
    report = TraceLintReport(
        trace_name=trace.name, instructions=instructions
    )
    schema = check_schema(trace)
    report.checks.append(
        TraceCheck("TR007", TRACE_RULES["TR007"], tuple(schema))
    )
    if schema:
        # The remaining rules index the columns the schema check just
        # rejected; report the schema breakage alone rather than crash.
        return report

    outcomes = [
        ("TR001", check_opcodes(trace)),
        ("TR002", check_dependencies(trace)),
        ("TR003", check_source_layout(trace)),
        ("TR004", check_memory_operands(
            trace, builder_invariants=builder_invariants
        )),
        ("TR005", check_branch_operands(trace)),
        ("TR006", check_dest_flags(
            trace, builder_invariants=builder_invariants
        )),
        ("TR008", check_digest(trace, expected_digest)),
    ]
    if include_roundtrip:
        outcomes.append(("TR009", check_roundtrip(trace)))
    outcomes.append(("TR010", check_decode_plane(trace)))
    outcomes.append(("TR011", check_stamped_regions(trace)))
    for rule, violations in outcomes:
        report.checks.append(
            TraceCheck(rule, TRACE_RULES[rule], tuple(violations))
        )
    report.checks.sort(key=lambda check: check.rule)
    return report


def check_trace(
    trace: Trace,
    *,
    expected_digest: str | None = None,
    builder_invariants: bool = True,
    include_roundtrip: bool = False,
) -> Trace:
    """Strict-mode hook: lint and raise :class:`TraceLintError` on failure.

    Returns the trace unchanged on success so call sites can wrap
    expressions (``return check_trace(build())``).
    """
    report = lint_trace(
        trace,
        expected_digest=expected_digest,
        builder_invariants=builder_invariants,
        include_roundtrip=include_roundtrip,
    )
    if not report.ok:
        raise TraceLintError(report)
    return trace
