"""RepoLint: AST passes encoding this repo's domain-specific hazards.

Generic linters cannot know that a wall-clock read inside a kernel
poisons trace determinism, that writing into ``trace.columns`` corrupts
every content digest downstream, or that a configuration knob missing
from the cache key silently aliases simulation results.  Each rule here
encodes one such incident class (several were real: the ``memory.name``
key aliasing of PR 1, digest drift caught by ad-hoc guard tests):

=======  =============================================================
REP001   nondeterminism in library code: wall-clock reads, unseeded
         RNG, global NumPy random state (outside the CLI/bench tools)
REP002   direct mutation of trace columns or the decode plane outside
         their owning modules (use copy APIs like ``extract_window``)
REP003   a configuration dataclass field that the cache key builder
         (``runtime.keys.config_key``) never reads
REP004   digest-relevant serialization code changed without bumping
         ``CACHE_SCHEMA_VERSION`` (tracked via a pinned manifest)
REP005   bare ``except`` or silently swallowed broad ``except`` in the
         ``repro.runtime`` workers/executors
REP006   blocking calls inside ``repro.serve`` coroutine code:
         ``time.sleep`` (use ``asyncio.sleep``) or a synchronous
         argument-less ``.get()`` on a queue/pool handle without a
         timeout — either stalls the event loop for every request
REP007   ad-hoc configuration-grid loops in ``repro.analysis`` drivers
         that bypass ``repro.sweep``: a multi-axis comprehension fed to
         ``simulate_many``, or a ``simulate_trace``/``simulate_app``
         call nested two or more loops deep.  Hand-rolled grids get no
         manifest, no resume, and no sweep report; the committed figure
         oracles carry explicit per-line disables
REP008   per-cycle Python-object allocation in ``repro.uarch`` cycle
         loops: a container literal/comprehension assigned inside a
         ``while`` loop, a dict store keyed by a cycle-counter
         variable (a dict-keyed-by-cycle event queue), or a class
         instantiated per iteration.  The simulator's throughput
         lives and dies by allocation pressure in the cycle loop —
         preallocate, reuse, or use a bounded timing wheel; the few
         deliberate cases in the scalar core carry per-line disables
REP009   ad-hoc persistence outside the storage layer: a
         ``pickle.dump``/``marshal.dump``/``np.save``/``np.savez``/
         ``shelve.open`` call in a module that is not part of
         ``repro.store``, ``repro.runtime.cache``, or
         ``repro.isa.serialize``.  Every on-disk cache must go
         through the content-addressed stores — they carry the
         code-salted digests, atomic writes, and corruption checks
         that make cached bytes trustworthy; a hand-rolled pickle
         cache silently serves stale data across code versions
=======  =============================================================

Suppression: append ``# repolint: disable=REP00x`` (comma-separated for
several rules) to the offending line, or put
``# repolint: disable-file=REP00x`` anywhere in the file.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path

#: The package root this linter audits by default.
PACKAGE_ROOT = Path(__file__).resolve().parent.parent

RULES: dict[str, str] = {
    "REP001": "nondeterminism in library code",
    "REP002": "trace/decode-plane mutation outside owning modules",
    "REP003": "config field missing from the cache key",
    "REP004": "serialization change without a schema-version bump",
    "REP005": "bare or silently swallowed broad except in repro.runtime",
    "REP006": "blocking call in repro.serve coroutine code",
    "REP007": "ad-hoc config-grid loop bypassing repro.sweep",
    "REP008": "per-cycle object allocation in a repro.uarch cycle loop",
    "REP009": "ad-hoc on-disk cache outside the storage layer",
}

#: Modules allowed to be nondeterministic (CLI entry point, wall-clock
#: benchmarking) — REP001 does not apply there.
REP001_EXEMPT = ("__main__.py", "bench.py")

#: time/datetime attributes that read the wall clock (results-visible
#: nondeterminism).  perf_counter/monotonic/process_time only measure
#: durations and sleep only waits, so they stay legal.
WALL_CLOCK_ATTRS = {
    "time": {"time", "time_ns", "ctime", "localtime", "gmtime"},
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}

#: random-module attributes that are *not* global-state draws.
RANDOM_SAFE_ATTRS = {"Random", "SystemRandom", "getstate", "setstate"}

#: Modules that own the trace columns / decode plane and may mutate them.
REP002_OWNERS = (
    "isa/trace.py",
    "isa/builder.py",
    "isa/serialize.py",
    "uarch/pipeline/decode.py",
)

#: Where REP005 applies.
REP005_SCOPE = "runtime/"

#: Where REP006 applies: every asyncio serving layer — the single
#: server and the cluster router/supervisor tier built on it.
REP006_SCOPES = ("serve/", "cluster/")

#: Where REP007 applies (the experiment-driver layer).
REP007_SCOPE = "analysis/"

#: Where REP008 applies (the simulator's cycle-loop hot paths).
REP008_SCOPE = "uarch/"

#: Modules allowed to write on-disk artifacts (REP009): the
#: content-addressed stores, the result cache built on them, and the
#: versioned trace archive format.
REP009_OWNERS = ("store/", "runtime/cache.py", "isa/serialize.py")

#: Serialization writers that create an on-disk cache when called
#: anywhere else: ``module root -> flagged attributes``.
REP009_WRITERS: dict[str, set[str]] = {
    "pickle": {"dump"},
    "marshal": {"dump"},
    "numpy": {"save", "savez", "savez_compressed"},
    "shelve": {"open"},
}

#: Simulation entry points whose appearance inside a deep loop nest
#: marks a hand-rolled grid.
REP007_SIM_CALLS = {"simulate_trace", "simulate_app"}

#: Definitions whose source feeds the REP004 manifest digest: any
#: edit here can change cache-entry bytes or their addresses, so it
#: must be a conscious, versioned decision.
DIGEST_RELEVANT: dict[str, tuple[str, ...]] = {
    "isa/trace.py": ("MAX_SOURCES", "COLUMN_DTYPES"),
    "isa/serialize.py": (
        "FORMAT_VERSION", "trace_columns", "save_trace", "load_trace",
    ),
    "runtime/keys.py": (
        "config_key", "compute_trace_digest", "simulate_key",
        "trace_task_key",
    ),
}

MANIFEST_PATH = Path(__file__).resolve().parent / "serialization_manifest.json"

#: Suppression comment grammars.  RepoLint and FlowLint share the same
#: machinery (:func:`suppression_maps`), differing only in the tag, so
#: a ``flowlint: disable=FL003`` comment behaves exactly like a
#: ``repolint: disable=REP002`` one.
_DISABLE_PATTERNS: dict[str, tuple[re.Pattern, re.Pattern]] = {
    tag: (
        re.compile(rf"#\s*{tag}:\s*disable=([A-Z0-9, ]+)"),
        re.compile(rf"#\s*{tag}:\s*disable-file=([A-Z0-9, ]+)"),
    )
    for tag in ("repolint", "flowlint")
}


@dataclass(frozen=True)
class LintViolation:
    """One repolint finding."""

    rule: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def _comment_lines(source: str) -> list[tuple[int, str]]:
    """``(line, text)`` for every real ``#`` comment in the source.

    Tokenizing (rather than regexing raw lines) keeps disable-comment
    *examples* inside docstrings from acting as live suppressions —
    only actual comment tokens count.  Falls back to a plain line scan
    when the text does not tokenize (linters may see broken sources).
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        return [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError,
            ValueError):
        return [
            (number, text)
            for number, text in enumerate(source.splitlines(), start=1)
            if "#" in text
        ]


def suppression_maps(
    source: str, tag: str = "repolint"
) -> tuple[dict[int, set[str]], set[str]]:
    """``(per-line, whole-file)`` disabled-rule sets for one source text."""
    line_pattern, file_pattern = _DISABLE_PATTERNS[tag]
    per_line: dict[int, set[str]] = {}
    whole_file: set[str] = set()
    for number, text in _comment_lines(source):
        match = line_pattern.search(text)
        if match:
            per_line.setdefault(number, set()).update(
                rule.strip() for rule in match.group(1).split(",")
            )
        match = file_pattern.search(text)
        if match:
            whole_file |= {
                rule.strip() for rule in match.group(1).split(",")
            }
    return per_line, whole_file


def suppression_comments(
    source: str,
) -> list[tuple[int, str, str, bool]]:
    """Every disable comment: ``(line, tag, rule, is_file_level)``.

    The inventory behind ``repro lint-code --stale-suppressions``: each
    entry is one (comment, rule) pair, so a comment disabling two rules
    yields two entries and each can go stale independently.
    """
    entries: list[tuple[int, str, str, bool]] = []
    for number, text in _comment_lines(source):
        for tag, (line_pattern, file_pattern) in _DISABLE_PATTERNS.items():
            match = line_pattern.search(text)
            if match:
                for rule in match.group(1).split(","):
                    entries.append((number, tag, rule.strip(), False))
            match = file_pattern.search(text)
            if match:
                for rule in match.group(1).split(","):
                    entries.append((number, tag, rule.strip(), True))
    return entries


def _suppressions(source: str) -> tuple[dict[int, set[str]], set[str]]:
    return suppression_maps(source, "repolint")


class _ModuleAliases(ast.NodeVisitor):
    """Map local names to the modules they import (np -> numpy, ...)."""

    def __init__(self) -> None:
        self.aliases: dict[str, str] = {}
        self.from_imports: dict[str, str] = {}  # name -> "module.attr"

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            for alias in node.names:
                self.from_imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )


def _root_module(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """The imported module a dotted expression is rooted at, if any."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return aliases.get(node.id)
    return None


def _attr_chain(node: ast.expr) -> list[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    parts.reverse()
    return parts


# ----------------------------------------------------------------------
# REP001 — nondeterminism
# ----------------------------------------------------------------------

def nondet_findings(
    tree: ast.AST,
    aliases: dict[str, str],
    from_imports: dict[str, str],
) -> list[tuple[int, str]]:
    """Nondeterminism sources in one subtree (the REP001/FL001 core).

    ``tree`` may be a whole module or a single function node; alias
    maps come from the enclosing module.  Shared by the per-file REP001
    pass and the flow engine's per-function fact extraction, so the two
    layers can never disagree about what counts as nondeterministic.
    """
    findings: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            # from-import forms: default_rng(), urandom(), token_bytes()
            if isinstance(func, ast.Name):
                target = from_imports.get(func.id, "")
                if target == "numpy.random.default_rng" and not node.args:
                    findings.append((
                        node.lineno, "unseeded numpy default_rng()"
                    ))
                elif target in {"os.urandom", "uuid.uuid4", "uuid.uuid1"}:
                    findings.append((node.lineno, f"{target} call"))
            continue
        chain = _attr_chain(func)
        root = aliases.get(chain[0]) if chain else None
        if root == "random":
            if func.attr == "Random" and not node.args:
                findings.append((
                    node.lineno,
                    "unseeded random.Random(); pass an explicit seed",
                ))
            elif func.attr not in RANDOM_SAFE_ATTRS:
                findings.append((
                    node.lineno,
                    f"global random.{func.attr}(); use a seeded "
                    "random.Random instance",
                ))
        elif root == "numpy" and len(chain) >= 3 and chain[1] == "random":
            if func.attr == "default_rng" and node.args:
                continue  # seeded generator construction is fine
            findings.append((
                node.lineno,
                f"numpy global random state (np.random.{func.attr}); "
                "use a seeded Generator",
            ))
        elif root == "time" and func.attr in WALL_CLOCK_ATTRS["time"]:
            findings.append((
                node.lineno,
                f"wall-clock read time.{func.attr}(); timings belong in "
                "the CLI/bench layers",
            ))
        elif root == "datetime" and func.attr in (
            WALL_CLOCK_ATTRS["datetime"] | WALL_CLOCK_ATTRS["date"]
        ):
            findings.append((
                node.lineno, f"wall-clock read datetime {func.attr}()"
            ))
        elif root == "os" and func.attr == "urandom":
            findings.append((node.lineno, "os.urandom() entropy read"))
        elif root == "uuid" and func.attr in {"uuid1", "uuid4"}:
            findings.append((node.lineno, f"uuid.{func.attr}() call"))
        elif root == "secrets":
            findings.append((node.lineno, f"secrets.{func.attr}() call"))
    return findings


def _rep001(tree: ast.AST, relative: str) -> list[tuple[int, str]]:
    if relative.endswith(REP001_EXEMPT):
        return []
    imports = _ModuleAliases()
    imports.visit(tree)
    return nondet_findings(tree, imports.aliases, imports.from_imports)


# ----------------------------------------------------------------------
# REP002 — column / decode-plane mutation
# ----------------------------------------------------------------------

def _subscript_base(node: ast.expr) -> ast.expr:
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


def _targets_columns(node: ast.expr) -> bool:
    base = _subscript_base(node)
    return (
        isinstance(node, ast.Subscript)
        and isinstance(base, ast.Attribute)
        and base.attr == "columns"
    )


def _rep002(tree: ast.AST, relative: str) -> list[tuple[int, str]]:
    if relative.endswith(REP002_OWNERS):
        return []
    findings: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            elements = (
                target.elts
                if isinstance(target, (ast.Tuple, ast.List))
                else [target]
            )
            for element in elements:
                if _targets_columns(element):
                    findings.append((
                        node.lineno,
                        "writes into trace columns; columns are "
                        "immutable outside repro.isa — copy via "
                        "extract_window-style APIs",
                    ))
                elif (
                    isinstance(element, ast.Attribute)
                    and element.attr == "_decoded"
                ):
                    findings.append((
                        node.lineno,
                        "writes the cached decode plane; only "
                        "repro.uarch.pipeline.decode may do that",
                    ))
    return findings


# ----------------------------------------------------------------------
# REP003 — config-key field coverage
# ----------------------------------------------------------------------

def _dataclass_fields_from_source(source: str) -> dict[str, dict[str, int]]:
    """``class name -> {field name -> line}`` for @dataclass definitions."""
    tree = ast.parse(source)
    result: dict[str, dict[str, int]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        is_dataclass = any(
            (isinstance(d, ast.Name) and d.id == "dataclass")
            or (isinstance(d, ast.Attribute) and d.attr == "dataclass")
            or (
                isinstance(d, ast.Call)
                and (
                    (isinstance(d.func, ast.Name)
                     and d.func.id == "dataclass")
                    or (isinstance(d.func, ast.Attribute)
                        and d.func.attr == "dataclass")
                )
            )
            for d in node.decorator_list
        )
        if not is_dataclass:
            continue
        fields: dict[str, int] = {}
        for statement in node.body:
            if isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                fields[statement.target.id] = statement.lineno
        result[node.name] = fields
    return result


def _attrs_read_in_function(source: str, function: str) -> set[str]:
    """All attribute names read anywhere inside one top-level function."""
    tree = ast.parse(source)
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == function:
            return {
                sub.attr
                for sub in ast.walk(node)
                if isinstance(sub, ast.Attribute)
            }
    return set()


def config_key_coverage(
    config_source: str | None = None, keys_source: str | None = None
) -> dict[str, list[tuple[str, int]]]:
    """``class -> [(field, line), ...]`` fields the cache key never reads.

    The shared implementation behind REP003 and
    ``tests/test_config_key_guard.py``: every field of every
    configuration dataclass in ``uarch/config.py`` must appear as an
    attribute read inside ``runtime.keys.config_key`` (or be explicitly
    suppressed there).
    """
    if config_source is None:
        config_source = (PACKAGE_ROOT / "uarch" / "config.py").read_text()
    if keys_source is None:
        keys_source = (PACKAGE_ROOT / "runtime" / "keys.py").read_text()
    classes = _dataclass_fields_from_source(config_source)
    read = _attrs_read_in_function(keys_source, "config_key")
    missing: dict[str, list[tuple[str, int]]] = {}
    for name, fields in classes.items():
        gaps = [
            (field, line)
            for field, line in fields.items()
            if field not in read
        ]
        if gaps:
            missing[name] = gaps
    return missing


def _rep003() -> list[LintViolation]:
    config_path = PACKAGE_ROOT / "uarch" / "config.py"
    relative = str(config_path.relative_to(PACKAGE_ROOT.parent))
    violations = []
    for class_name, gaps in config_key_coverage().items():
        for field_name, line in gaps:
            violations.append(LintViolation(
                "REP003",
                relative,
                line,
                f"{class_name}.{field_name} is never read by "
                "runtime.keys.config_key: different configurations "
                "would alias one cache entry",
            ))
    return violations


# ----------------------------------------------------------------------
# REP004 — serialization manifest
# ----------------------------------------------------------------------

def _definition_source(source: str, names: tuple[str, ...]) -> str:
    """Concatenated source segments of the named top-level definitions."""
    tree = ast.parse(source)
    segments = []
    for node in tree.body:
        matched = None
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ) and node.name in names:
            matched = node.name
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id in names:
                    matched = target.id
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ) and node.target.id in names:
            matched = node.target.id
        if matched is not None:
            segment = ast.get_source_segment(source, node) or ""
            segments.append(f"### {matched}\n{segment}")
    return "\n".join(segments)


def _current_schema_version() -> int:
    source = (PACKAGE_ROOT / "runtime" / "keys.py").read_text()
    tree = ast.parse(source)
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "CACHE_SCHEMA_VERSION"
                ):
                    return int(ast.literal_eval(node.value))
    raise LookupError("CACHE_SCHEMA_VERSION not found in runtime/keys.py")


def serialization_fingerprint() -> dict:
    """Digest of every digest-relevant definition plus the schema version."""
    digest = hashlib.blake2b(digest_size=16)
    for relative in sorted(DIGEST_RELEVANT):
        source = (PACKAGE_ROOT / relative).read_text()
        digest.update(relative.encode())
        digest.update(
            _definition_source(source, DIGEST_RELEVANT[relative]).encode()
        )
    return {
        "schema_version": _current_schema_version(),
        "digest": digest.hexdigest(),
    }


def write_manifest(path: Path | None = None) -> dict:
    """Refresh the pinned manifest (``repro lint-code --update-manifest``)."""
    manifest = serialization_fingerprint()
    target = MANIFEST_PATH if path is None else path
    target.write_text(json.dumps(manifest, indent=2) + "\n")
    return manifest


def _rep004() -> list[LintViolation]:
    relative = "repro/runtime/keys.py"
    try:
        manifest = json.loads(MANIFEST_PATH.read_text())
    except (OSError, ValueError):
        return [LintViolation(
            "REP004", relative, 1,
            "serialization manifest missing/corrupt; run "
            "`python -m repro lint-code --update-manifest`",
        )]
    current = serialization_fingerprint()
    if current == manifest:
        return []
    if (
        current["digest"] != manifest.get("digest")
        and current["schema_version"] == manifest.get("schema_version")
    ):
        return [LintViolation(
            "REP004", relative, 1,
            "digest-relevant serialization code changed without bumping "
            "CACHE_SCHEMA_VERSION; bump it in runtime/keys.py, then run "
            "`python -m repro lint-code --update-manifest`",
        )]
    return [LintViolation(
        "REP004", relative, 1,
        "serialization manifest is stale; run "
        "`python -m repro lint-code --update-manifest`",
    )]


# ----------------------------------------------------------------------
# REP005 — exception hygiene in repro.runtime
# ----------------------------------------------------------------------

def _rep005(tree: ast.AST, relative: str) -> list[tuple[int, str]]:
    if REP005_SCOPE not in relative.replace("\\", "/"):
        return []
    findings: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            findings.append((
                node.lineno,
                "bare `except:`; name the exceptions this worker code "
                "expects",
            ))
            continue
        names = []
        candidates = (
            node.type.elts
            if isinstance(node.type, ast.Tuple)
            else [node.type]
        )
        for candidate in candidates:
            if isinstance(candidate, ast.Name):
                names.append(candidate.id)
            elif isinstance(candidate, ast.Attribute):
                names.append(candidate.attr)
        broad = {"Exception", "BaseException"} & set(names)
        swallows = all(
            isinstance(statement, ast.Pass)
            or (
                isinstance(statement, ast.Expr)
                and isinstance(statement.value, ast.Constant)
            )
            for statement in node.body
        )
        if broad and swallows:
            findings.append((
                node.lineno,
                f"`except {'/'.join(sorted(broad))}` silently swallows "
                "errors; narrow the exception types or handle the error",
            ))
    return findings


# ----------------------------------------------------------------------
# REP006 — blocking calls in repro.serve coroutine code
# ----------------------------------------------------------------------

def blocking_findings(
    owner: ast.AST, aliases: dict[str, str]
) -> list[tuple[int, str]]:
    """Event-loop-blocking primitives in one function body.

    The REP006/FL004 core, applied to any function node (``async`` or
    not — the flow engine also runs it over synchronous helpers that
    serve coroutines call).  Call nodes that are directly awaited
    (asyncio ``Queue.get()`` and friends) are non-blocking by
    definition and skipped.
    """
    awaited = {
        id(waited.value)
        for waited in ast.walk(owner)
        if isinstance(waited, ast.Await)
    }
    findings: list[tuple[int, str]] = []
    for node in ast.walk(owner):
        if not isinstance(node, ast.Call) or id(node) in awaited:
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        root = aliases.get(_attr_chain(func)[0])
        if root == "time" and func.attr == "sleep":
            findings.append((
                node.lineno,
                "time.sleep() blocks the event loop; use asyncio.sleep",
            ))
        elif (
            func.attr == "get"
            and not node.args
            and not any(
                keyword.arg == "timeout" for keyword in node.keywords
            )
            and not (
                isinstance(func.value, ast.Name)
                and func.value.id in aliases
            )
        ):
            findings.append((
                node.lineno,
                "synchronous .get() without a timeout can block the "
                "event loop indefinitely; await an asyncio queue or "
                "pass timeout=",
            ))
    return findings


def _rep006(tree: ast.AST, relative: str) -> list[tuple[int, str]]:
    """Flag event-loop-stalling calls in serving-layer coroutines.

    The serving layer is single-event-loop asyncio: one ``time.sleep``
    or un-timed synchronous queue/pool ``.get()`` inside a coroutine
    freezes batching, admission, and every in-flight request at once.
    Blocking work belongs behind ``run_in_executor`` (see
    ``ShardSearchBackend``), and delays belong to ``asyncio.sleep``.

    This direct-body pass is the *fallback*: full-package runs route
    REP006 through the flow engine's call graph instead
    (:func:`repro.verify.flow.rep006_violations`), which also sees
    blocking calls hidden inside synchronous helpers the coroutines
    call.
    """
    normalized = relative.replace("\\", "/")
    if not any(scope in normalized for scope in REP006_SCOPES):
        return []
    imports = _ModuleAliases()
    imports.visit(tree)
    findings: list[tuple[int, str]] = []
    for owner in ast.walk(tree):
        if isinstance(owner, ast.AsyncFunctionDef):
            findings.extend(blocking_findings(owner, imports.aliases))
    return findings


# ----------------------------------------------------------------------
# REP007 — ad-hoc config grids in repro.analysis
# ----------------------------------------------------------------------

def _rep007(tree: ast.AST, relative: str) -> list[tuple[int, str]]:
    """Flag hand-rolled configuration grids in the analysis drivers.

    Two shapes mark a grid: a comprehension with two or more ``for``
    generators fed to ``simulate_many`` (the cross-product is built
    inline), and a ``simulate_trace``/``simulate_app`` call nested two
    or more loops deep (the cross-product is walked by hand).  Either
    way the grid has no manifest, no resume, and no report —
    ``repro.sweep`` exists for exactly this; the committed figure
    oracles that sweeps are validated *against* carry explicit
    per-line disables.
    """
    if REP007_SCOPE not in relative.replace("\\", "/"):
        return []
    findings: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "simulate_many"
        ):
            for argument in node.args:
                if isinstance(
                    argument, (ast.ListComp, ast.GeneratorExp, ast.SetComp)
                ) and len(argument.generators) >= 2:
                    findings.append((
                        node.lineno,
                        f"{len(argument.generators)}-axis comprehension "
                        "fed to simulate_many builds a config grid "
                        "inline; declare it as a repro.sweep spec",
                    ))
                    break

    def descend(node: ast.AST, depth: int) -> None:
        for child in ast.iter_child_nodes(node):
            child_depth = depth
            if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                child_depth = depth + 1
            elif isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                child_depth = 0
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in REP007_SIM_CALLS
                and depth >= 2
            ):
                findings.append((
                    child.lineno,
                    f"{child.func.attr} inside a {depth}-deep loop nest "
                    "walks a config grid by hand; declare it as a "
                    "repro.sweep spec",
                ))
            descend(child, child_depth)

    descend(tree, 0)
    return sorted(set(findings))


# ----------------------------------------------------------------------
# REP008 — per-cycle allocation in repro.uarch cycle loops
# ----------------------------------------------------------------------

#: Container expressions whose evaluation allocates a fresh object.
_REP008_ALLOCS = {
    ast.List: "list literal",
    ast.Dict: "dict literal",
    ast.Set: "set literal",
    ast.ListComp: "list comprehension",
    ast.SetComp: "set comprehension",
    ast.DictComp: "dict comprehension",
}

_CAMEL_CASE = re.compile(r"^[A-Z][A-Za-z0-9]*[a-z][A-Za-z0-9]*$")


def _rep008(tree: ast.AST, relative: str) -> list[tuple[int, str]]:
    """Flag per-cycle Python-object allocation in ``uarch/`` code.

    The cycle loop (``while retired < n``) runs hundreds of thousands
    of times per simulation, so an object allocated inside it is an
    object allocated *per simulated cycle*: container literals and
    comprehensions assigned each iteration, dict stores keyed by a
    cycle counter (an unbounded event queue growing with simulated
    time — the shape the timing wheel replaced), and classes
    instantiated per iteration (the per-instruction ``Instruction``
    objects the decode plane replaced).  Exception construction in
    ``raise`` statements is exempt — runaway guards fire once.
    """
    if REP008_SCOPE not in relative.replace("\\", "/"):
        return []
    raised: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Raise):
            for sub in ast.walk(node):
                raised.add(id(sub))
    findings: list[tuple[int, str]] = []
    seen: set[int] = set()
    for loop in ast.walk(tree):
        if not isinstance(loop, ast.While):
            continue
        for node in ast.walk(loop):
            if node is loop or id(node) in seen:
                continue
            seen.add(id(node))
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                value = getattr(node, "value", None)
                kind = _REP008_ALLOCS.get(type(value))
                if kind is not None:
                    findings.append((
                        node.lineno,
                        f"assigns a fresh {kind} inside a cycle loop; "
                        "hoist the allocation and reuse the container",
                    ))
                if isinstance(target, ast.Subscript):
                    for index in ast.walk(target.slice):
                        if (
                            isinstance(index, ast.Name)
                            and "cycle" in index.id.lower()
                        ):
                            findings.append((
                                node.lineno,
                                f"dict store keyed by `{index.id}` builds "
                                "an event queue that grows with simulated "
                                "time; use a bounded timing wheel",
                            ))
                            break
            if (
                isinstance(node, ast.Call)
                and id(node) not in raised
            ):
                name = None
                if isinstance(node.func, ast.Name):
                    name = node.func.id
                elif isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                if name and _CAMEL_CASE.match(name):
                    findings.append((
                        node.lineno,
                        f"instantiates {name} inside a cycle loop; "
                        "per-cycle class instances thrash the allocator "
                        "— keep hot state in preallocated arrays",
                    ))
    return sorted(set(findings))


# ----------------------------------------------------------------------
# REP009 — ad-hoc persistence outside the storage layer
# ----------------------------------------------------------------------

def _rep009(tree: ast.AST, relative: str) -> list[tuple[int, str]]:
    """Flag serialization writes outside the content-addressed stores.

    ``repro.store`` and the result cache built on it exist so that
    every cached byte on disk is digest-addressed (code-salted — a
    source change invalidates it), atomically written, and
    checksum-verified on read.  A ``pickle.dump`` or ``np.save`` call
    anywhere else starts a parallel cache with none of those
    properties: it survives code changes it should not survive and
    crashes (or worse, misleads) on torn writes.  Reads are not
    flagged — consuming a store-managed file elsewhere is fine.
    """
    normalized = relative.replace("\\", "/")
    if any(owner in normalized for owner in REP009_OWNERS):
        return []
    imports = _ModuleAliases()
    imports.visit(tree)
    findings: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        attr = None
        root = None
        if isinstance(func, ast.Attribute):
            attr = func.attr
            root = _root_module(func, imports.aliases)
        elif isinstance(func, ast.Name):
            target = imports.from_imports.get(func.id)
            if target is not None:
                root, _, attr = target.rpartition(".")
        if root is None or attr is None:
            continue
        flagged = REP009_WRITERS.get(root.split(".")[0])
        if flagged and attr in flagged:
            findings.append((
                node.lineno,
                f"{root.split('.')[0]}.{attr} writes an ad-hoc on-disk "
                "artifact outside the storage layer; route it through "
                "repro.store (content-addressed, code-salted, "
                "checksummed) or repro.runtime.cache",
            ))
    return sorted(set(findings))


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

_PER_FILE_RULES = {
    "REP001": _rep001,
    "REP002": _rep002,
    "REP005": _rep005,
    "REP006": _rep006,
    "REP007": _rep007,
    "REP008": _rep008,
    "REP009": _rep009,
}


def lint_source(
    source: str,
    relative: str,
    rules: set[str] | None = None,
    honor_suppressions: bool = True,
) -> list[LintViolation]:
    """Run the per-file rules over one module's source text.

    ``honor_suppressions=False`` reports findings even on disabled
    lines — the stale-suppression audit uses it to learn what each
    disable comment actually suppresses.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [LintViolation(
            "REP000", relative, error.lineno or 1,
            f"syntax error: {error.msg}",
        )]
    if honor_suppressions:
        per_line, whole_file = _suppressions(source)
    else:
        per_line, whole_file = {}, set()
    violations: list[LintViolation] = []
    for rule, implementation in _PER_FILE_RULES.items():
        if rules is not None and rule not in rules:
            continue
        if rule in whole_file:
            continue
        for line, message in implementation(tree, relative):
            if rule in per_line.get(line, ()):
                continue
            violations.append(LintViolation(rule, relative, line, message))
    return violations


def _flow_rep006() -> list[LintViolation] | None:
    """Interprocedural REP006 via the flow engine; ``None`` if unusable."""
    try:
        from repro.verify import flow

        return flow.rep006_violations()
    except Exception:
        return None


def lint_paths(
    paths: list[Path] | None = None,
    rules: set[str] | None = None,
    use_flow: bool | None = None,
) -> list[LintViolation]:
    """Run RepoLint over source files (defaults to all of ``src/repro``).

    Repo-level rules (REP003, REP004) run whenever their subjects are
    in scope, i.e. always for the default full-package run.  Full
    default runs also upgrade REP006 to the flow engine's call-graph
    reachability check (blocking calls hidden inside helpers that serve
    coroutines call); explicit path subsets and environments where the
    flow engine cannot build fall back to the direct-body pass.
    """
    if paths is None:
        files = sorted(PACKAGE_ROOT.rglob("*.py"))
    else:
        files = []
        for path in paths:
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            else:
                files.append(path)
    if use_flow is None:
        use_flow = paths is None
    flow_rep006: list[LintViolation] | None = None
    if use_flow and (rules is None or "REP006" in rules):
        flow_rep006 = _flow_rep006()
    per_file_rules = rules
    if flow_rep006 is not None:
        per_file_rules = (
            set(RULES) if rules is None else set(rules)
        ) - {"REP006"}
    violations: list[LintViolation] = []
    for path in files:
        try:
            relative = str(path.resolve().relative_to(PACKAGE_ROOT.parent))
        except ValueError:
            relative = str(path)
        violations.extend(
            lint_source(path.read_text(), relative, rules=per_file_rules)
        )
    if flow_rep006 is not None:
        violations.extend(flow_rep006)
    if rules is None or "REP003" in rules:
        violations.extend(_rep003())
    if rules is None or "REP004" in rules:
        violations.extend(_rep004())
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations
