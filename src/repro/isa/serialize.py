"""Trace persistence: compact columnar save/load.

Traces are expensive to generate (the kernels execute the real
algorithms), so experiment pipelines benefit from caching them on
disk.  The format is a columnar ``.npz`` (one numpy array per
instruction field, sources padded to three columns with -1), which
loads an order of magnitude faster than per-instruction JSON and
compresses well because the columns are highly repetitive.

Since :class:`~repro.isa.trace.Trace` stores these same columns
natively, :func:`trace_columns` is a near-zero-copy view and
:func:`load_trace` is a plain array read — no per-instruction Python
objects are built on either side.  The exact bytes of these columns
are also what the runtime cache's content digests hash, so "bytes that
would be written" and "bytes that are hashed" can never diverge.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.isa.trace import MAX_SOURCES, Trace

#: Format identifier stored inside the archive.
FORMAT_VERSION = 1

__all__ = ["FORMAT_VERSION", "MAX_SOURCES", "trace_columns", "save_trace",
           "load_trace"]


def trace_columns(trace: Trace) -> dict[str, np.ndarray]:
    """Columnar encoding of a trace (the on-disk layout, in memory).

    Shared by :func:`save_trace` and the runtime cache's content
    digests.  This is a shallow copy of the trace's native columns;
    traces whose source width exceeds the format's three columns are
    rejected, exactly as the row-by-row encoder used to.
    """
    columns = trace.columns
    sources = columns["sources"]
    if sources.ndim == 2 and sources.shape[1] > MAX_SOURCES:
        overflow = sources[:, MAX_SOURCES:] >= 0
        wide_rows = np.flatnonzero(overflow.any(axis=1))
        if wide_rows.size:
            row = int(wide_rows[0])
            count = int((sources[row] >= 0).sum())
            raise ValueError(
                f"instruction {row} has {count} sources; "
                f"the format stores at most {MAX_SOURCES}"
            )
        columns = dict(columns)
        columns["sources"] = np.ascontiguousarray(
            sources[:, :MAX_SOURCES]
        )
        return columns
    return dict(columns)


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write a trace to ``path`` (``.npz``)."""
    np.savez_compressed(
        path,
        version=np.int32(FORMAT_VERSION),
        name=np.array(trace.name),
        **trace_columns(trace),
    )


def load_trace(path: str | Path, *, strict: bool = False) -> Trace:
    """Read a trace written by :func:`save_trace`.

    The stored arrays become the trace's native columns directly; no
    instruction objects are materialized.  With ``strict=True`` the
    loaded trace is run through :func:`repro.verify.check_trace`, so a
    corrupted or hand-tampered archive raises
    :class:`~repro.verify.TraceLintError` instead of poisoning
    downstream measurements.
    """
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["version"])
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version}")
        name = str(archive["name"])
        columns = {
            "ops": archive["ops"],
            "pcs": archive["pcs"],
            "dests": archive["dests"],
            "addresses": archive["addresses"],
            "sizes": archive["sizes"],
            "takens": archive["takens"],
            "targets": archive["targets"],
            "sources": archive["sources"],
        }
    trace = Trace(name, columns=columns)
    if strict:
        from repro.verify import check_trace

        check_trace(trace)
    return trace
