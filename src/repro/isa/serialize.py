"""Trace persistence: compact columnar save/load.

Traces are expensive to generate (the kernels execute the real
algorithms), so experiment pipelines benefit from caching them on
disk.  The format is a columnar ``.npz`` (one numpy array per
instruction field, sources padded to three columns with -1), which
loads an order of magnitude faster than per-instruction JSON and
compresses well because the columns are highly repetitive.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.isa.trace import Trace

#: Maximum sources an instruction may carry in the on-disk format.
MAX_SOURCES = 3
#: Format identifier stored inside the archive.
FORMAT_VERSION = 1


def trace_columns(trace: Trace) -> dict[str, np.ndarray]:
    """Columnar encoding of a trace (the on-disk layout, in memory).

    Shared by :func:`save_trace` and the runtime cache's content
    digests, so "bytes that would be written" and "bytes that are
    hashed" can never diverge.
    """
    n = len(trace)
    ops = np.empty(n, dtype=np.uint8)
    pcs = np.empty(n, dtype=np.int64)
    dests = np.empty(n, dtype=np.uint8)
    addresses = np.empty(n, dtype=np.int64)
    sizes = np.empty(n, dtype=np.int32)
    takens = np.empty(n, dtype=np.uint8)
    targets = np.empty(n, dtype=np.int64)
    sources = np.full((n, MAX_SOURCES), -1, dtype=np.int64)

    for index, instruction in enumerate(trace.instructions):
        if len(instruction.sources) > MAX_SOURCES:
            raise ValueError(
                f"instruction {index} has {len(instruction.sources)} sources; "
                f"the format stores at most {MAX_SOURCES}"
            )
        ops[index] = instruction.op
        pcs[index] = instruction.pc
        dests[index] = instruction.has_dest
        addresses[index] = instruction.address
        sizes[index] = instruction.size
        takens[index] = instruction.taken
        targets[index] = instruction.target
        for column, source in enumerate(instruction.sources):
            sources[index, column] = source

    return {
        "ops": ops,
        "pcs": pcs,
        "dests": dests,
        "addresses": addresses,
        "sizes": sizes,
        "takens": takens,
        "targets": targets,
        "sources": sources,
    }


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write a trace to ``path`` (``.npz``)."""
    np.savez_compressed(
        path,
        version=np.int32(FORMAT_VERSION),
        name=np.array(trace.name),
        **trace_columns(trace),
    )


def load_trace(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["version"])
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version}")
        name = str(archive["name"])
        ops = archive["ops"]
        pcs = archive["pcs"]
        dests = archive["dests"]
        addresses = archive["addresses"]
        sizes = archive["sizes"]
        takens = archive["takens"]
        targets = archive["targets"]
        sources = archive["sources"]

    instructions = []
    for index in range(len(ops)):
        row = sources[index]
        instruction_sources = tuple(
            int(value) for value in row if value >= 0
        )
        instructions.append(
            Instruction(
                op=OpClass(int(ops[index])),
                pc=int(pcs[index]),
                sources=instruction_sources,
                has_dest=bool(dests[index]),
                address=int(addresses[index]),
                size=int(sizes[index]),
                taken=bool(takens[index]),
                target=int(targets[index]),
            )
        )
    return Trace(name, instructions)
