"""Dynamic instruction record.

One :class:`Instruction` is one executed operation in a trace.  Data
dependencies are expressed directly as *producer indices*: ``sources``
holds the trace indices of the instructions whose results this one
consumes (the trace builder's virtual registers are in SSA form, so a
register name and the index of its producer are the same thing; the
out-of-order core models physical-register capacity by counting
in-flight producers instead of replaying the rename tables).
"""

from __future__ import annotations

from repro.isa.opcodes import LOAD_OPS, MEMORY_OPS, OpClass, STORE_OPS


class Instruction:
    """One dynamic instruction.

    Attributes
    ----------
    op:
        Operation class.
    pc:
        Synthetic program counter of the static instruction; the same
        source-level emit site always yields the same pc, which is what
        the branch predictor and I-cache index on.
    sources:
        Trace indices of producer instructions (empty tuple for none).
    has_dest:
        Whether the instruction produces a register result.
    address:
        Effective byte address for memory operations, -1 otherwise.
    size:
        Access size in bytes for memory operations, 0 otherwise.
    taken:
        Branch outcome (meaningful only for ``OpClass.CTRL``).
    target:
        Branch target pc (meaningful only for ``OpClass.CTRL``).
    """

    __slots__ = ("op", "pc", "sources", "has_dest", "address", "size",
                 "taken", "target")

    def __init__(
        self,
        op: OpClass,
        pc: int,
        sources: tuple[int, ...] = (),
        has_dest: bool = False,
        address: int = -1,
        size: int = 0,
        taken: bool = False,
        target: int = 0,
    ) -> None:
        self.op = op
        self.pc = pc
        self.sources = sources
        self.has_dest = has_dest
        self.address = address
        self.size = size
        self.taken = taken
        self.target = target

    @property
    def is_memory(self) -> bool:
        """True for loads and stores (scalar or vector)."""
        return self.op in MEMORY_OPS

    @property
    def is_load(self) -> bool:
        """True for scalar and vector loads."""
        return self.op in LOAD_OPS

    @property
    def is_store(self) -> bool:
        """True for scalar and vector stores."""
        return self.op in STORE_OPS

    @property
    def is_branch(self) -> bool:
        """True for control transfer instructions."""
        return self.op == OpClass.CTRL

    def __repr__(self) -> str:
        extra = ""
        if self.is_memory:
            extra = f" addr=0x{self.address:x} size={self.size}"
        if self.is_branch:
            extra = f" taken={self.taken} target=0x{self.target:x}"
        return (
            f"Instruction({self.op.name} pc=0x{self.pc:x} "
            f"srcs={self.sources}{extra})"
        )
