"""Trace container and per-class statistics.

A :class:`Trace` is the unit of work the micro-architecture simulator
consumes: an ordered dynamic instruction stream plus the bookkeeping
needed for the paper's measurements (instruction breakdown for Fig. 1,
instruction counts for Table III).

Traces are stored natively as a structure of arrays — one NumPy column
per instruction field, exactly the layout the on-disk ``.npz`` format
(:mod:`repro.isa.serialize`) and the runtime cache's content digests
use.  :class:`~repro.isa.instruction.Instruction` objects are
materialized lazily, only when code actually asks for them (debugging,
``repr``, legacy iteration); the simulator and the analytics read the
columns directly.  This makes ``load_trace`` a plain array read,
``slice`` a zero-copy view, and per-trace statistics a handful of
vectorized passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.isa.instruction import Instruction
from repro.isa.opcodes import FIG1_ORDER, MEMORY_OPS, OpClass

#: Maximum sources the columnar layout reserves per instruction (the
#: on-disk format width; wider traces can exist in memory but cannot be
#: serialized or digested).
MAX_SOURCES = 3

#: Column name -> dtype of the native (and on-disk) layout.
COLUMN_DTYPES: dict[str, type] = {
    "ops": np.uint8,
    "pcs": np.int64,
    "dests": np.uint8,
    "addresses": np.int64,
    "sizes": np.int32,
    "takens": np.uint8,
    "targets": np.int64,
    "sources": np.int64,
}

#: OpClass -> is it a memory operation (vectorized lookup table).
_IS_MEMORY_OP = np.array(
    [OpClass(value) in MEMORY_OPS for value in range(len(OpClass))],
    dtype=bool,
)


@dataclass(frozen=True)
class InstructionMix:
    """Per-class instruction counts with convenience accessors."""

    counts: tuple[int, ...]  # indexed by OpClass value

    @property
    def total(self) -> int:
        """Total dynamic instructions."""
        return sum(self.counts)

    def count(self, op: OpClass) -> int:
        """Dynamic count of one class."""
        return self.counts[op]

    def fraction(self, op: OpClass) -> float:
        """Fraction of the trace in one class (0 when empty)."""
        total = self.total
        return self.counts[op] / total if total else 0.0

    def control_fraction(self) -> float:
        """Fraction of branches/jumps (paper: 25%/18%/16% vs ~2% SIMD)."""
        return self.fraction(OpClass.CTRL)

    def load_fraction(self) -> float:
        """Fraction of loads, scalar plus vector."""
        return self.fraction(OpClass.ILOAD) + self.fraction(OpClass.VLOAD)

    def store_fraction(self) -> float:
        """Fraction of stores, scalar plus vector."""
        return self.fraction(OpClass.ISTORE) + self.fraction(OpClass.VSTORE)

    def breakdown(self) -> dict[str, int]:
        """Counts keyed by lower-case class name, in Fig. 1 order."""
        return {op.name.lower(): self.counts[op] for op in FIG1_ORDER}


def concat_columns(
    chunks: Sequence[Mapping[str, np.ndarray]],
) -> dict[str, np.ndarray]:
    """Bulk append: concatenate column chunks into one columnar layout.

    The builder's fast path materializes template stamps as independent
    column chunks; this joins them (and any interleaved scalar-emitted
    chunks) into the single contiguous layout :class:`Trace` stores.
    An empty chunk list yields a valid zero-length trace.
    """
    if not chunks:
        return {
            name: np.empty(
                (0, MAX_SOURCES) if name == "sources" else 0,
                dtype=COLUMN_DTYPES[name],
            )
            for name in COLUMN_DTYPES
        }
    if len(chunks) == 1:
        return dict(chunks[0])
    return {
        name: np.concatenate([chunk[name] for chunk in chunks])
        for name in COLUMN_DTYPES
    }


def _columns_from_instructions(
    instructions: Sequence[Instruction],
) -> dict[str, np.ndarray]:
    """Encode instruction objects into the columnar layout.

    The source width grows past :data:`MAX_SOURCES` when an instruction
    carries more sources than the serialized format allows; such traces
    simulate fine but are rejected at save/digest time.
    """
    n = len(instructions)
    width = MAX_SOURCES
    for instruction in instructions:
        if len(instruction.sources) > width:
            width = len(instruction.sources)
    ops = np.empty(n, dtype=np.uint8)
    pcs = np.empty(n, dtype=np.int64)
    dests = np.empty(n, dtype=np.uint8)
    addresses = np.empty(n, dtype=np.int64)
    sizes = np.empty(n, dtype=np.int32)
    takens = np.empty(n, dtype=np.uint8)
    targets = np.empty(n, dtype=np.int64)
    sources = np.full((n, width), -1, dtype=np.int64)
    for index, instruction in enumerate(instructions):
        ops[index] = instruction.op
        pcs[index] = instruction.pc
        dests[index] = instruction.has_dest
        addresses[index] = instruction.address
        sizes[index] = instruction.size
        takens[index] = instruction.taken
        targets[index] = instruction.target
        for column, source in enumerate(instruction.sources):
            sources[index, column] = source
    return {
        "ops": ops,
        "pcs": pcs,
        "dests": dests,
        "addresses": addresses,
        "sizes": sizes,
        "takens": takens,
        "targets": targets,
        "sources": sources,
    }


class Trace:
    """An ordered dynamic instruction stream with its mix statistics.

    Construct either from :class:`Instruction` objects (tests,
    hand-built traces) or, zero-copy, from a column dictionary via the
    ``columns`` keyword (the builder, the loader, and ``slice`` all use
    this path).
    """

    __slots__ = (
        "name", "columns", "_instructions", "_decoded", "stamped_regions"
    )

    def __init__(
        self,
        name: str,
        instructions: Sequence[Instruction] = (),
        *,
        columns: Mapping[str, np.ndarray] | None = None,
    ) -> None:
        self.name = name
        self._decoded = None  # per-trace decode plane (repro.uarch)
        #: Template-stamped spans (set by the builder; not serialized).
        self.stamped_regions: tuple = ()
        if columns is not None:
            missing = COLUMN_DTYPES.keys() - columns.keys()
            if missing:
                raise ValueError(f"trace columns missing {sorted(missing)}")
            self.columns = dict(columns)
            self._instructions: list[Instruction] | None = None
        else:
            materialized = list(instructions)
            self.columns = _columns_from_instructions(materialized)
            self._instructions = materialized

    # ------------------------------------------------------------------
    # Pickling: ship only the columns; caches rebuild lazily.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        return {"name": self.name, "columns": self.columns}

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self.columns = state["columns"]
        self._instructions = None
        self._decoded = None
        self.stamped_regions = ()

    # ------------------------------------------------------------------
    # Instruction materialization (debugging / legacy object access)
    # ------------------------------------------------------------------
    def _materialize(self, index: int) -> Instruction:
        columns = self.columns
        row = columns["sources"][index]
        return Instruction(
            op=OpClass(int(columns["ops"][index])),
            pc=int(columns["pcs"][index]),
            sources=tuple(int(value) for value in row if value >= 0),
            has_dest=bool(columns["dests"][index]),
            address=int(columns["addresses"][index]),
            size=int(columns["sizes"][index]),
            taken=bool(columns["takens"][index]),
            target=int(columns["targets"][index]),
        )

    @property
    def instructions(self) -> list[Instruction]:
        """The trace as :class:`Instruction` objects (built lazily)."""
        if self._instructions is None:
            self._instructions = [
                self._materialize(index) for index in range(len(self))
            ]
        return self._instructions

    def __len__(self) -> int:
        return len(self.columns["ops"])

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index):
        if isinstance(index, int) and self._instructions is None:
            n = len(self)
            if index < -n or index >= n:
                raise IndexError("trace index out of range")
            return self._materialize(index % n if index < 0 else index)
        return self.instructions[index]

    def __repr__(self) -> str:
        return f"Trace({self.name!r}, {len(self)} instructions)"

    # ------------------------------------------------------------------
    # Statistics (vectorized)
    # ------------------------------------------------------------------
    def mix(self) -> InstructionMix:
        """Compute the per-class instruction breakdown."""
        counts = np.bincount(self.columns["ops"], minlength=len(OpClass))
        return InstructionMix(counts=tuple(int(c) for c in counts))

    def branch_count(self) -> int:
        """Number of control instructions."""
        return int((self.columns["ops"] == OpClass.CTRL).sum())

    def slice(self, limit: int) -> "Trace":
        """First ``limit`` instructions as a new trace (zero-copy views).

        Dependencies always point backwards, so any prefix of a trace is
        itself a well-formed trace.
        """
        columns = {
            name: column[:limit] for name, column in self.columns.items()
        }
        return Trace(f"{self.name}[:{limit}]", columns=columns)

    def validate(self) -> None:
        """Check well-formedness: producers precede consumers and have dests.

        Raises ``ValueError`` on the first violation (in trace order);
        used by tests and by kernel development as a sanity gate.
        """
        n = len(self)
        if not n:
            return
        columns = self.columns
        sources = columns["sources"]
        valid = sources >= 0
        forward = valid & (sources >= np.arange(n).reshape(n, 1))
        producers = np.where(valid & ~forward, sources, 0)
        destless = (
            valid & ~forward & (columns["dests"][producers] == 0)
        )
        source_bad = forward | destless
        bad_rows = np.flatnonzero(source_bad.any(axis=1))
        first_source_row = int(bad_rows[0]) if bad_rows.size else n
        memory_bad = _IS_MEMORY_OP[columns["ops"]] & (
            columns["addresses"] < 0
        )
        bad_memory = np.flatnonzero(memory_bad)
        first_memory_row = int(bad_memory[0]) if bad_memory.size else n
        if first_source_row >= n and first_memory_row >= n:
            return
        if first_source_row <= first_memory_row:
            row = first_source_row
            column = int(np.argmax(source_bad[row]))
            source = int(sources[row, column])
            if forward[row, column]:
                raise ValueError(
                    f"instruction {row} depends on {source} which is "
                    "not strictly earlier in the trace"
                )
            raise ValueError(
                f"instruction {row} depends on {source} which "
                "produces no register result"
            )
        raise ValueError(
            f"memory instruction {first_memory_row} has no address"
        )
