"""Trace container and per-class statistics.

A :class:`Trace` is the unit of work the micro-architecture simulator
consumes: an ordered list of dynamic instructions plus the bookkeeping
needed for the paper's measurements (instruction breakdown for Fig. 1,
instruction counts for Table III).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.isa.instruction import Instruction
from repro.isa.opcodes import FIG1_ORDER, OpClass


@dataclass(frozen=True)
class InstructionMix:
    """Per-class instruction counts with convenience accessors."""

    counts: tuple[int, ...]  # indexed by OpClass value

    @property
    def total(self) -> int:
        """Total dynamic instructions."""
        return sum(self.counts)

    def count(self, op: OpClass) -> int:
        """Dynamic count of one class."""
        return self.counts[op]

    def fraction(self, op: OpClass) -> float:
        """Fraction of the trace in one class (0 when empty)."""
        total = self.total
        return self.counts[op] / total if total else 0.0

    def control_fraction(self) -> float:
        """Fraction of branches/jumps (paper: 25%/18%/16% vs ~2% SIMD)."""
        return self.fraction(OpClass.CTRL)

    def load_fraction(self) -> float:
        """Fraction of loads, scalar plus vector."""
        return self.fraction(OpClass.ILOAD) + self.fraction(OpClass.VLOAD)

    def store_fraction(self) -> float:
        """Fraction of stores, scalar plus vector."""
        return self.fraction(OpClass.ISTORE) + self.fraction(OpClass.VSTORE)

    def breakdown(self) -> dict[str, int]:
        """Counts keyed by lower-case class name, in Fig. 1 order."""
        return {op.name.lower(): self.counts[op] for op in FIG1_ORDER}


class Trace:
    """An ordered dynamic instruction stream with its mix statistics."""

    def __init__(self, name: str, instructions: Sequence[Instruction]) -> None:
        self.name = name
        self.instructions = list(instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def mix(self) -> InstructionMix:
        """Compute the per-class instruction breakdown."""
        counts = [0] * len(OpClass)
        for instruction in self.instructions:
            counts[instruction.op] += 1
        return InstructionMix(counts=tuple(counts))

    def branch_count(self) -> int:
        """Number of control instructions."""
        return sum(1 for instruction in self.instructions if instruction.is_branch)

    def slice(self, limit: int) -> "Trace":
        """First ``limit`` instructions as a new trace.

        Dependencies always point backwards, so any prefix of a trace is
        itself a well-formed trace.
        """
        return Trace(f"{self.name}[:{limit}]", self.instructions[:limit])

    def validate(self) -> None:
        """Check well-formedness: producers precede consumers and have dests.

        Raises ``ValueError`` on the first violation; used by tests and
        by kernel development as a sanity gate.
        """
        for index, instruction in enumerate(self.instructions):
            for source in instruction.sources:
                if not 0 <= source < index:
                    raise ValueError(
                        f"instruction {index} depends on {source} which is "
                        "not strictly earlier in the trace"
                    )
                if not self.instructions[source].has_dest:
                    raise ValueError(
                        f"instruction {index} depends on {source} which "
                        "produces no register result"
                    )
            if instruction.is_memory and instruction.address < 0:
                raise ValueError(f"memory instruction {index} has no address")
