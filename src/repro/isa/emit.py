"""Block-templated trace emission: the vectorized kernel->trace path.

The DP inner loops the paper characterizes (the SSEARCH cell loop, the
banded Gotoh in FASTA/BLAST, the VMX striped wavefront) are
*structurally repetitive*: every iteration executes the same static
basic block, with only operand values, addresses, and a handful of
data-dependent branch outcomes changing.  SWAPHI and the SSW library
exploit exactly this regularity to turn scalar DP into bulk vector
work; this module applies the same idea to trace *emission*.

A kernel registers the static shape of its hot block once as an
:class:`EmitTemplate`: one :class:`SlotSpec` per instruction slot,
carrying the opcode, the emit site, the register-role wiring (how each
source operand relates to other slots, to loop-carried registers, or to
external registers), the memory address stride, and — for
data-dependent slots like the SWAT cutoffs — a *gate*: the name of a
per-iteration boolean mask supplied at stamp time.  The kernel's inner
loop then performs only the real algorithmic work in Python (the
scores must stay bit-identical to the reference implementations) and
calls :meth:`repro.isa.builder.TraceBuilder.stamp` once per block run;
the builder materializes every iteration as bulk NumPy column writes.

The contract is strict: for the same kernel execution, the templated
path must produce **byte-identical columns** (hence content digests) to
the legacy per-call scalar path, including synthetic pc assignment
order, instruction-budget truncation semantics, and count-only mode.

Source-operand references
-------------------------

======================  ================================================
``Reg(name)``           external register: ``operands[name]`` (an int,
                        or a per-iteration int array)
``Slot(k)``             the result of slot ``k`` in the *same* iteration
``Sel(k1, k2, ...)``    the most recent assignment within the iteration:
                        first *present* slot in the listed priority order
``Carry(ref, init)``    loop-carried register: the most recent emission
                        of ``ref`` (a slot index, ``Slot`` or ``Sel``) at
                        least ``lag`` iterations back, else ``init``
======================  ================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.isa.opcodes import MEMORY_OPS, OpClass
from repro.isa.trace import MAX_SOURCES

#: Opcode classes that produce no register result (mirrors the
#: TraceBuilder emit methods: stores and branches are destination-less).
_DESTLESS = frozenset({OpClass.ISTORE, OpClass.VSTORE, OpClass.CTRL})

#: Stamps shorter than this fall back to per-instruction interpretation:
#: below it the NumPy fixed costs exceed the scalar loop they replace.
INTERPRET_BELOW = 8


class TemplateError(ValueError):
    """A template is malformed or was stamped with bad operands."""


# ----------------------------------------------------------------------
# Source references
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Reg:
    """External register: resolved from ``operands[name]`` at stamp time."""

    name: str


@dataclass(frozen=True)
class Slot:
    """The register produced by slot ``index`` of the same iteration."""

    index: int


@dataclass(frozen=True)
class Sel:
    """Latest-assignment select: the first present slot wins.

    ``Sel(a, b, c)`` resolves, per iteration, to slot ``a``'s result if
    slot ``a`` emitted this iteration, else slot ``b``'s, else slot
    ``c``'s — the vectorized equivalent of a register that conditional
    paths may or may not have overwritten.
    """

    choices: tuple[int, ...]

    def __init__(self, *choices: int) -> None:
        object.__setattr__(self, "choices", tuple(choices))


@dataclass(frozen=True)
class Carry:
    """Loop-carried register reference.

    Resolves to the most recent emission of ``ref`` at least ``lag``
    iterations before the current one (``lag=0`` includes the current
    iteration), falling back to ``init`` — a :class:`Reg` or a literal
    trace index — before the first emission.
    """

    ref: "Slot | Sel | int"
    init: "Reg | int"
    lag: int = 1


SourceRef = Any  # Reg | Slot | Sel | Carry | int


# ----------------------------------------------------------------------
# Slot and template specification
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SlotSpec:
    """Static shape of one instruction slot of a templated block.

    ``base``/``scale``/``index``/``offset`` describe an affine address
    ``operands[base] + scale * operands[index] + offset`` (``index``
    defaults to the iteration number); ``addr`` names an operand array
    holding fully materialized per-iteration addresses instead.  Gates
    name boolean operand arrays; ``taken`` is a static outcome or the
    name of a per-iteration outcome array.
    """

    op: OpClass
    site: str
    sources: tuple[SourceRef, ...] = ()
    gate: str | None = None
    addr: str | None = None
    base: str | None = None
    scale: int = 0
    index: str | None = None
    offset: int = 0
    size: int = 0
    taken: str | bool = False
    backward: bool = False
    key: str | None = None

    @property
    def has_dest(self) -> bool:
        return self.op not in _DESTLESS

    @property
    def is_memory(self) -> bool:
        return self.op in MEMORY_OPS

    @property
    def is_ctrl(self) -> bool:
        return self.op is OpClass.CTRL


def _ref_slots(ref: SourceRef) -> tuple[int, ...]:
    """Slot indices a source reference reads (for validation)."""
    if isinstance(ref, Slot):
        return (ref.index,)
    if isinstance(ref, Sel):
        return ref.choices
    if isinstance(ref, Carry):
        inner = ref.ref
        if isinstance(inner, int):
            return (inner,)
        return _ref_slots(inner)
    return ()


class EmitTemplate:
    """A compiled block template ready for bulk stamping.

    Compilation validates the static structure once — source arity,
    slot-reference ordering, destination-ness of referenced producers,
    memory/branch field consistency — so the per-stamp hot path does no
    checking beyond data-dependent gate coverage.
    """

    def __init__(self, name: str, slots: Sequence[SlotSpec]) -> None:
        self.name = name
        self.slots = tuple(slots)
        self._by_key: dict[str, int] = {}
        if not self.slots:
            raise TemplateError(f"template {name!r} has no slots")
        for position, slot in enumerate(self.slots):
            if len(slot.sources) > MAX_SOURCES:
                raise TemplateError(
                    f"template {name!r} slot {position} ({slot.site}) has "
                    f"{len(slot.sources)} sources; the trace layout stores "
                    f"at most {MAX_SOURCES}"
                )
            if slot.is_memory:
                if slot.addr is None and slot.base is None and not slot.scale:
                    raise TemplateError(
                        f"template {name!r} slot {position} ({slot.site}) is "
                        "a memory op without an address spec"
                    )
                if slot.size <= 0:
                    raise TemplateError(
                        f"template {name!r} slot {position} ({slot.site}) is "
                        "a memory op without an access size"
                    )
            elif slot.addr is not None or slot.base is not None or slot.size:
                raise TemplateError(
                    f"template {name!r} slot {position} ({slot.site}) is "
                    "not a memory op but carries an address spec"
                )
            for ref in slot.sources:
                if isinstance(ref, Carry) and ref.lag < 0:
                    raise TemplateError(
                        f"template {name!r} slot {position} ({slot.site}) "
                        f"carries with negative lag {ref.lag}"
                    )
                for target in _ref_slots(ref):
                    if not 0 <= target < len(self.slots):
                        raise TemplateError(
                            f"template {name!r} slot {position} references "
                            f"undefined slot {target}"
                        )
                    if not self.slots[target].has_dest:
                        raise TemplateError(
                            f"template {name!r} slot {position} references "
                            f"slot {target} ({self.slots[target].site}), "
                            "which produces no register result"
                        )
                    if (
                        not isinstance(ref, Carry) or ref.lag <= 0
                    ) and target >= position:
                        raise TemplateError(
                            f"template {name!r} slot {position} references "
                            f"slot {target}, which is not earlier in the "
                            "iteration (use a lagged Carry for loop-carried "
                            "values)"
                        )
            if slot.key is not None:
                if slot.key in self._by_key:
                    raise TemplateError(
                        f"template {name!r} has duplicate slot key "
                        f"{slot.key!r}"
                    )
                self._by_key[slot.key] = position
        #: Per-slot uint8 opcodes / dest flags (used by stamping + TR011).
        self.ops = np.array([int(s.op) for s in self.slots], dtype=np.uint8)
        self.dests = np.array(
            [1 if s.has_dest else 0 for s in self.slots], dtype=np.uint8
        )
        self.sizes = np.array([s.size for s in self.slots], dtype=np.int32)

    def __len__(self) -> int:
        return len(self.slots)

    def __repr__(self) -> str:
        return f"EmitTemplate({self.name!r}, {len(self.slots)} slots)"

    def slot_index(self, key: str) -> int:
        """Position of the slot registered under ``key``."""
        return self._by_key[key]


@dataclass(frozen=True)
class StampRegion:
    """One template-stamped span of a finished trace (TR011's input).

    ``slot_of[i]`` is the template slot that produced instruction
    ``start + i``; together with the template it lets the linter
    revalidate the whole region without any per-instruction records.
    """

    start: int
    template: EmitTemplate
    slot_of: np.ndarray  # uint16, one entry per instruction in the region

    @property
    def stop(self) -> int:
        return self.start + len(self.slot_of)


@dataclass
class StampResult:
    """What a stamp call hands back to the kernel.

    ``last`` lets kernels thread loop-carried registers across stamps
    and into the surrounding scalar emissions (the SSA index of a
    slot's final emission stands for the register it left behind).
    """

    start: int
    count: int
    _last: list[int] | None = field(default=None, repr=False)

    def last(self, slot: int, default: int = 0) -> int:
        """Trace index of ``slot``'s final emission, else ``default``.

        In count-only mode (no recorded indices) always ``default`` —
        mirroring the scalar path, where emit methods return 0.
        """
        if self._last is None:
            return default
        value = self._last[slot]
        return default if value < 0 else value


# ----------------------------------------------------------------------
# Vectorized stamping
# ----------------------------------------------------------------------

def _as_bool_mask(value: Any, n: int, name: str) -> np.ndarray:
    mask = np.asarray(value)
    if mask.dtype != np.bool_:
        mask = mask.astype(bool)
    if mask.shape != (n,):
        raise TemplateError(
            f"gate/outcome {name!r} has shape {mask.shape}, expected ({n},)"
        )
    return mask


def _as_index_array(value: Any, n: int, name: str) -> np.ndarray | int:
    if isinstance(value, (int, np.integer)):
        return int(value)
    array = np.asarray(value, dtype=np.int64)
    if array.shape != (n,):
        raise TemplateError(
            f"operand {name!r} has shape {array.shape}, expected ({n},)"
        )
    return array


class _Layout:
    """Iteration-space layout shared by the column writers.

    Computes, fully vectorized: how many instructions each iteration
    emits, where every iteration starts in the output stream, and the
    per-iteration trace index of every slot (``-1`` where gated off).
    """

    def __init__(
        self,
        template: EmitTemplate,
        n: int,
        operands: Mapping[str, Any],
        base_index: int,
    ) -> None:
        self.template = template
        self.n = n
        self.base = base_index
        slots = template.slots
        self.masks: list[np.ndarray | None] = []
        for slot in slots:
            if slot.gate is None:
                self.masks.append(None)
            else:
                try:
                    gate = operands[slot.gate]
                except KeyError:
                    raise TemplateError(
                        f"stamp of {template.name!r} missing gate operand "
                        f"{slot.gate!r}"
                    ) from None
                self.masks.append(_as_bool_mask(gate, n, slot.gate))
        counts = np.zeros(n, dtype=np.int64)
        for mask in self.masks:
            if mask is None:
                counts += 1
            else:
                counts += mask
        starts = np.empty(n + 1, dtype=np.int64)
        starts[0] = 0
        np.cumsum(counts, out=starts[1:])
        self.total = int(starts[n])
        #: Global trace index per (slot, iteration); -1 where absent.
        self.indices: list[np.ndarray] = []
        position = np.zeros(n, dtype=np.int64)
        iter_base = starts[:n] + base_index
        for mask in self.masks:
            here = iter_base + position
            if mask is None:
                self.indices.append(here)
                position += 1
            else:
                self.indices.append(np.where(mask, here, -1))
                position += mask

    def present_only(self, slot: int, values: Any) -> Any:
        """Compress a full-length per-iteration array to present rows."""
        mask = self.masks[slot]
        if mask is None or isinstance(values, (int, np.integer)):
            return values
        return values[mask]

    def relative(self, slot: int) -> np.ndarray:
        """Output-chunk row numbers of ``slot``'s present emissions."""
        mask = self.masks[slot]
        index = self.indices[slot]
        if mask is not None:
            index = index[mask]
        return index - self.base

    def first_index(self, slot: int) -> int:
        """Global index of the slot's first emission, or -1 if absent."""
        mask = self.masks[slot]
        if mask is None:
            return int(self.indices[slot][0]) if self.n else -1
        hits = np.flatnonzero(mask)
        return int(self.indices[slot][hits[0]]) if hits.size else -1

    def last_index(self, slot: int) -> int:
        """Global index of the slot's final emission, or -1 if absent."""
        mask = self.masks[slot]
        if mask is None:
            return int(self.indices[slot][-1]) if self.n else -1
        hits = np.flatnonzero(mask)
        return int(self.indices[slot][hits[-1]]) if hits.size else -1

    # ------------------------------------------------------------------
    # Source-reference resolution (full-length arrays; -1 where absent)
    # ------------------------------------------------------------------
    def _masked_indices(self, ref: Slot | Sel | int) -> np.ndarray:
        if isinstance(ref, int):
            return self.indices[ref]
        if isinstance(ref, Slot):
            return self.indices[ref.index]
        out: np.ndarray | None = None
        for choice in reversed(ref.choices):
            mask = self.masks[choice]
            if out is None:
                out = (
                    self.indices[choice]
                    if mask is None
                    else np.where(mask, self.indices[choice], -1)
                )
            elif mask is None:
                out = self.indices[choice]
            else:
                out = np.where(mask, self.indices[choice], out)
        assert out is not None
        return out

    def resolve(
        self, ref: SourceRef, operands: Mapping[str, Any],
        cache: dict[int, Any],
    ) -> np.ndarray | int:
        """Full-length per-iteration source values for ``ref``."""
        memo = cache.get(id(ref))
        if memo is not None:
            return memo
        if isinstance(ref, (int, np.integer)):
            value: np.ndarray | int = int(ref)
        elif isinstance(ref, Reg):
            try:
                value = _as_index_array(operands[ref.name], self.n, ref.name)
            except KeyError:
                raise TemplateError(
                    f"stamp of {self.template.name!r} missing register "
                    f"operand {ref.name!r}"
                ) from None
        elif isinstance(ref, (Slot, Sel)):
            value = self._masked_indices(ref)
        elif isinstance(ref, Carry):
            trail = self._masked_indices(ref.ref)
            lag = ref.lag
            if lag > 0:
                shifted = np.empty_like(trail)
                shifted[:lag] = -1
                if lag < self.n:
                    shifted[lag:] = trail[: self.n - lag]
                trail = shifted
            # Emission indices grow with the iteration number, so a
            # running maximum is exactly "most recent emission so far".
            filled = np.maximum.accumulate(trail)
            init = self.resolve(ref.init, operands, cache)
            value = np.where(filled < 0, init, filled)
        else:
            raise TemplateError(f"unknown source reference {ref!r}")
        cache[id(ref)] = value
        return value


def stamp_columns(
    template: EmitTemplate,
    n: int,
    operands: Mapping[str, Any],
    base_index: int,
    pc_of,
) -> tuple[dict[str, np.ndarray], np.ndarray, np.ndarray, list[int]]:
    """Materialize ``n`` iterations of ``template`` as column chunks.

    Returns ``(columns, slot_of, op_counts, last_indices)``:
    the eight SoA columns for the stamped span, the producing slot of
    every instruction (for :class:`StampRegion`), per-:class:`OpClass`
    dynamic counts, and each slot's final emission index.

    ``pc_of`` is called in order of each site's *first emission*, which
    keeps synthetic pc assignment identical to the scalar path (where a
    site's pc is allocated at its first dynamic occurrence).
    """
    layout = _Layout(template, n, operands, base_index)
    total = layout.total
    slots = template.slots

    # Synthetic pcs, allocated in first-emission order.
    order = sorted(
        (
            (layout.first_index(k), k)
            for k in range(len(slots))
            if layout.first_index(k) >= 0
        ),
    )
    pcs_of_slot = [0] * len(slots)
    for _, k in order:
        pcs_of_slot[k] = pc_of(slots[k].site)

    ops = np.empty(total, dtype=np.uint8)
    pcs = np.empty(total, dtype=np.int64)
    dests = np.zeros(total, dtype=np.uint8)
    addresses = np.full(total, -1, dtype=np.int64)
    sizes = np.zeros(total, dtype=np.int32)
    takens = np.zeros(total, dtype=np.uint8)
    targets = np.zeros(total, dtype=np.int64)
    sources = np.full((total, MAX_SOURCES), -1, dtype=np.int64)
    slot_of = np.empty(total, dtype=np.uint16)

    iota: np.ndarray | None = None
    cache: dict[int, Any] = {}
    last_indices: list[int] = []
    for k, slot in enumerate(slots):
        last_indices.append(layout.last_index(k))
        rel = layout.relative(k)
        if not rel.size:
            continue
        ops[rel] = int(slot.op)
        pcs[rel] = pcs_of_slot[k]
        slot_of[rel] = k
        if slot.has_dest:
            dests[rel] = 1
        if slot.is_memory:
            if slot.addr is not None:
                address = _as_index_array(operands[slot.addr], n, slot.addr)
            else:
                base = (
                    _as_index_array(operands[slot.base], n, slot.base)
                    if slot.base is not None
                    else 0
                )
                if slot.scale:
                    if slot.index is not None:
                        index = _as_index_array(
                            operands[slot.index], n, slot.index
                        )
                    else:
                        if iota is None:
                            iota = np.arange(n, dtype=np.int64)
                        index = iota
                    address = base + slot.scale * index + slot.offset
                else:
                    address = base + slot.offset
            if isinstance(address, (int, np.integer)):
                addresses[rel] = int(address)
            else:
                addresses[rel] = layout.present_only(k, address)
            sizes[rel] = slot.size
        if slot.is_ctrl:
            pc = pcs_of_slot[k]
            targets[rel] = pc - 128 if slot.backward else pc + 64
            taken = slot.taken
            if isinstance(taken, str):
                try:
                    outcome = operands[taken]
                except KeyError:
                    raise TemplateError(
                        f"stamp of {template.name!r} missing outcome "
                        f"operand {taken!r}"
                    ) from None
                takens[rel] = layout.present_only(
                    k, _as_bool_mask(outcome, n, taken)
                )
            elif taken:
                takens[rel] = 1
        for j, ref in enumerate(slot.sources):
            value = layout.resolve(ref, operands, cache)
            if isinstance(value, (int, np.integer)):
                sources[rel, j] = int(value)
            else:
                present = layout.present_only(k, value)
                if isinstance(ref, (Slot, Sel, Carry)) and (
                    np.min(present, initial=0) < 0
                ):
                    raise TemplateError(
                        f"template {template.name!r} slot {k} "
                        f"({slot.site}) reads {ref!r} in an iteration "
                        "where no referenced slot emitted"
                    )
                sources[rel, j] = present

    op_counts = np.bincount(ops, minlength=len(OpClass)).astype(np.int64)
    columns = {
        "ops": ops,
        "pcs": pcs,
        "dests": dests,
        "addresses": addresses,
        "sizes": sizes,
        "takens": takens,
        "targets": targets,
        "sources": sources,
    }
    return columns, slot_of, op_counts, last_indices


def count_stream(
    template: EmitTemplate, n: int, operands: Mapping[str, Any]
) -> tuple[np.ndarray, list[tuple[int, np.ndarray | None]]]:
    """Count-only stamping support: per-op totals plus presence masks.

    Returns the per-:class:`OpClass` dynamic counts of the full stamp
    and the ``(slot, mask)`` list needed to locate the instruction at
    any stream position (for exact budget-overflow semantics).
    """
    counts = np.zeros(len(OpClass), dtype=np.int64)
    presence: list[tuple[int, np.ndarray | None]] = []
    for slot, spec in zip(range(len(template.slots)), template.slots):
        gate = template.slots[slot].gate
        if gate is None:
            counts[int(spec.op)] += n
            presence.append((slot, None))
        else:
            try:
                mask = _as_bool_mask(operands[gate], n, gate)
            except KeyError:
                raise TemplateError(
                    f"stamp of {template.name!r} missing gate operand "
                    f"{gate!r}"
                ) from None
            counts[int(spec.op)] += int(mask.sum())
            presence.append((slot, mask))
    return counts, presence


def stream_position(
    template: EmitTemplate,
    n: int,
    presence: list[tuple[int, np.ndarray | None]],
    position: int,
) -> tuple[int, int]:
    """Locate stream ``position``: returns ``(iteration, slot)``.

    Used when an instruction budget expires mid-stamp: the scalar path
    counts the first over-budget instruction before raising, so the
    stamp must identify exactly which slot that would have been.
    """
    lengths = np.zeros(n, dtype=np.int64)
    for _, mask in presence:
        if mask is None:
            lengths += 1
        else:
            lengths += mask
    starts = np.concatenate(([0], np.cumsum(lengths)))
    iteration = int(np.searchsorted(starts, position, side="right")) - 1
    within = position - int(starts[iteration])
    for slot, mask in presence:
        if mask is not None and not mask[iteration]:
            continue
        if within == 0:
            return iteration, slot
        within -= 1
    raise TemplateError(
        f"stream position {position} beyond iteration {iteration} "
        f"of template {template.name!r}"
    )
