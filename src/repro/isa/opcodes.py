"""Abstract PowerPC/Altivec-like operation classes.

The trace-driven simulator does not interpret real PowerPC encodings;
it consumes *operation classes* — the same categories the paper's
Figure 1 instruction breakdown uses — plus the functional-unit and
issue-queue mapping of Table IV.
"""

from __future__ import annotations

from enum import IntEnum


class OpClass(IntEnum):
    """Dynamic instruction category (paper Fig. 1 legend)."""

    IALU = 0      #: integer ALU (add/sub/logic/compare/shift)
    ILOAD = 1     #: scalar load
    ISTORE = 2    #: scalar store
    CTRL = 3      #: branches and jumps
    VLOAD = 4     #: vector load
    VSTORE = 5    #: vector store
    VSIMPLE = 6   #: vector simple integer (vec_adds/vec_subs/vec_max...)
    VPERM = 7     #: vector permute / shift / select
    VCMPLX = 8    #: vector complex integer (multiply-sum etc.)
    FPU = 9       #: scalar floating point
    OTHER = 10    #: everything else (system, moves to special registers)


class FunctionalUnit(IntEnum):
    """Execution unit pools of the modelled processor (Table IV)."""

    LDST = 0   #: load/store unit (scalar and vector memory ops)
    FX = 1     #: integer fixed-point units
    FP = 2     #: scalar floating point units
    BR = 3     #: branch units
    VI = 4     #: vector simple integer units
    VPER = 5   #: vector permute units
    VCMPLX = 6 #: vector complex integer units
    VFP = 7    #: vector floating point units


#: Which functional unit (and issue queue) executes each op class.
FU_OF_OPCLASS: dict[OpClass, FunctionalUnit] = {
    OpClass.IALU: FunctionalUnit.FX,
    OpClass.ILOAD: FunctionalUnit.LDST,
    OpClass.ISTORE: FunctionalUnit.LDST,
    OpClass.CTRL: FunctionalUnit.BR,
    OpClass.VLOAD: FunctionalUnit.LDST,
    OpClass.VSTORE: FunctionalUnit.LDST,
    OpClass.VSIMPLE: FunctionalUnit.VI,
    OpClass.VPERM: FunctionalUnit.VPER,
    OpClass.VCMPLX: FunctionalUnit.VCMPLX,
    OpClass.FPU: FunctionalUnit.FP,
    OpClass.OTHER: FunctionalUnit.FX,
}

#: Execution latency (cycles) of each op class, excluding memory time;
#: loads add the cache access latency on top of their pipeline cycle.
LATENCY_OF_OPCLASS: dict[OpClass, int] = {
    OpClass.IALU: 1,
    OpClass.ILOAD: 0,     # memory time added by the load/store unit
    OpClass.ISTORE: 1,
    OpClass.CTRL: 1,
    OpClass.VLOAD: 0,
    OpClass.VSTORE: 1,
    OpClass.VSIMPLE: 1,
    OpClass.VPERM: 2,
    OpClass.VCMPLX: 4,
    OpClass.FPU: 4,
    OpClass.OTHER: 1,
}

#: Memory operation classes.
MEMORY_OPS = frozenset({OpClass.ILOAD, OpClass.ISTORE, OpClass.VLOAD, OpClass.VSTORE})
LOAD_OPS = frozenset({OpClass.ILOAD, OpClass.VLOAD})
STORE_OPS = frozenset({OpClass.ISTORE, OpClass.VSTORE})
VECTOR_OPS = frozenset(
    {OpClass.VLOAD, OpClass.VSTORE, OpClass.VSIMPLE, OpClass.VPERM, OpClass.VCMPLX}
)

#: Display order used by the paper's Figure 1 stacked bars.
FIG1_ORDER: tuple[OpClass, ...] = (
    OpClass.OTHER,
    OpClass.CTRL,
    OpClass.VPERM,
    OpClass.VSIMPLE,
    OpClass.VLOAD,
    OpClass.VSTORE,
    OpClass.ILOAD,
    OpClass.ISTORE,
    OpClass.IALU,
)
