"""Instrumented-execution trace builder.

Traced kernels (:mod:`repro.kernels`) run the real alignment algorithms
while narrating every abstract operation to a :class:`TraceBuilder`:
each ``ialu``/``iload``/``ctrl``/``vsimple``/... call appends one
dynamic instruction carrying its true data dependencies (producer trace
indices), its effective memory address, or its actual branch outcome.
The result is a trace whose instruction mix, locality, and branch
behaviour *emerge* from executing the algorithm on real data — the
stand-in for the paper's Aria/MET-generated PowerPC traces.

Emit methods return the new instruction's index, which doubles as the
SSA virtual register holding the result; kernels thread those indices
through their computations exactly like register names.

``record=False`` turns the builder into a counting sink for very large
measurements (Table III trace sizes, Fig. 1 mixes at scale) where the
per-instruction records are not needed.

Recording emits one compact row tuple per instruction into a growing
list; :meth:`TraceBuilder.build` converts the rows to the columnar
NumPy layout that :class:`~repro.isa.trace.Trace` stores natively in a
single vectorized pass — no per-instruction Python objects are ever
created on the kernel hot path.
"""

from __future__ import annotations

import numpy as np

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.isa.trace import MAX_SOURCES, InstructionMix, Trace

#: Base of the synthetic code segment (site pcs) and data segment.
CODE_BASE = 0x0001_0000
DATA_BASE = 0x1000_0000


class TraceBudgetExceededError(RuntimeError):
    """Raised by the builder when the instruction budget is exhausted.

    Kernels let this propagate to their driver, which finalizes the
    truncated trace — mirroring how the paper samples a representative
    window out of a billions-long execution.
    """


class TraceBuilder:
    """Collects dynamic instructions emitted by a traced kernel."""

    def __init__(
        self,
        name: str,
        record: bool = True,
        limit: int | None = None,
    ) -> None:
        self.name = name
        self.record = record
        self.limit = limit
        #: One row tuple per recorded instruction:
        #: (op, pc, has_dest, address, size, taken, target, s0, s1, s2).
        self._rows: list[tuple] = []
        self.counts = [0] * len(OpClass)
        self.total = 0
        self._site_pcs: dict[str, int] = {}
        self._data_cursor = DATA_BASE

    @property
    def instructions(self) -> list[Instruction]:
        """Recorded instructions as objects (tests/debugging only)."""
        if not self.record:
            return []
        return self.build().instructions

    # ------------------------------------------------------------------
    # Memory layout
    # ------------------------------------------------------------------
    def alloc(self, label: str, nbytes: int, align: int = 128) -> int:
        """Reserve a data region; returns its base address.

        Regions are laid out sequentially with cache-line alignment,
        approximating the heap layout of the native tools.  ``label``
        is only for debugging.
        """
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        mask = align - 1
        base = (self._data_cursor + mask) & ~mask
        self._data_cursor = base + nbytes
        return base

    # ------------------------------------------------------------------
    # Site management
    # ------------------------------------------------------------------
    def pc_of(self, site: str) -> int:
        """Synthetic pc of a static emit site (stable per label)."""
        pc = self._site_pcs.get(site)
        if pc is None:
            pc = CODE_BASE + 4 * len(self._site_pcs)
            self._site_pcs[site] = pc
        return pc

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _emit(
        self,
        op: OpClass,
        site: str,
        sources: tuple[int, ...],
        has_dest: bool,
        address: int = -1,
        size: int = 0,
        taken: bool = False,
        target: int = 0,
    ) -> int:
        self.counts[op] += 1
        self.total += 1
        if self.limit is not None and self.total > self.limit:
            raise TraceBudgetExceededError(
                f"trace {self.name!r} exceeded {self.limit} instructions"
            )
        if not self.record:
            return 0
        count = len(sources)
        if count == 0:
            s0 = s1 = s2 = -1
        elif count == 1:
            s0, = sources
            s1 = s2 = -1
        elif count == 2:
            s0, s1 = sources
            s2 = -1
        elif count == 3:
            s0, s1, s2 = sources
        else:
            raise ValueError(
                f"instruction has {count} sources; "
                f"the trace layout stores at most {MAX_SOURCES}"
            )
        rows = self._rows
        index = len(rows)
        rows.append(
            (op, self.pc_of(site), has_dest, address, size, taken, target,
             s0, s1, s2)
        )
        return index

    def ialu(self, site: str, sources: tuple[int, ...] = ()) -> int:
        """Integer ALU op producing a result register."""
        return self._emit(OpClass.IALU, site, sources, has_dest=True)

    def iload(
        self, site: str, address: int, sources: tuple[int, ...] = (), size: int = 8
    ) -> int:
        """Scalar load from ``address``."""
        return self._emit(
            OpClass.ILOAD, site, sources, has_dest=True, address=address, size=size
        )

    def istore(
        self, site: str, address: int, sources: tuple[int, ...] = (), size: int = 8
    ) -> int:
        """Scalar store to ``address`` (no result register)."""
        return self._emit(
            OpClass.ISTORE, site, sources, has_dest=False, address=address, size=size
        )

    def ctrl(
        self,
        site: str,
        taken: bool,
        sources: tuple[int, ...] = (),
        backward: bool = False,
    ) -> int:
        """Conditional branch with its actual outcome.

        ``backward=True`` marks loop back-edges (target behind the
        branch), which matters to the next-fetch-address predictor.
        """
        pc = self.pc_of(site)
        target = pc - 128 if backward else pc + 64
        return self._emit(
            OpClass.CTRL, site, sources, has_dest=False, taken=taken, target=target
        )

    def vload(
        self, site: str, address: int, sources: tuple[int, ...] = (), size: int = 16
    ) -> int:
        """Vector load (16 bytes for vmx128, 32 for vmx256)."""
        return self._emit(
            OpClass.VLOAD, site, sources, has_dest=True, address=address, size=size
        )

    def vstore(
        self, site: str, address: int, sources: tuple[int, ...] = (), size: int = 16
    ) -> int:
        """Vector store."""
        return self._emit(
            OpClass.VSTORE, site, sources, has_dest=False, address=address, size=size
        )

    def vsimple(self, site: str, sources: tuple[int, ...] = ()) -> int:
        """Vector simple-integer op (vec_adds, vec_subs, vec_max...)."""
        return self._emit(OpClass.VSIMPLE, site, sources, has_dest=True)

    def vperm(self, site: str, sources: tuple[int, ...] = ()) -> int:
        """Vector permute op (vec_perm, vec_sld, splats)."""
        return self._emit(OpClass.VPERM, site, sources, has_dest=True)

    def vcmplx(self, site: str, sources: tuple[int, ...] = ()) -> int:
        """Vector complex-integer op (multiply-sum family)."""
        return self._emit(OpClass.VCMPLX, site, sources, has_dest=True)

    def fpu(self, site: str, sources: tuple[int, ...] = ()) -> int:
        """Scalar floating-point op."""
        return self._emit(OpClass.FPU, site, sources, has_dest=True)

    def other(self, site: str, sources: tuple[int, ...] = ()) -> int:
        """Miscellaneous op (system/special-register moves)."""
        return self._emit(OpClass.OTHER, site, sources, has_dest=True)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def mix(self) -> InstructionMix:
        """Instruction breakdown (valid in both modes)."""
        return InstructionMix(counts=tuple(self.counts))

    def build(self, *, strict: bool = False) -> Trace:
        """Finalize into a columnar :class:`Trace` (recording mode only).

        With ``strict=True`` the finished trace is linted
        (:func:`repro.verify.check_trace`) before being returned — the
        development gate for new kernels, catching malformed emissions
        (forward dependencies, missing addresses, phantom dest flags)
        at build time rather than as skewed statistics later.
        """
        if not self.record:
            raise ValueError(
                "builder is in count-only mode; use mix() for statistics"
            )
        rows = self._rows
        if rows:
            table = np.array(rows, dtype=np.int64)
        else:
            table = np.empty((0, 7 + MAX_SOURCES), dtype=np.int64)
        columns = {
            "ops": table[:, 0].astype(np.uint8),
            "pcs": np.ascontiguousarray(table[:, 1]),
            "dests": table[:, 2].astype(np.uint8),
            "addresses": np.ascontiguousarray(table[:, 3]),
            "sizes": table[:, 4].astype(np.int32),
            "takens": table[:, 5].astype(np.uint8),
            "targets": np.ascontiguousarray(table[:, 6]),
            "sources": np.ascontiguousarray(table[:, 7:7 + MAX_SOURCES]),
        }
        trace = Trace(self.name, columns=columns)
        if strict:
            from repro.verify import check_trace

            check_trace(trace)
        return trace
