"""Instrumented-execution trace builder.

Traced kernels (:mod:`repro.kernels`) run the real alignment algorithms
while narrating every abstract operation to a :class:`TraceBuilder`:
each ``ialu``/``iload``/``ctrl``/``vsimple``/... call appends one
dynamic instruction carrying its true data dependencies (producer trace
indices), its effective memory address, or its actual branch outcome.
The result is a trace whose instruction mix, locality, and branch
behaviour *emerge* from executing the algorithm on real data — the
stand-in for the paper's Aria/MET-generated PowerPC traces.

Emit methods return the new instruction's index, which doubles as the
SSA virtual register holding the result; kernels thread those indices
through their computations exactly like register names.

``record=False`` turns the builder into a counting sink for very large
measurements (Table III trace sizes, Fig. 1 mixes at scale) where the
per-instruction records are not needed.

Recording emits one compact row tuple per instruction into a growing
list; :meth:`TraceBuilder.build` converts the rows to the columnar
NumPy layout that :class:`~repro.isa.trace.Trace` stores natively in a
single vectorized pass — no per-instruction Python objects are ever
created on the kernel hot path.

Structurally repetitive inner loops can skip the per-call path
entirely: a kernel registers the static shape of its hot block as an
:class:`~repro.isa.emit.EmitTemplate` and calls :meth:`TraceBuilder.stamp`
to materialize whole loop runs as bulk NumPy column chunks (see
:mod:`repro.isa.emit`).  The ``REPRO_EMIT`` environment variable
selects the kernels' emission path (``templated``, the default, or
``scalar`` as the escape hatch); both produce byte-identical traces.
"""

from __future__ import annotations

import os

import numpy as np

from repro.isa import emit as emit_mod
from repro.isa.emit import (
    Carry,
    EmitTemplate,
    Reg,
    Sel,
    Slot,
    StampRegion,
    StampResult,
    TemplateError,
)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.isa.trace import MAX_SOURCES, InstructionMix, Trace, concat_columns

__all__ = [
    "CODE_BASE",
    "DATA_BASE",
    "Carry",
    "EmitTemplate",
    "Reg",
    "Sel",
    "Slot",
    "TraceBudgetExceededError",
    "TraceBuilder",
    "emission_mode",
]

#: Recognized values of the ``REPRO_EMIT`` escape hatch.
EMIT_MODES = ("templated", "scalar")


def emission_mode() -> str:
    """The process-wide kernel emission mode (``REPRO_EMIT`` env var)."""
    # Both emission modes are byte-identical by contract (CI runs the
    # golden-equivalence matrix over REPRO_EMIT=scalar|templated), so
    # the cache key deliberately omits the mode.
    mode = os.environ.get("REPRO_EMIT", "templated").strip().lower()  # flowlint: disable=FL005
    if mode not in EMIT_MODES:
        raise ValueError(
            f"REPRO_EMIT={mode!r} is not a valid emission mode; "
            f"expected one of {EMIT_MODES}"
        )
    return mode

#: Base of the synthetic code segment (site pcs) and data segment.
CODE_BASE = 0x0001_0000
DATA_BASE = 0x1000_0000


class TraceBudgetExceededError(RuntimeError):
    """Raised by the builder when the instruction budget is exhausted.

    Kernels let this propagate to their driver, which finalizes the
    truncated trace — mirroring how the paper samples a representative
    window out of a billions-long execution.
    """


class TraceBuilder:
    """Collects dynamic instructions emitted by a traced kernel."""

    def __init__(
        self,
        name: str,
        record: bool = True,
        limit: int | None = None,
        emit_mode: str | None = None,
    ) -> None:
        self.name = name
        self.record = record
        self.limit = limit
        self.emit_mode = emission_mode() if emit_mode is None else emit_mode
        if self.emit_mode not in EMIT_MODES:
            raise ValueError(
                f"emit_mode={self.emit_mode!r} is not one of {EMIT_MODES}"
            )
        #: One row tuple per recorded instruction:
        #: (op, pc, has_dest, address, size, taken, target, s0, s1, s2).
        self._rows: list[tuple] = []
        #: Finished column chunks (flushed scalar rows + template stamps).
        self._chunks: list[dict[str, np.ndarray]] = []
        #: Instructions already flushed into ``_chunks``.
        self._flushed = 0
        #: Template-stamped spans, for TR011 revalidation.
        self._regions: list[StampRegion] = []
        self.counts = [0] * len(OpClass)
        self.total = 0
        self._site_pcs: dict[str, int] = {}
        self._data_cursor = DATA_BASE

    @property
    def use_templates(self) -> bool:
        """Whether kernels should take their block-templated fast path."""
        return self.emit_mode == "templated"

    @property
    def instructions(self) -> list[Instruction]:
        """Recorded instructions as objects (tests/debugging only)."""
        if not self.record:
            return []
        return self.build().instructions

    # ------------------------------------------------------------------
    # Memory layout
    # ------------------------------------------------------------------
    def alloc(self, label: str, nbytes: int, align: int = 128) -> int:
        """Reserve a data region; returns its base address.

        Regions are laid out sequentially with cache-line alignment,
        approximating the heap layout of the native tools.  ``label``
        is only for debugging.
        """
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        mask = align - 1
        base = (self._data_cursor + mask) & ~mask
        self._data_cursor = base + nbytes
        return base

    # ------------------------------------------------------------------
    # Site management
    # ------------------------------------------------------------------
    def pc_of(self, site: str) -> int:
        """Synthetic pc of a static emit site (stable per label)."""
        pc = self._site_pcs.get(site)
        if pc is None:
            pc = CODE_BASE + 4 * len(self._site_pcs)
            self._site_pcs[site] = pc
        return pc

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _emit(
        self,
        op: OpClass,
        site: str,
        sources: tuple[int, ...],
        has_dest: bool,
        address: int = -1,
        size: int = 0,
        taken: bool = False,
        target: int = 0,
    ) -> int:
        self.counts[op] += 1
        self.total += 1
        if self.limit is not None and self.total > self.limit:
            raise TraceBudgetExceededError(
                f"trace {self.name!r} exceeded {self.limit} instructions"
            )
        if not self.record:
            return 0
        count = len(sources)
        if count == 0:
            s0 = s1 = s2 = -1
        elif count == 1:
            s0, = sources
            s1 = s2 = -1
        elif count == 2:
            s0, s1 = sources
            s2 = -1
        elif count == 3:
            s0, s1, s2 = sources
        else:
            raise ValueError(
                f"instruction has {count} sources; "
                f"the trace layout stores at most {MAX_SOURCES}"
            )
        rows = self._rows
        index = self._flushed + len(rows)
        rows.append(
            (op, self.pc_of(site), has_dest, address, size, taken, target,
             s0, s1, s2)
        )
        return index

    def ialu(self, site: str, sources: tuple[int, ...] = ()) -> int:
        """Integer ALU op producing a result register."""
        return self._emit(OpClass.IALU, site, sources, has_dest=True)

    def iload(
        self, site: str, address: int, sources: tuple[int, ...] = (), size: int = 8
    ) -> int:
        """Scalar load from ``address``."""
        return self._emit(
            OpClass.ILOAD, site, sources, has_dest=True, address=address, size=size
        )

    def istore(
        self, site: str, address: int, sources: tuple[int, ...] = (), size: int = 8
    ) -> int:
        """Scalar store to ``address`` (no result register)."""
        return self._emit(
            OpClass.ISTORE, site, sources, has_dest=False, address=address, size=size
        )

    def ctrl(
        self,
        site: str,
        taken: bool,
        sources: tuple[int, ...] = (),
        backward: bool = False,
    ) -> int:
        """Conditional branch with its actual outcome.

        ``backward=True`` marks loop back-edges (target behind the
        branch), which matters to the next-fetch-address predictor.
        """
        pc = self.pc_of(site)
        target = pc - 128 if backward else pc + 64
        return self._emit(
            OpClass.CTRL, site, sources, has_dest=False, taken=taken, target=target
        )

    def vload(
        self, site: str, address: int, sources: tuple[int, ...] = (), size: int = 16
    ) -> int:
        """Vector load (16 bytes for vmx128, 32 for vmx256)."""
        return self._emit(
            OpClass.VLOAD, site, sources, has_dest=True, address=address, size=size
        )

    def vstore(
        self, site: str, address: int, sources: tuple[int, ...] = (), size: int = 16
    ) -> int:
        """Vector store."""
        return self._emit(
            OpClass.VSTORE, site, sources, has_dest=False, address=address, size=size
        )

    def vsimple(self, site: str, sources: tuple[int, ...] = ()) -> int:
        """Vector simple-integer op (vec_adds, vec_subs, vec_max...)."""
        return self._emit(OpClass.VSIMPLE, site, sources, has_dest=True)

    def vperm(self, site: str, sources: tuple[int, ...] = ()) -> int:
        """Vector permute op (vec_perm, vec_sld, splats)."""
        return self._emit(OpClass.VPERM, site, sources, has_dest=True)

    def vcmplx(self, site: str, sources: tuple[int, ...] = ()) -> int:
        """Vector complex-integer op (multiply-sum family)."""
        return self._emit(OpClass.VCMPLX, site, sources, has_dest=True)

    def fpu(self, site: str, sources: tuple[int, ...] = ()) -> int:
        """Scalar floating-point op."""
        return self._emit(OpClass.FPU, site, sources, has_dest=True)

    def other(self, site: str, sources: tuple[int, ...] = ()) -> int:
        """Miscellaneous op (system/special-register moves)."""
        return self._emit(OpClass.OTHER, site, sources, has_dest=True)

    # ------------------------------------------------------------------
    # Block-templated emission (the vectorized fast path)
    # ------------------------------------------------------------------
    def _flush_rows(self) -> None:
        """Convert pending scalar rows into a finished column chunk."""
        rows = self._rows
        if not rows:
            return
        table = np.array(rows, dtype=np.int64)
        self._chunks.append({
            "ops": table[:, 0].astype(np.uint8),
            "pcs": np.ascontiguousarray(table[:, 1]),
            "dests": table[:, 2].astype(np.uint8),
            "addresses": np.ascontiguousarray(table[:, 3]),
            "sizes": table[:, 4].astype(np.int32),
            "takens": table[:, 5].astype(np.uint8),
            "targets": np.ascontiguousarray(table[:, 6]),
            "sources": np.ascontiguousarray(table[:, 7:7 + MAX_SOURCES]),
        })
        self._flushed += len(rows)
        rows.clear()

    def _merge_counts(self, op_counts: np.ndarray) -> None:
        counts = self.counts
        for op in np.flatnonzero(op_counts):
            counts[op] += int(op_counts[op])

    def stamp(
        self,
        template: EmitTemplate,
        n: int,
        operands: dict | None = None,
    ) -> StampResult:
        """Emit ``n`` iterations of ``template`` in bulk.

        The streamed instructions — opcode order, synthetic pcs, register
        wiring, addresses, branch outcomes, budget truncation — are
        byte-identical to what per-call emission of the same block would
        produce; only the materialization is vectorized.  Short runs
        (fewer than :data:`repro.isa.emit.INTERPRET_BELOW` iterations)
        are interpreted per instruction, where NumPy's fixed costs would
        exceed the scalar loop.

        Returns a :class:`~repro.isa.emit.StampResult` whose ``last``
        method maps slots to their final emission index, so kernels can
        thread loop-carried registers across stamps and into the
        surrounding scalar emissions.
        """
        operands = operands or {}
        n_slots = len(template.slots)
        if n <= 0:
            return StampResult(
                start=self._flushed + len(self._rows),
                count=0,
                _last=[-1] * n_slots if self.record else None,
            )
        if not self.record:
            return self._stamp_count_only(template, n, operands)
        if n < emit_mod.INTERPRET_BELOW:
            return self._stamp_interpreted(template, n, operands)

        base = self._flushed + len(self._rows)
        columns, slot_of, op_counts, last = emit_mod.stamp_columns(
            template, n, operands, base, self.pc_of
        )
        total_new = len(slot_of)
        before = self.total
        if self.limit is not None and before + total_new > self.limit:
            fit = self.limit - before
            # The scalar path counts the first over-budget instruction
            # before raising; reproduce that bookkeeping exactly.
            kept_counts = np.bincount(
                columns["ops"][:fit + 1], minlength=len(OpClass)
            )
            self._merge_counts(kept_counts)
            self.total = before + fit + 1
            if fit:
                self._flush_rows()
                self._chunks.append(
                    {name: col[:fit] for name, col in columns.items()}
                )
                self._regions.append(
                    StampRegion(base, template, slot_of[:fit])
                )
                self._flushed += fit
            raise TraceBudgetExceededError(
                f"trace {self.name!r} exceeded {self.limit} instructions"
            )
        self._merge_counts(op_counts)
        self.total = before + total_new
        self._flush_rows()
        self._chunks.append(columns)
        self._regions.append(StampRegion(base, template, slot_of))
        self._flushed += total_new
        return StampResult(start=base, count=total_new, _last=last)

    def _stamp_count_only(
        self, template: EmitTemplate, n: int, operands: dict
    ) -> StampResult:
        """Count-only stamping with exact budget-overflow semantics."""
        op_counts, presence = emit_mod.count_stream(template, n, operands)
        total_new = int(op_counts.sum())
        before = self.total
        if self.limit is not None and before + total_new > self.limit:
            fit = self.limit - before
            iteration, over_slot = emit_mod.stream_position(
                template, n, presence, fit
            )
            # Per-op counts of the first ``fit`` instructions, plus the
            # over-budget one itself (scalar counts it before raising).
            partial = np.zeros(len(OpClass), dtype=np.int64)
            for slot, mask in presence:
                op = int(template.slots[slot].op)
                emitted = (
                    iteration if mask is None else int(mask[:iteration].sum())
                )
                if slot < over_slot and (
                    mask is None or bool(mask[iteration])
                ):
                    emitted += 1
                partial[op] += emitted
            partial[int(template.slots[over_slot].op)] += 1
            self._merge_counts(partial)
            self.total = before + fit + 1
            raise TraceBudgetExceededError(
                f"trace {self.name!r} exceeded {self.limit} instructions"
            )
        self._merge_counts(op_counts)
        self.total = before + total_new
        return StampResult(start=0, count=total_new, _last=None)

    def _stamp_interpreted(
        self, template: EmitTemplate, n: int, operands: dict
    ) -> StampResult:
        """Per-instruction reference interpretation of a template stamp.

        Shares no materialization code with the vectorized path — it
        walks the slots iteration by iteration through :meth:`_emit` —
        which makes it both the short-run fast path and the oracle the
        equivalence tests compare :func:`repro.isa.emit.stamp_columns`
        against.
        """
        # Per-item indexing dominates at these run lengths, and Python
        # lists index an order of magnitude faster than NumPy arrays.
        operands = {
            name: value.tolist() if isinstance(value, np.ndarray) else value
            for name, value in operands.items()
        }
        slots = template.slots
        base = self._flushed + len(self._rows)
        #: by_iter[k][i] = trace index of slot k's iteration-i emission.
        by_iter: list[list[int]] = [[-1] * n for _ in slots]
        last = [-1] * len(slots)
        slot_of: list[int] = []
        iota = None

        def choices_of(ref) -> tuple[int, ...]:
            if isinstance(ref, int):
                return (ref,)
            if isinstance(ref, Slot):
                return (ref.index,)
            return ref.choices

        def resolve(i: int, ref) -> int:
            if isinstance(ref, int):
                return ref
            if isinstance(ref, Reg):
                value = operands[ref.name]
                if isinstance(value, (int, np.integer)):
                    return int(value)
                return int(value[i])
            if isinstance(ref, (Slot, Sel)):
                # First *present* choice this iteration, priority order.
                for k in choices_of(ref):
                    index = by_iter[k][i]
                    if index >= 0:
                        return index
                raise TemplateError(
                    f"template {template.name!r} reads {ref!r} in "
                    f"iteration {i} where no referenced slot emitted"
                )
            if isinstance(ref, Carry):
                # Priority pick at the latest iteration <= i - lag where
                # any choice emitted (indices grow monotonically, so
                # this matches the vectorized running-maximum).
                choices = choices_of(ref.ref)
                for when in range(i - ref.lag, -1, -1):
                    for k in choices:
                        index = by_iter[k][when]
                        if index >= 0:
                            return index
                return resolve(i, ref.init)
            raise TemplateError(f"unknown source reference {ref!r}")

        try:
            for i in range(n):
                for k, slot in enumerate(slots):
                    if slot.gate is not None and not bool(
                        operands[slot.gate][i]
                    ):
                        continue
                    sources = tuple(
                        resolve(i, ref) for ref in slot.sources
                    )
                    address = -1
                    size = 0
                    if slot.is_memory:
                        if slot.addr is not None:
                            address = int(operands[slot.addr][i])
                        else:
                            address = slot.offset
                            if slot.base is not None:
                                value = operands[slot.base]
                                address += (
                                    int(value)
                                    if isinstance(value, (int, np.integer))
                                    else int(value[i])
                                )
                            if slot.scale:
                                if slot.index is not None:
                                    step = int(operands[slot.index][i])
                                else:
                                    if iota is None:
                                        iota = range(n)
                                    step = i
                                address += slot.scale * step
                        size = slot.size
                    taken = False
                    target = 0
                    if slot.is_ctrl:
                        outcome = slot.taken
                        taken = (
                            bool(operands[outcome][i])
                            if isinstance(outcome, str)
                            else bool(outcome)
                        )
                        pc = self.pc_of(slot.site)
                        target = pc - 128 if slot.backward else pc + 64
                    index = self._emit(
                        slot.op,
                        slot.site,
                        sources,
                        has_dest=slot.has_dest,
                        address=address,
                        size=size,
                        taken=taken,
                        target=target,
                    )
                    by_iter[k][i] = index
                    last[k] = index
                    slot_of.append(k)
        finally:
            if slot_of:
                self._regions.append(StampRegion(
                    base, template, np.array(slot_of, dtype=np.uint16)
                ))
        return StampResult(start=base, count=len(slot_of), _last=last)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def mix(self) -> InstructionMix:
        """Instruction breakdown (valid in both modes)."""
        return InstructionMix(counts=tuple(self.counts))

    def build(self, *, strict: bool = False) -> Trace:
        """Finalize into a columnar :class:`Trace` (recording mode only).

        With ``strict=True`` the finished trace is linted
        (:func:`repro.verify.check_trace`) before being returned — the
        development gate for new kernels, catching malformed emissions
        (forward dependencies, missing addresses, phantom dest flags)
        at build time rather than as skewed statistics later.
        """
        if not self.record:
            raise ValueError(
                "builder is in count-only mode; use mix() for statistics"
            )
        self._flush_rows()
        trace = Trace(self.name, columns=concat_columns(self._chunks))
        trace.stamped_regions = tuple(self._regions)
        if strict:
            from repro.verify import check_trace

            check_trace(trace)
        return trace
