"""Abstract ISA: op classes, instructions, traces, trace builder."""

from repro.isa.builder import (
    CODE_BASE,
    DATA_BASE,
    TraceBudgetExceededError,
    TraceBuilder,
)
from repro.isa.instruction import Instruction
from repro.isa.serialize import load_trace, save_trace
from repro.isa.opcodes import (
    FIG1_ORDER,
    FU_OF_OPCLASS,
    LATENCY_OF_OPCLASS,
    LOAD_OPS,
    MEMORY_OPS,
    STORE_OPS,
    VECTOR_OPS,
    FunctionalUnit,
    OpClass,
)
from repro.isa.trace import InstructionMix, Trace

__all__ = [
    "CODE_BASE",
    "DATA_BASE",
    "TraceBudgetExceededError",
    "TraceBuilder",
    "Instruction",
    "load_trace",
    "save_trace",
    "FIG1_ORDER",
    "FU_OF_OPCLASS",
    "LATENCY_OF_OPCLASS",
    "LOAD_OPS",
    "MEMORY_OPS",
    "STORE_OPS",
    "VECTOR_OPS",
    "FunctionalUnit",
    "OpClass",
    "InstructionMix",
    "Trace",
]
