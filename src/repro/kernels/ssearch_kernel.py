"""Traced SSEARCH34 kernel: scalar SWAT-optimized Smith-Waterman.

Mirrors paper listing 2.  Each DP cell follows the SWAT control
structure: a *fast path* when both the incoming diagonal score and the
stored gap score are non-positive (load, test, store zero, next), and a
*slow path* that performs the full affine-gap update.  On typical
(unrelated) database sequences most cells take the fast path, giving
the application its speed — and its signature mix of ~25% data-dependent
branches that the paper identifies as the dominant performance limiter.

The Python DP state is updated exactly as
:func:`repro.align.smith_waterman.sw_score_swat`, so the traced scores
are bit-identical to the reference (tested).
"""

from __future__ import annotations

from repro.align.types import GapPenalties, PAPER_GAPS
from repro.bio.database import SequenceDatabase
from repro.bio.matrices import BLOSUM62, ScoringMatrix
from repro.bio.sequence import Sequence
from repro.isa.builder import TraceBuilder
from repro.kernels.base import TracedKernel


class SsearchKernel(TracedKernel):
    """Instrumented scalar Smith-Waterman database scan.

    ``computation_avoidance=False`` disables the SWAT fast path in the
    *emitted* stream (every cell takes the full update, like a naive SW
    implementation) while computing identical scores — the ablation
    that shows where SSEARCH's speed and its branch-predictor
    dependence both come from.
    """

    name = "ssearch34"

    def __init__(
        self,
        matrix: ScoringMatrix = BLOSUM62,
        gaps: GapPenalties = PAPER_GAPS,
        computation_avoidance: bool = True,
    ) -> None:
        self.matrix = matrix
        self.gaps = gaps
        self.computation_avoidance = computation_avoidance

    def execute(
        self,
        builder: TraceBuilder,
        query: Sequence,
        database: SequenceDatabase,
        scores: dict[str, int],
    ) -> None:
        q = query.codes
        m = len(q)
        gap_first = self.gaps.first_residue_cost
        gap_extend = self.gaps.extend
        rows = self.matrix.rows

        # Data layout: query profile (waa), H/E struct array (ss), and
        # the database residues streaming through one contiguous region.
        waa_base = builder.alloc("waa", self.matrix.size * m * 2)
        ss_base = builder.alloc("ss", m * 8)
        db_base = builder.alloc("db", database.residue_count, align=128)

        db_cursor = db_base
        for subject in database:
            s = subject.codes
            subject_base = db_cursor
            db_cursor += len(s)

            h_state = [0] * m
            e_state = [0] * m
            best = 0

            # Per-subject driver overhead (sequence setup, stats).
            r_sub = builder.ialu("drv.subj.setup")
            builder.other("drv.subj.misc", (r_sub,))

            for j, b_code in enumerate(s):
                score_row = rows[b_code]
                # Row setup: load the database residue, derive the
                # profile row pointer, reset the running registers.
                r_b = builder.iload(
                    "row.loadb", subject_base + j, (r_sub,), size=1
                )
                r_pwaa = builder.ialu("row.pwaa", (r_b,))
                r_ss = builder.ialu("row.ssptr")
                r_h = builder.ialu("row.h0")
                r_f = builder.ialu("row.f0")
                r_diag = r_h
                r_best = r_h

                h = 0
                f = 0
                waa_row = waa_base + b_code * m * 2
                for i in range(m):
                    # h = p + *pwaa++  (diagonal + substitution score)
                    h += score_row[q[i]]
                    prev_h = h_state[i]
                    e = e_state[i]

                    r_val = builder.iload(
                        "cell.pwaa", waa_row + i * 2, (r_pwaa,), size=2
                    )
                    r_pwaa = builder.ialu("cell.pwaa_inc", (r_pwaa,))
                    r_h = builder.ialu("cell.add", (r_diag, r_val))
                    r_prev = builder.iload(
                        "cell.loadH", ss_base + i * 8, (r_ss,), size=4
                    )
                    r_e = builder.iload(
                        "cell.loadE", ss_base + i * 8 + 4, (r_ss,), size=4
                    )

                    slow = (
                        e > 0 or h > 0 or f > 0
                        or not self.computation_avoidance
                    )
                    r_cmp = builder.ialu("cell.cmp_e", (r_e,))
                    builder.ctrl("cell.br_e", taken=e > 0, sources=(r_cmp,))
                    r_cmp = builder.ialu("cell.cmp_h", (r_h, r_f))
                    builder.ctrl(
                        "cell.br_h", taken=h > 0 or f > 0, sources=(r_cmp,)
                    )

                    # Reference SWAT state update (always exact); the
                    # comparison outcomes are captured at comparison
                    # time to drive the emitted branches below.
                    if h < 0:
                        h = 0
                    f_beats_h = f > h
                    if f_beats_h:
                        h = f
                    e_beats_h = e > h
                    if e_beats_h:
                        h = e
                    threshold = h - gap_first
                    f -= gap_extend
                    f_opens = threshold > f
                    if f_opens:
                        f = threshold
                    e -= gap_extend
                    e_opens = threshold > e
                    if e_opens:
                        e = threshold
                    if e < 0:
                        e = 0

                    if slow:
                        # Full affine update: conditional moves, gap
                        # bookkeeping, both state stores.
                        r_cmp = builder.ialu("cell.cmp_fh", (r_f, r_h))
                        builder.ctrl("cell.br_fh", taken=f_beats_h, sources=(r_cmp,))
                        if f_beats_h:
                            r_h = builder.ialu("cell.mov_f", (r_f,))
                        r_cmp = builder.ialu("cell.cmp_eh", (r_e, r_h))
                        builder.ctrl("cell.br_eh", taken=e_beats_h, sources=(r_cmp,))
                        if e_beats_h:
                            r_h = builder.ialu("cell.mov_e", (r_e,))
                        # Gap bookkeeping uses select-style updates (the
                        # compiler emits isel, not branches, for these).
                        r_thr = builder.ialu("cell.thr", (r_h,))
                        r_f = builder.ialu("cell.f_ext", (r_f,))
                        r_f = builder.ialu("cell.f_sel", (r_thr, r_f))
                        r_e = builder.ialu("cell.e_ext", (r_e,))
                        r_e = builder.ialu("cell.e_sel", (r_thr, r_e))
                        builder.istore(
                            "cell.stE", ss_base + i * 8 + 4, (r_e, r_ss), size=4
                        )
                        builder.istore(
                            "cell.stH", ss_base + i * 8, (r_h, r_ss), size=4
                        )
                        if h > best:
                            r_cmp = builder.ialu("cell.cmp_best", (r_h, r_best))
                            r_best = builder.ialu("cell.mov_best", (r_cmp,))
                    else:
                        # Fast path: everything non-positive, store zero.
                        builder.istore(
                            "cell.stH0", ss_base + i * 8, (r_h, r_ss), size=4
                        )

                    h_state[i] = h
                    e_state[i] = e
                    if h > best:
                        best = h

                    builder.ctrl("cell.loop", taken=i + 1 < m, backward=True)
                    h = prev_h
                    r_diag = r_prev

                builder.ctrl("row.loop", taken=j + 1 < len(s), backward=True)

            # Report path: histogram bin update per subject.
            r_bin = builder.ialu("drv.hist.bin", (r_best,))
            builder.istore("drv.hist.store", ss_base, (r_bin,), size=4)
            scores[subject.identifier] = best
