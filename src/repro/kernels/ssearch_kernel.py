"""Traced SSEARCH34 kernel: scalar SWAT-optimized Smith-Waterman.

Mirrors paper listing 2.  Each DP cell follows the SWAT control
structure: a *fast path* when both the incoming diagonal score and the
stored gap score are non-positive (load, test, store zero, next), and a
*slow path* that performs the full affine-gap update.  On typical
(unrelated) database sequences most cells take the fast path, giving
the application its speed — and its signature mix of ~25% data-dependent
branches that the paper identifies as the dominant performance limiter.

The Python DP state is updated exactly as
:func:`repro.align.smith_waterman.sw_score_swat`, so the traced scores
are bit-identical to the reference (tested).
"""

from __future__ import annotations

import numpy as np

from repro.align.types import GapPenalties, PAPER_GAPS
from repro.bio.database import SequenceDatabase
from repro.bio.matrices import BLOSUM62, ScoringMatrix
from repro.bio.sequence import Sequence
from repro.isa.builder import TraceBuilder
from repro.isa.emit import Carry, EmitTemplate, Reg, Sel, Slot, SlotSpec
from repro.isa.opcodes import OpClass

from repro.kernels.base import TracedKernel


def _cell_template() -> EmitTemplate:
    """The SWAT cell block as a stamp template.

    Slot order mirrors the scalar emission sequence exactly; the
    data-dependent paths (the SWAT fast/slow split and its conditional
    moves) become gates driven by per-cell boolean masks computed by
    the reference DP update.
    """
    alu = OpClass.IALU
    load = OpClass.ILOAD
    store = OpClass.ISTORE
    ctrl = OpClass.CTRL
    # Loop-carried registers: the profile pointer (slot 1 increments
    # it), the diagonal H (last iteration's loadH), the running F
    # (rewritten by f_sel on slow cells), and the row best (mov_best).
    r_pwaa = Carry(1, init=Reg("pwaa"))
    r_diag = Carry(3, init=Reg("h0"))
    r_f = Carry(17, init=Reg("f0"))
    r_best = Carry(23, init=Reg("h0"))
    r_h = Sel(14, 11, 2)  # after the conditional moves
    return EmitTemplate("ssearch.cell", [
        SlotSpec(load, "cell.pwaa", sources=(r_pwaa,),
                 base="waa_row", scale=2, size=2),
        SlotSpec(alu, "cell.pwaa_inc", sources=(r_pwaa,)),
        SlotSpec(alu, "cell.add", sources=(r_diag, Slot(0))),
        SlotSpec(load, "cell.loadH", sources=(Reg("ss"),),
                 base="ssb", scale=8, size=4),
        SlotSpec(load, "cell.loadE", sources=(Reg("ss"),),
                 base="ssb", scale=8, offset=4, size=4),
        SlotSpec(alu, "cell.cmp_e", sources=(Slot(4),)),
        SlotSpec(ctrl, "cell.br_e", taken="e_pos", sources=(Slot(5),)),
        SlotSpec(alu, "cell.cmp_h", sources=(Slot(2), r_f)),
        SlotSpec(ctrl, "cell.br_h", taken="hf_pos", sources=(Slot(7),)),
        SlotSpec(alu, "cell.cmp_fh", gate="slow", sources=(r_f, Slot(2))),
        SlotSpec(ctrl, "cell.br_fh", gate="slow", taken="f_beats",
                 sources=(Slot(9),)),
        SlotSpec(alu, "cell.mov_f", gate="slow_f", sources=(r_f,)),
        SlotSpec(alu, "cell.cmp_eh", gate="slow",
                 sources=(Slot(4), Sel(11, 2))),
        SlotSpec(ctrl, "cell.br_eh", gate="slow", taken="e_beats",
                 sources=(Slot(12),)),
        SlotSpec(alu, "cell.mov_e", gate="slow_e", sources=(Slot(4),)),
        SlotSpec(alu, "cell.thr", gate="slow", sources=(r_h,)),
        SlotSpec(alu, "cell.f_ext", gate="slow", sources=(r_f,)),
        SlotSpec(alu, "cell.f_sel", gate="slow",
                 sources=(Slot(15), Slot(16))),
        SlotSpec(alu, "cell.e_ext", gate="slow", sources=(Slot(4),)),
        SlotSpec(alu, "cell.e_sel", gate="slow",
                 sources=(Slot(15), Slot(18))),
        SlotSpec(store, "cell.stE", gate="slow",
                 sources=(Slot(19), Reg("ss")),
                 base="ssb", scale=8, offset=4, size=4),
        SlotSpec(store, "cell.stH", gate="slow", sources=(r_h, Reg("ss")),
                 base="ssb", scale=8, size=4),
        SlotSpec(alu, "cell.cmp_best", gate="slow_b",
                 sources=(r_h, r_best)),
        SlotSpec(alu, "cell.mov_best", gate="slow_b", sources=(Slot(22),),
                 key="best"),
        SlotSpec(store, "cell.stH0", gate="fast",
                 sources=(Slot(2), Reg("ss")),
                 base="ssb", scale=8, size=4),
        SlotSpec(ctrl, "cell.loop", taken="loop", backward=True),
    ])


#: Compiled once at import; stamping reuses it for every row.
CELL_TEMPLATE = _cell_template()
_BEST_SLOT = CELL_TEMPLATE.slot_index("best")


class SsearchKernel(TracedKernel):
    """Instrumented scalar Smith-Waterman database scan.

    ``computation_avoidance=False`` disables the SWAT fast path in the
    *emitted* stream (every cell takes the full update, like a naive SW
    implementation) while computing identical scores — the ablation
    that shows where SSEARCH's speed and its branch-predictor
    dependence both come from.
    """

    name = "ssearch34"

    def __init__(
        self,
        matrix: ScoringMatrix = BLOSUM62,
        gaps: GapPenalties = PAPER_GAPS,
        computation_avoidance: bool = True,
    ) -> None:
        self.matrix = matrix
        self.gaps = gaps
        self.computation_avoidance = computation_avoidance

    def execute(
        self,
        builder: TraceBuilder,
        query: Sequence,
        database: SequenceDatabase,
        scores: dict[str, int],
    ) -> None:
        if builder.use_templates:
            self._execute_templated(builder, query, database, scores)
        else:
            self._execute_scalar(builder, query, database, scores)

    def _execute_templated(
        self,
        builder: TraceBuilder,
        query: Sequence,
        database: SequenceDatabase,
        scores: dict[str, int],
    ) -> None:
        q = query.codes
        m = len(q)
        gap_first = self.gaps.first_residue_cost
        gap_extend = self.gaps.extend
        rows = self.matrix.rows
        avoid = self.computation_avoidance

        waa_base = builder.alloc("waa", self.matrix.size * m * 2)
        ss_base = builder.alloc("ss", m * 8)
        db_base = builder.alloc("db", database.residue_count, align=128)

        # Query profile rows memoized per database residue code (same
        # scores the scalar path reads cell by cell).
        profile: dict[int, list[int]] = {}
        loop_taken = np.ones(m, dtype=bool)
        if m:
            loop_taken[m - 1] = False

        db_cursor = db_base
        for subject in database:
            s = subject.codes
            subject_base = db_cursor
            db_cursor += len(s)

            h_state = [0] * m
            e_state = [0] * m
            best = 0

            r_sub = builder.ialu("drv.subj.setup")
            builder.other("drv.subj.misc", (r_sub,))

            r_best = 0
            for j, b_code in enumerate(s):
                score_row_q = profile.get(b_code)
                if score_row_q is None:
                    score_row = rows[b_code]
                    score_row_q = [score_row[code] for code in q]
                    profile[b_code] = score_row_q

                r_b = builder.iload(
                    "row.loadb", subject_base + j, (r_sub,), size=1
                )
                r_pwaa = builder.ialu("row.pwaa", (r_b,))
                r_ss = builder.ialu("row.ssptr")
                r_h0 = builder.ialu("row.h0")
                r_f0 = builder.ialu("row.f0")

                # Reference SWAT DP for the whole row, collecting the
                # per-cell branch outcomes the template's gates need.
                e_pos = [False] * m
                hf_pos = [False] * m
                slow_m = [False] * m
                f_bt = [False] * m
                e_bt = [False] * m
                best_m = [False] * m
                h = 0
                f = 0
                for i in range(m):
                    h += score_row_q[i]
                    prev_h = h_state[i]
                    e = e_state[i]
                    e_pos[i] = e > 0
                    hf_pos[i] = h > 0 or f > 0
                    slow = e > 0 or h > 0 or f > 0 or not avoid
                    slow_m[i] = slow
                    if h < 0:
                        h = 0
                    f_beats_h = f > h
                    if f_beats_h:
                        h = f
                    e_beats_h = e > h
                    if e_beats_h:
                        h = e
                    f_bt[i] = f_beats_h
                    e_bt[i] = e_beats_h
                    threshold = h - gap_first
                    f -= gap_extend
                    if threshold > f:
                        f = threshold
                    e -= gap_extend
                    if threshold > e:
                        e = threshold
                    if e < 0:
                        e = 0
                    if slow and h > best:
                        best_m[i] = True
                    h_state[i] = h
                    e_state[i] = e
                    if h > best:
                        best = h
                    h = prev_h

                slow_mask = np.asarray(slow_m, dtype=bool)
                result = builder.stamp(CELL_TEMPLATE, m, {
                    "pwaa": r_pwaa,
                    "h0": r_h0,
                    "f0": r_f0,
                    "ss": r_ss,
                    "waa_row": waa_base + b_code * m * 2,
                    "ssb": ss_base,
                    "e_pos": np.asarray(e_pos, dtype=bool),
                    "hf_pos": np.asarray(hf_pos, dtype=bool),
                    "slow": slow_mask,
                    "fast": ~slow_mask,
                    "f_beats": np.asarray(f_bt, dtype=bool),
                    "e_beats": np.asarray(e_bt, dtype=bool),
                    "slow_f": slow_mask & np.asarray(f_bt, dtype=bool),
                    "slow_e": slow_mask & np.asarray(e_bt, dtype=bool),
                    "slow_b": np.asarray(best_m, dtype=bool),
                    "loop": loop_taken,
                })
                r_best = result.last(_BEST_SLOT, default=r_h0)

                builder.ctrl("row.loop", taken=j + 1 < len(s), backward=True)

            r_bin = builder.ialu("drv.hist.bin", (r_best,))
            builder.istore("drv.hist.store", ss_base, (r_bin,), size=4)
            scores[subject.identifier] = best

    def _execute_scalar(
        self,
        builder: TraceBuilder,
        query: Sequence,
        database: SequenceDatabase,
        scores: dict[str, int],
    ) -> None:
        q = query.codes
        m = len(q)
        gap_first = self.gaps.first_residue_cost
        gap_extend = self.gaps.extend
        rows = self.matrix.rows

        # Data layout: query profile (waa), H/E struct array (ss), and
        # the database residues streaming through one contiguous region.
        waa_base = builder.alloc("waa", self.matrix.size * m * 2)
        ss_base = builder.alloc("ss", m * 8)
        db_base = builder.alloc("db", database.residue_count, align=128)

        db_cursor = db_base
        for subject in database:
            s = subject.codes
            subject_base = db_cursor
            db_cursor += len(s)

            h_state = [0] * m
            e_state = [0] * m
            best = 0

            # Per-subject driver overhead (sequence setup, stats).
            r_sub = builder.ialu("drv.subj.setup")
            builder.other("drv.subj.misc", (r_sub,))

            for j, b_code in enumerate(s):
                score_row = rows[b_code]
                # Row setup: load the database residue, derive the
                # profile row pointer, reset the running registers.
                r_b = builder.iload(
                    "row.loadb", subject_base + j, (r_sub,), size=1
                )
                r_pwaa = builder.ialu("row.pwaa", (r_b,))
                r_ss = builder.ialu("row.ssptr")
                r_h = builder.ialu("row.h0")
                r_f = builder.ialu("row.f0")
                r_diag = r_h
                r_best = r_h

                h = 0
                f = 0
                waa_row = waa_base + b_code * m * 2
                for i in range(m):
                    # h = p + *pwaa++  (diagonal + substitution score)
                    h += score_row[q[i]]
                    prev_h = h_state[i]
                    e = e_state[i]

                    r_val = builder.iload(
                        "cell.pwaa", waa_row + i * 2, (r_pwaa,), size=2
                    )
                    r_pwaa = builder.ialu("cell.pwaa_inc", (r_pwaa,))
                    r_h = builder.ialu("cell.add", (r_diag, r_val))
                    r_prev = builder.iload(
                        "cell.loadH", ss_base + i * 8, (r_ss,), size=4
                    )
                    r_e = builder.iload(
                        "cell.loadE", ss_base + i * 8 + 4, (r_ss,), size=4
                    )

                    slow = (
                        e > 0 or h > 0 or f > 0
                        or not self.computation_avoidance
                    )
                    r_cmp = builder.ialu("cell.cmp_e", (r_e,))
                    builder.ctrl("cell.br_e", taken=e > 0, sources=(r_cmp,))
                    r_cmp = builder.ialu("cell.cmp_h", (r_h, r_f))
                    builder.ctrl(
                        "cell.br_h", taken=h > 0 or f > 0, sources=(r_cmp,)
                    )

                    # Reference SWAT state update (always exact); the
                    # comparison outcomes are captured at comparison
                    # time to drive the emitted branches below.
                    if h < 0:
                        h = 0
                    f_beats_h = f > h
                    if f_beats_h:
                        h = f
                    e_beats_h = e > h
                    if e_beats_h:
                        h = e
                    threshold = h - gap_first
                    f -= gap_extend
                    f_opens = threshold > f
                    if f_opens:
                        f = threshold
                    e -= gap_extend
                    e_opens = threshold > e
                    if e_opens:
                        e = threshold
                    if e < 0:
                        e = 0

                    if slow:
                        # Full affine update: conditional moves, gap
                        # bookkeeping, both state stores.
                        r_cmp = builder.ialu("cell.cmp_fh", (r_f, r_h))
                        builder.ctrl("cell.br_fh", taken=f_beats_h, sources=(r_cmp,))
                        if f_beats_h:
                            r_h = builder.ialu("cell.mov_f", (r_f,))
                        r_cmp = builder.ialu("cell.cmp_eh", (r_e, r_h))
                        builder.ctrl("cell.br_eh", taken=e_beats_h, sources=(r_cmp,))
                        if e_beats_h:
                            r_h = builder.ialu("cell.mov_e", (r_e,))
                        # Gap bookkeeping uses select-style updates (the
                        # compiler emits isel, not branches, for these).
                        r_thr = builder.ialu("cell.thr", (r_h,))
                        r_f = builder.ialu("cell.f_ext", (r_f,))
                        r_f = builder.ialu("cell.f_sel", (r_thr, r_f))
                        r_e = builder.ialu("cell.e_ext", (r_e,))
                        r_e = builder.ialu("cell.e_sel", (r_thr, r_e))
                        builder.istore(
                            "cell.stE", ss_base + i * 8 + 4, (r_e, r_ss), size=4
                        )
                        builder.istore(
                            "cell.stH", ss_base + i * 8, (r_h, r_ss), size=4
                        )
                        if h > best:
                            r_cmp = builder.ialu("cell.cmp_best", (r_h, r_best))
                            r_best = builder.ialu("cell.mov_best", (r_cmp,))
                    else:
                        # Fast path: everything non-positive, store zero.
                        builder.istore(
                            "cell.stH0", ss_base + i * 8, (r_h, r_ss), size=4
                        )

                    h_state[i] = h
                    e_state[i] = e
                    if h > best:
                        best = h

                    builder.ctrl("cell.loop", taken=i + 1 < m, backward=True)
                    h = prev_h
                    r_diag = r_prev

                builder.ctrl("row.loop", taken=j + 1 < len(s), backward=True)

            # Report path: histogram bin update per subject.
            r_bin = builder.ialu("drv.hist.bin", (r_best,))
            builder.istore("drv.hist.store", ss_base, (r_bin,), size=4)
            scores[subject.identifier] = best
