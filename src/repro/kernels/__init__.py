"""Instrumented workload kernels emitting dynamic instruction traces."""

from repro.kernels.base import KernelRun, TracedKernel
from repro.kernels.blast_kernel import BlastKernel
from repro.kernels.blastn_kernel import BlastnKernel
from repro.kernels.dp_emit import banded_dp_traced
from repro.kernels.fasta_kernel import FastaKernel
from repro.kernels.msa_kernel import MsaKernel
from repro.kernels.registry import (
    KERNEL_FACTORIES,
    WORKLOAD_NAMES,
    create_kernel,
)
from repro.kernels.ssearch_kernel import SsearchKernel
from repro.kernels.sw_vmx_kernel import SwVmxKernel

__all__ = [
    "KernelRun",
    "TracedKernel",
    "BlastKernel",
    "BlastnKernel",
    "banded_dp_traced",
    "FastaKernel",
    "MsaKernel",
    "KERNEL_FACTORIES",
    "WORKLOAD_NAMES",
    "create_kernel",
    "SsearchKernel",
    "SwVmxKernel",
]
