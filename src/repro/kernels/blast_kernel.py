"""Traced NCBI-BLAST kernel: word scan, two-hit seeds, extensions.

Mirrors paper listing 1's character: the scan loop reads packed
database residues, probes a compact presence vector, and — on a hit —
chases pointers through the big lookup-cell table, the per-diagonal
last-hit array, and the query-offset buckets.  Those scattered accesses
over a table that does not fit in small L1 caches are exactly the
memory behaviour behind BLAST's mm_dl1/mm_dl2 traumas in the paper;
the extension stages add matrix-lookup ALU chains (rg_fix).

Scores equal :class:`repro.align.blast.engine.BlastEngine`'s (tested).
"""

from __future__ import annotations


from repro.align.blast.engine import BlastOptions
from repro.align.blast.wordfinder import LookupTable, word_index
from repro.bio.database import SequenceDatabase
from repro.bio.sequence import Sequence
from repro.isa.builder import TraceBuilder
from repro.isa.emit import INTERPRET_BELOW, Carry, EmitTemplate, Reg, Slot, SlotSpec
from repro.isa.opcodes import OpClass
from repro.kernels.base import TracedKernel
from repro.kernels.dp_emit import banded_dp_traced

#: Word-scan block, stamped in hit-to-hit runs (the hit's cell fetch,
#: bucket walk, and extensions interleave scalar emissions mid-stream).
_SCAN_TEMPLATE = EmitTemplate("blast.scan", [
    SlotSpec(OpClass.ILOAD, "scan.readdb",
             sources=(Carry(1, init=Reg("ptr")),),
             base="sb", scale=1, size=1),
    SlotSpec(OpClass.IALU, "scan.unpack1",
             sources=(Slot(0), Carry(1, init=Reg("ptr")))),
    SlotSpec(OpClass.IALU, "scan.unpack2", sources=(Slot(0),)),
    SlotSpec(OpClass.IALU, "scan.unpack3", sources=(Slot(2),)),
    SlotSpec(OpClass.IALU, "scan.index", sources=(Slot(3),)),
    SlotSpec(OpClass.IALU, "scan.pv_addr", sources=(Slot(4),)),
    SlotSpec(OpClass.ILOAD, "scan.pv", sources=(Slot(5),),
             addr="pva", size=4),
    SlotSpec(OpClass.IALU, "scan.pv_test", sources=(Slot(6), Slot(4))),
    SlotSpec(OpClass.CTRL, "scan.br_hit", taken="hit", sources=(Slot(7),)),
    SlotSpec(OpClass.CTRL, "scan.loop", gate="odd", taken="cont",
             backward=True),
])

#: Per-direction x-drop extension step blocks (sites embed direction).
_EXT_TEMPLATES: dict[str, EmitTemplate] = {}


def _ext_template(direction: str) -> EmitTemplate:
    template = _EXT_TEMPLATES.get(direction)
    if template is not None:
        return template
    template = EmitTemplate(f"blast.ext.{direction}", [
        SlotSpec(OpClass.ILOAD, f"ext.{direction}.s",
                 sources=(Carry(3, init=Reg("run")),), addr="sa", size=1),
        SlotSpec(OpClass.IALU, f"ext.{direction}.row", sources=(Slot(0),)),
        SlotSpec(OpClass.ILOAD, f"ext.{direction}.m", sources=(Slot(1),),
                 addr="ma", size=2),
        SlotSpec(OpClass.IALU, f"ext.{direction}.add",
                 sources=(Carry(3, init=Reg("run")), Slot(2))),
        SlotSpec(OpClass.IALU, f"ext.{direction}.ptr", sources=(Slot(3),)),
        SlotSpec(OpClass.IALU, f"ext.{direction}.cmp",
                 sources=(Slot(3), Slot(4))),
        SlotSpec(OpClass.CTRL, f"ext.{direction}.br", taken="go",
                 sources=(Slot(5),)),
    ])
    _EXT_TEMPLATES[direction] = template
    return template


class BlastKernel(TracedKernel):
    """Instrumented BLASTP database scan."""

    name = "blast"

    def __init__(self, options: BlastOptions = BlastOptions()) -> None:
        self.options = options

    def execute(
        self,
        builder: TraceBuilder,
        query: Sequence,
        database: SequenceDatabase,
        scores: dict[str, int],
    ) -> None:
        options = self.options
        q = query.codes
        m = len(q)
        word_size = options.word_size
        window = options.window

        lookup_query = query
        if options.mask_query:
            from repro.bio.complexity import mask_sequence

            lookup_query = mask_sequence(query)
        lookup = LookupTable(
            lookup_query.codes,
            matrix=options.matrix,
            word_size=word_size,
            threshold=options.threshold,
        )

        # Data layout mirroring NCBI BLAST's structures: a compact
        # presence vector (1 bit/word), the cell table (8 B/word), the
        # bucket area holding query offsets, the matrix, the diagonal
        # last-hit array, and the streamed database.
        table_words = len(lookup)
        pv_base = builder.alloc("presence", table_words // 8 + 8)
        cells_base = builder.alloc("cells", table_words * 8)
        buckets_base = builder.alloc("buckets", max(lookup.entry_count, 1) * 4)
        matrix_base = builder.alloc("matrix", options.matrix.size**2 * 2)
        query_base = builder.alloc("query", max(m, 1))
        longest = max((len(s) for s in database), default=0)
        diag_base = builder.alloc("diag", (m + longest) * 4)
        profile_base = builder.alloc("profile", options.matrix.size * m * 2)
        row_base = builder.alloc("dp_rows", (m + 1) * 8)
        db_base = builder.alloc("db", database.residue_count)

        # Bucket offsets per word index (for address generation).
        bucket_offset: dict[int, int] = {}
        cursor = 0
        for index in range(table_words):
            positions = lookup.lookup(index)
            if positions:
                bucket_offset[index] = cursor
                cursor += len(positions)

        bases = {
            "pv": pv_base,
            "cells": cells_base,
            "buckets": buckets_base,
            "matrix": matrix_base,
            "query": query_base,
            "diag": diag_base,
            "profile": profile_base,
            "row": row_base,
        }
        scan = (
            self._scan_templated if builder.use_templates
            else self._scan_scalar
        )

        db_cursor = db_base
        for subject in database:
            s = subject.codes
            n = len(s)
            subject_base = db_cursor
            db_cursor += n

            r_sub = builder.ialu("drv.subj.setup")
            builder.other("drv.subj.misc", (r_sub,))

            best = scan(
                builder, q, s, n, m, lookup, bucket_offset, bases,
                subject_base, r_sub,
            )

            r_hist = builder.ialu("drv.hist.bin", (r_sub,))
            builder.istore("drv.hist.store", diag_base, (r_hist,), size=4)
            scores[subject.identifier] = best

    def _scan_scalar(
        self,
        builder: TraceBuilder,
        q,
        s,
        n: int,
        m: int,
        lookup: LookupTable,
        bucket_offset: dict[int, int],
        bases: dict[str, int],
        subject_base: int,
        r_sub: int,
    ) -> int:
        """Per-call scalar scan loop (the ``REPRO_EMIT=scalar`` path)."""
        word_size = self.options.word_size
        pv_base = bases["pv"]
        best = 0
        bias = m - 1
        last_hit = [-(10**9)] * (bias + max(n, 1))
        extended_until: dict[int, int] = {}

        r_ptr = r_sub
        for so in range(max(0, n - word_size + 1)):
            index = word_index(s, so, word_size)
            positions = lookup.lookup(index)

            # Scan step: packed residue read, word index update,
            # presence-vector probe (paper listing 1 territory).
            r_ptr, r_idx = self._emit_scan_step(
                builder, r_ptr, subject_base + so,
                pv_base + (max(index, 0) >> 3), bool(positions),
                so % 2 == 1, so + 1 < n,
            )
            if not positions:
                continue

            best = self._process_hit(
                builder, q, s, so, index, positions, bias, last_hit,
                extended_until, best, bucket_offset, bases, subject_base,
                r_idx,
            )
        return best

    @staticmethod
    def _emit_scan_step(
        builder: TraceBuilder,
        r_ptr: int,
        subject_addr: int,
        pv_addr: int,
        hit: bool,
        odd: bool,
        cont: bool,
    ) -> tuple[int, int]:
        """One scalar scan step — the per-call twin of one
        ``_SCAN_TEMPLATE`` iteration; returns (ptr, word-index) regs."""
        r_byte = builder.iload("scan.readdb", subject_addr, (r_ptr,), size=1)
        r_ptr = builder.ialu("scan.unpack1", (r_byte, r_ptr))
        r_idx = builder.ialu("scan.unpack2", (r_byte,))
        r_idx = builder.ialu("scan.unpack3", (r_idx,))
        r_idx = builder.ialu("scan.index", (r_idx,))
        r_pvaddr = builder.ialu("scan.pv_addr", (r_idx,))
        r_pv = builder.iload("scan.pv", pv_addr, (r_pvaddr,), size=4)
        r_bit = builder.ialu("scan.pv_test", (r_pv, r_idx))
        builder.ctrl("scan.br_hit", taken=hit, sources=(r_bit,))
        if odd:
            builder.ctrl("scan.loop", taken=cont, backward=True)
        return r_ptr, r_idx

    def _scan_templated(
        self,
        builder: TraceBuilder,
        q,
        s,
        n: int,
        m: int,
        lookup: LookupTable,
        bucket_offset: dict[int, int],
        bases: dict[str, int],
        subject_base: int,
        r_sub: int,
    ) -> int:
        """Template-stamped scan loop, flushed run-by-run at word hits."""
        word_size = self.options.word_size
        pv_base = bases["pv"]
        best = 0
        bias = m - 1
        last_hit = [-(10**9)] * (bias + max(n, 1))
        extended_until: dict[int, int] = {}

        total = max(0, n - word_size + 1)
        state = {"ptr": r_sub, "start": 0}
        pva: list[int] = []
        hit: list[bool] = []
        odd: list[bool] = []
        cont: list[bool] = []

        def flush(upto: int) -> int:
            count = upto - state["start"]
            r_idx = state["ptr"]
            if count <= 0:
                return r_idx
            if count < INTERPRET_BELOW:
                # Stamp setup costs more than these few instructions:
                # replay the buffered run through the scalar step
                # (identical stream either way).
                r_ptr = state["ptr"]
                start = state["start"]
                for k in range(count):
                    r_ptr, r_idx = self._emit_scan_step(
                        builder, r_ptr, subject_base + start + k,
                        pva[k], hit[k], odd[k], cont[k],
                    )
                state["ptr"] = r_ptr
            else:
                # Lists, not arrays: stamp_columns converts once.
                result = builder.stamp(_SCAN_TEMPLATE, count, {
                    "ptr": state["ptr"],
                    "sb": subject_base + state["start"],
                    "pva": pva,
                    "hit": hit,
                    "odd": odd,
                    "cont": cont,
                })
                state["ptr"] = result.last(1, default=state["ptr"])
                r_idx = result.last(4, default=state["ptr"])
            state["start"] = upto
            pva.clear()
            hit.clear()
            odd.clear()
            cont.clear()
            return r_idx

        for so in range(total):
            index = word_index(s, so, word_size)
            positions = lookup.lookup(index)
            pva.append(pv_base + (max(index, 0) >> 3))
            hit.append(bool(positions))
            odd.append(so % 2 == 1)
            cont.append(so + 1 < n)
            if not positions:
                continue
            r_idx = flush(so + 1)
            best = self._process_hit(
                builder, q, s, so, index, positions, bias, last_hit,
                extended_until, best, bucket_offset, bases, subject_base,
                r_idx,
            )
        flush(total)
        return best

    def _process_hit(
        self,
        builder: TraceBuilder,
        q,
        s,
        so: int,
        index: int,
        positions,
        bias: int,
        last_hit: list[int],
        extended_until: dict[int, int],
        best: int,
        bucket_offset: dict[int, int],
        bases: dict[str, int],
        subject_base: int,
        r_idx: int,
    ) -> int:
        """Cell fetch, bucket walk, extensions for one word hit.

        Shared verbatim by both emission paths (the walk is short and
        data-dependent; only the extensions inside it are stamped).
        """
        options = self.options
        word_size = options.word_size
        window = options.window

        # Hit: fetch the cell entry, then walk the bucket.
        r_cell = builder.iload(
            "hit.cell", bases["cells"] + index * 8, (r_idx,), size=8
        )
        base = bucket_offset[index]
        r_walk = r_cell
        for bucket_pos, qo in enumerate(positions):
            r_qo = builder.iload(
                "hit.bucket",
                bases["buckets"] + (base + bucket_pos) * 4,
                (r_walk,),
                size=4,
            )
            r_diag = builder.ialu("hit.diag", (r_qo,))
            r_diag = builder.ialu("hit.diag_addr", (r_diag,))
            diagonal = so - qo + bias
            previous = last_hit[diagonal]
            distance = so - previous
            r_last = builder.iload(
                "hit.lasthit", bases["diag"] + diagonal * 4, (r_diag,), size=4
            )
            r_dist = builder.ialu("hit.dist", (r_last,))
            two_hit = word_size <= distance <= window
            builder.ctrl("hit.br_two", taken=two_hit, sources=(r_dist,))
            if two_hit or distance > window:
                last_hit[diagonal] = so
                builder.istore(
                    "hit.update", bases["diag"] + diagonal * 4, (r_diag,), size=4
                )
            builder.ctrl(
                "hit.bucket_loop",
                taken=bucket_pos + 1 < len(positions),
                backward=True,
            )
            if not two_hit:
                continue
            real_diag = so - qo
            if extended_until.get(real_diag, -1) >= so:
                continue

            extend = (
                self._extend_ungapped_templated
                if builder.use_templates
                else self._extend_ungapped_traced
            )
            score, subject_end = extend(
                builder, q, s, qo, so, bases["matrix"], bases["query"],
                subject_base, r_diag
            )
            extended_until[real_diag] = subject_end
            if score >= options.gap_trigger:
                score = banded_dp_traced(
                    builder,
                    "gapx",
                    q,
                    s,
                    center=real_diag,
                    width=options.gapped_band,
                    matrix=options.matrix,
                    gaps=options.gaps,
                    profile_base=bases["profile"],
                    row_base=bases["row"],
                    subject_base=subject_base,
                    r_ctx=r_diag,
                )
            if score > best:
                best = score
        return best

    def _extend_ungapped_templated(
        self,
        builder: TraceBuilder,
        q,
        s,
        query_offset: int,
        subject_offset: int,
        matrix_base: int,
        query_base: int,
        subject_base: int,
        r_seed: int,
    ) -> tuple[int, int]:
        """Template-stamped x-drop extension (one stamp per direction)."""
        options = self.options
        rows = options.matrix.rows
        word_size = options.word_size
        x_drop = options.x_drop_ungapped
        msize = options.matrix.size

        state = {"run": builder.ialu("ext.init", (r_seed,))}

        def stamp_direction(direction: str, steps) -> None:
            count = len(steps)
            if not count:
                return
            if count < INTERPRET_BELOW:
                # X-drop runs are usually a handful of residues; direct
                # emission beats the stamp machinery there.
                run = state["run"]
                for qp, sp, stop in steps:
                    r_s = builder.iload(
                        f"ext.{direction}.s", subject_base + sp,
                        (run,), size=1,
                    )
                    r_row = builder.ialu(f"ext.{direction}.row", (r_s,))
                    r_m = builder.iload(
                        f"ext.{direction}.m",
                        matrix_base + (q[qp] * msize + s[sp]) * 2,
                        (r_row,), size=2,
                    )
                    run = builder.ialu(f"ext.{direction}.add", (run, r_m))
                    r_ptr = builder.ialu(f"ext.{direction}.ptr", (run,))
                    r_cmp = builder.ialu(
                        f"ext.{direction}.cmp", (run, r_ptr)
                    )
                    builder.ctrl(
                        f"ext.{direction}.br", taken=not stop,
                        sources=(r_cmp,),
                    )
                state["run"] = run
                return
            result = builder.stamp(_ext_template(direction), count, {
                "run": state["run"],
                "sa": [subject_base + sp for _, sp, _ in steps],
                "ma": [matrix_base + (q[qp] * msize + s[sp]) * 2
                       for qp, sp, _ in steps],
                "go": [not stop for _, _, stop in steps],
            })
            state["run"] = result.last(3, default=state["run"])

        # Seed word score.
        score = 0
        steps: list[tuple[int, int, bool]] = []
        for offset in range(word_size):
            score += rows[q[query_offset + offset]][s[subject_offset + offset]]
            steps.append(
                (query_offset + offset, subject_offset + offset, False)
            )
        stamp_direction("seed", steps)

        # Right extension.
        best = score
        right = 0
        running = score
        q0, s0 = query_offset + word_size, subject_offset + word_size
        limit = min(len(q) - q0, len(s) - s0)
        steps = []
        for step in range(limit):
            running += rows[q[q0 + step]][s[s0 + step]]
            stop = best - running > x_drop
            if running > best:
                best = running
                right = step + 1
            steps.append((q0 + step, s0 + step, stop))
            if stop:
                break
        stamp_direction("right", steps)

        # Left extension.
        total_best = best
        running = best
        limit = min(query_offset, subject_offset)
        steps = []
        for step in range(1, limit + 1):
            running += rows[q[query_offset - step]][s[subject_offset - step]]
            stop = total_best - running > x_drop
            if running > total_best:
                total_best = running
            steps.append(
                (query_offset - step, subject_offset - step, stop)
            )
            if stop:
                break
        stamp_direction("left", steps)

        return total_best, subject_offset + word_size + right

    def _extend_ungapped_traced(
        self,
        builder: TraceBuilder,
        q,
        s,
        query_offset: int,
        subject_offset: int,
        matrix_base: int,
        query_base: int,
        subject_base: int,
        r_seed: int,
    ) -> tuple[int, int]:
        """X-drop ungapped extension with per-residue emission.

        Returns (score, subject_end) like
        :func:`repro.align.blast.extension.extend_ungapped`.
        """
        options = self.options
        rows = options.matrix.rows
        word_size = options.word_size
        x_drop = options.x_drop_ungapped
        msize = options.matrix.size

        r_run = builder.ialu("ext.init", (r_seed,))

        def emit_step(direction: str, q_pos: int, s_pos: int, stop: bool) -> None:
            nonlocal r_run
            r_s = builder.iload(
                f"ext.{direction}.s", subject_base + s_pos, (r_run,), size=1
            )
            r_row = builder.ialu(f"ext.{direction}.row", (r_s,))
            r_m = builder.iload(
                f"ext.{direction}.m",
                matrix_base + (q[q_pos] * msize + s[s_pos]) * 2,
                (r_row,),
                size=2,
            )
            r_run = builder.ialu(f"ext.{direction}.add", (r_run, r_m))
            r_ptr2 = builder.ialu(f"ext.{direction}.ptr", (r_run,))
            r_cmp = builder.ialu(f"ext.{direction}.cmp", (r_run, r_ptr2))
            builder.ctrl(f"ext.{direction}.br", taken=not stop, sources=(r_cmp,))

        # Seed word score.
        score = 0
        for offset in range(word_size):
            score += rows[q[query_offset + offset]][s[subject_offset + offset]]
            emit_step("seed", query_offset + offset, subject_offset + offset, False)

        # Right extension.
        best = score
        right = 0
        running = score
        q0, s0 = query_offset + word_size, subject_offset + word_size
        limit = min(len(q) - q0, len(s) - s0)
        for step in range(limit):
            running += rows[q[q0 + step]][s[s0 + step]]
            stop = best - running > x_drop
            if running > best:
                best = running
                right = step + 1
            emit_step("right", q0 + step, s0 + step, stop)
            if stop:
                break

        # Left extension.
        total_best = best
        running = best
        limit = min(query_offset, subject_offset)
        for step in range(1, limit + 1):
            running += rows[q[query_offset - step]][s[subject_offset - step]]
            stop = total_best - running > x_drop
            if running > total_best:
                total_best = running
            emit_step("left", query_offset - step, subject_offset - step, stop)
            if stop:
                break

        return total_best, subject_offset + word_size + right
