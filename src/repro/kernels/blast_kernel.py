"""Traced NCBI-BLAST kernel: word scan, two-hit seeds, extensions.

Mirrors paper listing 1's character: the scan loop reads packed
database residues, probes a compact presence vector, and — on a hit —
chases pointers through the big lookup-cell table, the per-diagonal
last-hit array, and the query-offset buckets.  Those scattered accesses
over a table that does not fit in small L1 caches are exactly the
memory behaviour behind BLAST's mm_dl1/mm_dl2 traumas in the paper;
the extension stages add matrix-lookup ALU chains (rg_fix).

Scores equal :class:`repro.align.blast.engine.BlastEngine`'s (tested).
"""

from __future__ import annotations

from repro.align.blast.engine import BlastOptions
from repro.align.blast.wordfinder import LookupTable, word_index
from repro.bio.database import SequenceDatabase
from repro.bio.sequence import Sequence
from repro.isa.builder import TraceBuilder
from repro.kernels.base import TracedKernel
from repro.kernels.dp_emit import banded_dp_traced


class BlastKernel(TracedKernel):
    """Instrumented BLASTP database scan."""

    name = "blast"

    def __init__(self, options: BlastOptions = BlastOptions()) -> None:
        self.options = options

    def execute(
        self,
        builder: TraceBuilder,
        query: Sequence,
        database: SequenceDatabase,
        scores: dict[str, int],
    ) -> None:
        options = self.options
        q = query.codes
        m = len(q)
        word_size = options.word_size
        window = options.window

        lookup_query = query
        if options.mask_query:
            from repro.bio.complexity import mask_sequence

            lookup_query = mask_sequence(query)
        lookup = LookupTable(
            lookup_query.codes,
            matrix=options.matrix,
            word_size=word_size,
            threshold=options.threshold,
        )

        # Data layout mirroring NCBI BLAST's structures: a compact
        # presence vector (1 bit/word), the cell table (8 B/word), the
        # bucket area holding query offsets, the matrix, the diagonal
        # last-hit array, and the streamed database.
        table_words = len(lookup)
        pv_base = builder.alloc("presence", table_words // 8 + 8)
        cells_base = builder.alloc("cells", table_words * 8)
        buckets_base = builder.alloc("buckets", max(lookup.entry_count, 1) * 4)
        matrix_base = builder.alloc("matrix", options.matrix.size**2 * 2)
        query_base = builder.alloc("query", max(m, 1))
        longest = max((len(s) for s in database), default=0)
        diag_base = builder.alloc("diag", (m + longest) * 4)
        profile_base = builder.alloc("profile", options.matrix.size * m * 2)
        row_base = builder.alloc("dp_rows", (m + 1) * 8)
        db_base = builder.alloc("db", database.residue_count)

        # Bucket offsets per word index (for address generation).
        bucket_offset: dict[int, int] = {}
        cursor = 0
        for index in range(table_words):
            positions = lookup.lookup(index)
            if positions:
                bucket_offset[index] = cursor
                cursor += len(positions)

        db_cursor = db_base
        for subject in database:
            s = subject.codes
            n = len(s)
            subject_base = db_cursor
            db_cursor += n

            r_sub = builder.ialu("drv.subj.setup")
            builder.other("drv.subj.misc", (r_sub,))

            best = 0
            bias = m - 1
            last_hit = [-(10**9)] * (bias + max(n, 1))
            extended_until: dict[int, int] = {}

            r_ptr = r_sub
            for so in range(max(0, n - word_size + 1)):
                index = word_index(s, so, word_size)
                positions = lookup.lookup(index)

                # Scan step: packed residue read, word index update,
                # presence-vector probe (paper listing 1 territory).
                r_byte = builder.iload(
                    "scan.readdb", subject_base + so, (r_ptr,), size=1
                )
                r_ptr = builder.ialu("scan.unpack1", (r_byte, r_ptr))
                r_idx = builder.ialu("scan.unpack2", (r_byte,))
                r_idx = builder.ialu("scan.unpack3", (r_idx,))
                r_idx = builder.ialu("scan.index", (r_idx,))
                r_pvaddr = builder.ialu("scan.pv_addr", (r_idx,))
                r_pv = builder.iload(
                    "scan.pv", pv_base + (max(index, 0) >> 3), (r_pvaddr,), size=4
                )
                r_bit = builder.ialu("scan.pv_test", (r_pv, r_idx))
                builder.ctrl(
                    "scan.br_hit", taken=bool(positions), sources=(r_bit,)
                )
                if so % 2 == 1:
                    builder.ctrl("scan.loop", taken=so + 1 < n, backward=True)
                if not positions:
                    continue

                # Hit: fetch the cell entry, then walk the bucket.
                r_cell = builder.iload(
                    "hit.cell", cells_base + index * 8, (r_idx,), size=8
                )
                base = bucket_offset[index]
                r_walk = r_cell
                for bucket_pos, qo in enumerate(positions):
                    r_qo = builder.iload(
                        "hit.bucket",
                        buckets_base + (base + bucket_pos) * 4,
                        (r_walk,),
                        size=4,
                    )
                    r_diag = builder.ialu("hit.diag", (r_qo,))
                    r_diag = builder.ialu("hit.diag_addr", (r_diag,))
                    diagonal = so - qo + bias
                    previous = last_hit[diagonal]
                    distance = so - previous
                    r_last = builder.iload(
                        "hit.lasthit", diag_base + diagonal * 4, (r_diag,), size=4
                    )
                    r_dist = builder.ialu("hit.dist", (r_last,))
                    two_hit = word_size <= distance <= window
                    builder.ctrl("hit.br_two", taken=two_hit, sources=(r_dist,))
                    if two_hit or distance > window:
                        last_hit[diagonal] = so
                        builder.istore(
                            "hit.update", diag_base + diagonal * 4, (r_diag,), size=4
                        )
                    builder.ctrl(
                        "hit.bucket_loop",
                        taken=bucket_pos + 1 < len(positions),
                        backward=True,
                    )
                    if not two_hit:
                        continue
                    real_diag = so - qo
                    if extended_until.get(real_diag, -1) >= so:
                        continue

                    score, subject_end = self._extend_ungapped_traced(
                        builder, q, s, qo, so, matrix_base, query_base,
                        subject_base, r_diag
                    )
                    extended_until[real_diag] = subject_end
                    if score >= options.gap_trigger:
                        score = banded_dp_traced(
                            builder,
                            "gapx",
                            q,
                            s,
                            center=real_diag,
                            width=options.gapped_band,
                            matrix=options.matrix,
                            gaps=options.gaps,
                            profile_base=profile_base,
                            row_base=row_base,
                            subject_base=subject_base,
                            r_ctx=r_diag,
                        )
                    if score > best:
                        best = score

            r_hist = builder.ialu("drv.hist.bin", (r_sub,))
            builder.istore("drv.hist.store", diag_base, (r_hist,), size=4)
            scores[subject.identifier] = best

    def _extend_ungapped_traced(
        self,
        builder: TraceBuilder,
        q,
        s,
        query_offset: int,
        subject_offset: int,
        matrix_base: int,
        query_base: int,
        subject_base: int,
        r_seed: int,
    ) -> tuple[int, int]:
        """X-drop ungapped extension with per-residue emission.

        Returns (score, subject_end) like
        :func:`repro.align.blast.extension.extend_ungapped`.
        """
        options = self.options
        rows = options.matrix.rows
        word_size = options.word_size
        x_drop = options.x_drop_ungapped
        msize = options.matrix.size

        r_run = builder.ialu("ext.init", (r_seed,))

        def emit_step(direction: str, q_pos: int, s_pos: int, stop: bool) -> None:
            nonlocal r_run
            r_s = builder.iload(
                f"ext.{direction}.s", subject_base + s_pos, (r_run,), size=1
            )
            r_row = builder.ialu(f"ext.{direction}.row", (r_s,))
            r_m = builder.iload(
                f"ext.{direction}.m",
                matrix_base + (q[q_pos] * msize + s[s_pos]) * 2,
                (r_row,),
                size=2,
            )
            r_run = builder.ialu(f"ext.{direction}.add", (r_run, r_m))
            r_ptr2 = builder.ialu(f"ext.{direction}.ptr", (r_run,))
            r_cmp = builder.ialu(f"ext.{direction}.cmp", (r_run, r_ptr2))
            builder.ctrl(f"ext.{direction}.br", taken=not stop, sources=(r_cmp,))

        # Seed word score.
        score = 0
        for offset in range(word_size):
            score += rows[q[query_offset + offset]][s[subject_offset + offset]]
            emit_step("seed", query_offset + offset, subject_offset + offset, False)

        # Right extension.
        best = score
        right = 0
        running = score
        q0, s0 = query_offset + word_size, subject_offset + word_size
        limit = min(len(q) - q0, len(s) - s0)
        for step in range(limit):
            running += rows[q[q0 + step]][s[s0 + step]]
            stop = best - running > x_drop
            if running > best:
                best = running
                right = step + 1
            emit_step("right", q0 + step, s0 + step, stop)
            if stop:
                break

        # Left extension.
        total_best = best
        running = best
        limit = min(query_offset, subject_offset)
        for step in range(1, limit + 1):
            running += rows[q[query_offset - step]][s[subject_offset - step]]
            stop = total_best - running > x_drop
            if running > total_best:
                total_best = running
            emit_step("left", query_offset - step, subject_offset - step, stop)
            if stop:
                break

        return total_best, subject_offset + word_size + right
