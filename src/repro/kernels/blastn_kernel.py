"""Traced nucleotide BLAST kernel — paper listing 1, literally.

Listing 1 shows ``BlastNtWordFinder`` extending a hit leftward by
unpacking bases out of the 2-bit compressed database
(``READDB_UNPACK_BASE_4(p) != *--q``).  This kernel traces exactly that
code path: the scan loop loads one packed *byte* and unpacks four
bases from it with shift/mask ALU ops, maintains the rolling word, and
probes the exact-word lookup table; extensions compare unpacked bases
one at a time through the same macros.

Scores equal :class:`repro.align.blast.nucleotide.BlastnEngine`'s
(tested).  The kernel is an extension beyond the paper's evaluated
suite (Table I runs blastp), provided because listing 1 itself is
nucleotide code.
"""

from __future__ import annotations

from repro.align.blast.nucleotide import BlastnEngine, BlastnOptions
from repro.bio.database import SequenceDatabase
from repro.bio.packed import BASES_PER_BYTE, PackedSequence, unpack_base
from repro.bio.sequence import Sequence
from repro.isa.builder import TraceBuilder
from repro.kernels.base import TracedKernel


class BlastnKernel(TracedKernel):
    """Instrumented blastn scan over packed subjects."""

    name = "blastn"

    def __init__(self, options: BlastnOptions = BlastnOptions()) -> None:
        self.options = options

    def execute(
        self,
        builder: TraceBuilder,
        query: Sequence,
        database: SequenceDatabase,
        scores: dict[str, int],
    ) -> None:
        options = self.options
        engine = BlastnEngine(query, options)
        word_size = options.word_size

        table_base = builder.alloc("table", (4**word_size // 8) * 8)
        buckets_base = builder.alloc("buckets", max(len(query), 1) * 4)
        longest = max((len(s) for s in database), default=0)
        diag_base = builder.alloc("diag", (len(query) + longest + 1) * 4)
        query_base = builder.alloc("query", max(len(query), 1))
        db_base = builder.alloc("db", database.residue_count // 4 + 8)

        db_cursor = db_base
        for subject in database:
            packed = PackedSequence.from_sequence(subject)
            subject_base = db_cursor
            db_cursor += packed.packed_bytes

            r_sub = builder.ialu("drv.subj.setup")
            builder.other("drv.subj.misc", (r_sub,))

            best = self._traced_scan(
                builder, engine, packed,
                table_base, buckets_base, diag_base, query_base,
                subject_base, r_sub,
            )
            scores[subject.identifier] = best

    def _traced_scan(
        self,
        builder: TraceBuilder,
        engine: BlastnEngine,
        packed: PackedSequence,
        table_base: int,
        buckets_base: int,
        diag_base: int,
        query_base: int,
        subject_base: int,
        r_ctx: int,
    ) -> int:
        """Replicate BlastnEngine.score_subject with emission."""
        options = self.options
        word_size = options.word_size
        mask = (1 << (2 * word_size)) - 1
        subject_text = packed.unpack().text
        ambiguous = set(packed.ambiguous)
        base_code = {"A": 0, "C": 1, "G": 2, "T": 3}

        best = 0
        seen_diagonals: dict[int, int] = {}
        word = 0
        valid = 0
        position = 0
        r_word = builder.ialu("scan.word_init", (r_ctx,))
        for byte_index, byte in enumerate(packed.packed):
            # One compressed byte feeds four scan steps.
            r_byte = builder.iload(
                "scan.loadp", subject_base + byte_index, (r_word,), size=1
            )
            for slot in range(BASES_PER_BYTE):
                if position >= packed.length:
                    break
                engine.words_scanned += 1
                # READDB_UNPACK_BASE: shift + mask.
                r_base = builder.ialu("scan.unpack_shift", (r_byte,))
                r_base = builder.ialu("scan.unpack_mask", (r_base,))
                if position in ambiguous:
                    builder.ctrl("scan.br_ambig", taken=True, sources=(r_base,))
                    valid = 0
                    word = 0
                    position += 1
                    continue
                base = unpack_base(byte, slot)
                word = ((word << 2) | base_code[base]) & mask
                r_word = builder.ialu("scan.word_roll", (r_word, r_base))
                valid += 1
                position += 1
                if valid < word_size:
                    builder.ctrl("scan.br_short", taken=True, sources=(r_word,))
                    continue
                hits = engine.lookup.lookup(word)
                r_probe = builder.iload(
                    "scan.table",
                    table_base + (word % (4**word_size // 8)),
                    (r_word,),
                    size=4,
                )
                r_test = builder.ialu("scan.test", (r_probe,))
                builder.ctrl("scan.br_hit", taken=bool(hits), sources=(r_test,))
                if not hits:
                    continue
                subject_offset = position - word_size
                for bucket_pos, query_offset in enumerate(hits):
                    engine.word_hits += 1
                    r_qo = builder.iload(
                        "hit.bucket",
                        buckets_base + query_offset * 4,
                        (r_test,),
                        size=4,
                    )
                    diagonal = subject_offset - query_offset
                    r_diag = builder.ialu("hit.diag", (r_qo,))
                    r_seen = builder.iload(
                        "hit.seen",
                        diag_base + ((diagonal + len(engine.query.text)) * 4),
                        (r_diag,),
                        size=4,
                    )
                    repeat = seen_diagonals.get(diagonal, -1) >= subject_offset
                    builder.ctrl("hit.br_seen", taken=repeat, sources=(r_seen,))
                    builder.ctrl(
                        "hit.bucket_loop",
                        taken=bucket_pos + 1 < len(hits),
                        backward=True,
                    )
                    if repeat:
                        continue
                    engine.extensions += 1
                    score = self._traced_extension(
                        builder, engine, subject_text, query_offset,
                        subject_offset, query_base, subject_base, r_diag,
                    )
                    seen_diagonals[diagonal] = subject_offset + word_size
                    builder.istore(
                        "hit.update",
                        diag_base + ((diagonal + len(engine.query.text)) * 4),
                        (r_diag,),
                        size=4,
                    )
                    if score > best:
                        best = score
            builder.ctrl(
                "scan.byte_loop",
                taken=byte_index + 1 < packed.packed_bytes,
                backward=True,
            )
        return best

    def _traced_extension(
        self,
        builder: TraceBuilder,
        engine: BlastnEngine,
        subject_text: str,
        query_offset: int,
        subject_offset: int,
        query_base: int,
        subject_base: int,
        r_seed: int,
    ) -> int:
        """Ungapped extension with per-base unpack emission."""
        options = self.options
        query_text = engine.query.text
        word_size = options.word_size
        score = options.match * word_size
        r_run = builder.ialu("ext.init", (r_seed,))

        def emit_step(direction: str, q_pos: int, s_pos: int, stop: bool) -> None:
            nonlocal r_run
            # p = *(subject0 + s_off ...); unpack; compare with *--q.
            r_p = builder.iload(
                f"ext.{direction}.loadp",
                subject_base + s_pos // BASES_PER_BYTE,
                (r_run,),
                size=1,
            )
            r_b = builder.ialu(f"ext.{direction}.unpack", (r_p,))
            r_q = builder.iload(
                f"ext.{direction}.loadq", query_base + q_pos, (r_run,), size=1
            )
            r_cmp = builder.ialu(f"ext.{direction}.cmp", (r_b, r_q))
            r_run = builder.ialu(f"ext.{direction}.add", (r_run, r_cmp))
            builder.ctrl(f"ext.{direction}.br", taken=not stop, sources=(r_cmp,))

        best = score
        running = score
        q, s = query_offset + word_size, subject_offset + word_size
        limit = min(len(query_text) - q, len(subject_text) - s)
        for step in range(limit):
            running += (
                options.match
                if query_text[q + step] == subject_text[s + step]
                else options.mismatch
            )
            stop = best - running > options.x_drop
            if running > best:
                best = running
            emit_step("right", q + step, s + step, stop)
            if stop:
                break

        running = best
        total_best = best
        limit = min(query_offset, subject_offset)
        for step in range(1, limit + 1):
            running += (
                options.match
                if query_text[query_offset - step]
                == subject_text[subject_offset - step]
                else options.mismatch
            )
            stop = total_best - running > options.x_drop
            if running > total_best:
                total_best = running
            emit_step("left", query_offset - step, subject_offset - step, stop)
            if stop:
                break
        return total_best
