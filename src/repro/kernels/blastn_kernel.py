"""Traced nucleotide BLAST kernel — paper listing 1, literally.

Listing 1 shows ``BlastNtWordFinder`` extending a hit leftward by
unpacking bases out of the 2-bit compressed database
(``READDB_UNPACK_BASE_4(p) != *--q``).  This kernel traces exactly that
code path: the scan loop loads one packed *byte* and unpacks four
bases from it with shift/mask ALU ops, maintains the rolling word, and
probes the exact-word lookup table; extensions compare unpacked bases
one at a time through the same macros.

Scores equal :class:`repro.align.blast.nucleotide.BlastnEngine`'s
(tested).  The kernel is an extension beyond the paper's evaluated
suite (Table I runs blastp), provided because listing 1 itself is
nucleotide code.
"""

from __future__ import annotations


from repro.align.blast.nucleotide import BlastnEngine, BlastnOptions
from repro.bio.database import SequenceDatabase
from repro.bio.packed import BASES_PER_BYTE, PackedSequence, unpack_base
from repro.bio.sequence import Sequence
from repro.isa.builder import TraceBuilder
from repro.isa.emit import Carry, EmitTemplate, Reg, Slot, SlotSpec
from repro.kernels.base import TracedKernel
from repro.isa.opcodes import OpClass

#: Packed-scan block over *positions*: the byte load is gated to every
#: fourth iteration, the probe slots to the ambiguity/short outcomes,
#: and the byte-close branch to the byte's final position.  Stamped in
#: hit-to-hit runs like the BLAST scan.
_SCAN_TEMPLATE = EmitTemplate("blastn.scan", [
    SlotSpec(OpClass.ILOAD, "scan.loadp", gate="first",
             sources=(Carry(4, init=Reg("w0")),), addr="pa", size=1),
    SlotSpec(OpClass.IALU, "scan.unpack_shift",
             sources=(Carry(0, lag=0, init=Reg("b0")),)),
    SlotSpec(OpClass.IALU, "scan.unpack_mask", sources=(Slot(1),)),
    SlotSpec(OpClass.CTRL, "scan.br_ambig", gate="ambig", taken=True,
             sources=(Slot(2),)),
    SlotSpec(OpClass.IALU, "scan.word_roll", gate="ok",
             sources=(Carry(4, init=Reg("w0")), Slot(2))),
    SlotSpec(OpClass.CTRL, "scan.br_short", gate="short", taken=True,
             sources=(Slot(4),)),
    SlotSpec(OpClass.ILOAD, "scan.table", gate="probe",
             sources=(Slot(4),), addr="ta", size=4),
    SlotSpec(OpClass.IALU, "scan.test", gate="probe", sources=(Slot(6),)),
    SlotSpec(OpClass.CTRL, "scan.br_hit", gate="probe", taken="hitk",
             sources=(Slot(7),)),
    SlotSpec(OpClass.CTRL, "scan.byte_loop", gate="last", taken="bcont",
             backward=True),
])

#: Per-direction base-compare extension blocks (sites embed direction).
_EXT_TEMPLATES: dict[str, EmitTemplate] = {}


def _ext_template(direction: str) -> EmitTemplate:
    template = _EXT_TEMPLATES.get(direction)
    if template is not None:
        return template
    template = EmitTemplate(f"blastn.ext.{direction}", [
        SlotSpec(OpClass.ILOAD, f"ext.{direction}.loadp",
                 sources=(Carry(4, init=Reg("run")),), addr="pa", size=1),
        SlotSpec(OpClass.IALU, f"ext.{direction}.unpack",
                 sources=(Slot(0),)),
        SlotSpec(OpClass.ILOAD, f"ext.{direction}.loadq",
                 sources=(Carry(4, init=Reg("run")),), addr="qa", size=1),
        SlotSpec(OpClass.IALU, f"ext.{direction}.cmp",
                 sources=(Slot(1), Slot(2))),
        SlotSpec(OpClass.IALU, f"ext.{direction}.add",
                 sources=(Carry(4, init=Reg("run")), Slot(3))),
        SlotSpec(OpClass.CTRL, f"ext.{direction}.br", taken="go",
                 sources=(Slot(3),)),
    ])
    _EXT_TEMPLATES[direction] = template
    return template


class BlastnKernel(TracedKernel):
    """Instrumented blastn scan over packed subjects."""

    name = "blastn"

    def __init__(self, options: BlastnOptions = BlastnOptions()) -> None:
        self.options = options

    def execute(
        self,
        builder: TraceBuilder,
        query: Sequence,
        database: SequenceDatabase,
        scores: dict[str, int],
    ) -> None:
        options = self.options
        engine = BlastnEngine(query, options)
        word_size = options.word_size

        table_base = builder.alloc("table", (4**word_size // 8) * 8)
        buckets_base = builder.alloc("buckets", max(len(query), 1) * 4)
        longest = max((len(s) for s in database), default=0)
        diag_base = builder.alloc("diag", (len(query) + longest + 1) * 4)
        query_base = builder.alloc("query", max(len(query), 1))
        db_base = builder.alloc("db", database.residue_count // 4 + 8)

        db_cursor = db_base
        for subject in database:
            packed = PackedSequence.from_sequence(subject)
            subject_base = db_cursor
            db_cursor += packed.packed_bytes

            r_sub = builder.ialu("drv.subj.setup")
            builder.other("drv.subj.misc", (r_sub,))

            best = self._traced_scan(
                builder, engine, packed,
                table_base, buckets_base, diag_base, query_base,
                subject_base, r_sub,
            )
            scores[subject.identifier] = best

    def _traced_scan(
        self,
        builder: TraceBuilder,
        engine: BlastnEngine,
        packed: PackedSequence,
        table_base: int,
        buckets_base: int,
        diag_base: int,
        query_base: int,
        subject_base: int,
        r_ctx: int,
    ) -> int:
        """Replicate BlastnEngine.score_subject with emission."""
        scan = (
            self._scan_templated
            if builder.use_templates
            else self._scan_scalar
        )
        return scan(
            builder, engine, packed, table_base, buckets_base, diag_base,
            query_base, subject_base, r_ctx,
        )

    def _scan_scalar(
        self,
        builder: TraceBuilder,
        engine: BlastnEngine,
        packed: PackedSequence,
        table_base: int,
        buckets_base: int,
        diag_base: int,
        query_base: int,
        subject_base: int,
        r_ctx: int,
    ) -> int:
        """Per-call scalar scan (the ``REPRO_EMIT=scalar`` path)."""
        options = self.options
        word_size = options.word_size
        mask = (1 << (2 * word_size)) - 1
        subject_text = packed.unpack().text
        ambiguous = set(packed.ambiguous)
        base_code = {"A": 0, "C": 1, "G": 2, "T": 3}

        best = 0
        seen_diagonals: dict[int, int] = {}
        word = 0
        valid = 0
        position = 0
        r_word = builder.ialu("scan.word_init", (r_ctx,))
        for byte_index, byte in enumerate(packed.packed):
            # One compressed byte feeds four scan steps.
            r_byte = builder.iload(
                "scan.loadp", subject_base + byte_index, (r_word,), size=1
            )
            for slot in range(BASES_PER_BYTE):
                if position >= packed.length:
                    break
                engine.words_scanned += 1
                # READDB_UNPACK_BASE: shift + mask.
                r_base = builder.ialu("scan.unpack_shift", (r_byte,))
                r_base = builder.ialu("scan.unpack_mask", (r_base,))
                if position in ambiguous:
                    builder.ctrl("scan.br_ambig", taken=True, sources=(r_base,))
                    valid = 0
                    word = 0
                    position += 1
                    continue
                base = unpack_base(byte, slot)
                word = ((word << 2) | base_code[base]) & mask
                r_word = builder.ialu("scan.word_roll", (r_word, r_base))
                valid += 1
                position += 1
                if valid < word_size:
                    builder.ctrl("scan.br_short", taken=True, sources=(r_word,))
                    continue
                hits = engine.lookup.lookup(word)
                r_probe = builder.iload(
                    "scan.table",
                    table_base + (word % (4**word_size // 8)),
                    (r_word,),
                    size=4,
                )
                r_test = builder.ialu("scan.test", (r_probe,))
                builder.ctrl("scan.br_hit", taken=bool(hits), sources=(r_test,))
                if not hits:
                    continue
                best = self._bucket_walk(
                    builder, engine, subject_text, hits,
                    position - word_size, seen_diagonals, best,
                    buckets_base, diag_base, query_base, subject_base,
                    r_test,
                )
            builder.ctrl(
                "scan.byte_loop",
                taken=byte_index + 1 < packed.packed_bytes,
                backward=True,
            )
        return best

    def _scan_templated(
        self,
        builder: TraceBuilder,
        engine: BlastnEngine,
        packed: PackedSequence,
        table_base: int,
        buckets_base: int,
        diag_base: int,
        query_base: int,
        subject_base: int,
        r_ctx: int,
    ) -> int:
        """Template-stamped packed scan, flushed run-by-run at hits.

        The stamp iterates per unpacked *position*; the hit's bucket
        walk interrupts the stream before the byte-close branch, so a
        hit flush suppresses that iteration's ``scan.byte_loop`` slot
        and re-emits it scalar after the walk when the hit sits on the
        byte's final position.
        """
        options = self.options
        word_size = options.word_size
        mask = (1 << (2 * word_size)) - 1
        subject_text = packed.unpack().text
        ambiguous = set(packed.ambiguous)
        base_code = {"A": 0, "C": 1, "G": 2, "T": 3}
        table_mod = 4**word_size // 8
        length = packed.length
        packed_bytes = packed.packed_bytes

        best = 0
        seen_diagonals: dict[int, int] = {}
        word = 0
        valid = 0
        r_init = builder.ialu("scan.word_init", (r_ctx,))
        state = {"w0": r_init, "b0": r_init, "start": 0}
        pa: list[int] = []
        first: list[bool] = []
        ambig_m: list[bool] = []
        ok: list[bool] = []
        short_m: list[bool] = []
        probe: list[bool] = []
        hitk: list[bool] = []
        ta: list[int] = []
        last_m: list[bool] = []
        bcont: list[bool] = []

        def flush(upto: int):
            count = upto - state["start"]
            if count <= 0:
                return None
            result = builder.stamp(_SCAN_TEMPLATE, count, {
                "w0": state["w0"],
                "b0": state["b0"],
                "pa": pa,
                "ta": ta,
                "first": first,
                "ambig": ambig_m,
                "ok": ok,
                "short": short_m,
                "probe": probe,
                "hitk": hitk,
                "last": last_m,
                "bcont": bcont,
            })
            state["w0"] = result.last(4, default=state["w0"])
            state["b0"] = result.last(0, default=state["b0"])
            state["start"] = upto
            for buffer in (pa, first, ambig_m, ok, short_m, probe, hitk,
                           ta, last_m, bcont):
                buffer.clear()
            return result

        for position in range(length):
            byte_index = position // BASES_PER_BYTE
            slot = position % BASES_PER_BYTE
            byte = packed.packed[byte_index]
            byte_last = slot == BASES_PER_BYTE - 1 or position == length - 1
            engine.words_scanned += 1
            pa.append(subject_base + byte_index)
            first.append(slot == 0)
            last_m.append(byte_last)
            bcont.append(byte_index + 1 < packed_bytes)

            if position in ambiguous:
                valid = 0
                word = 0
                ambig_m.append(True)
                ok.append(False)
                short_m.append(False)
                probe.append(False)
                hitk.append(False)
                ta.append(0)
                continue
            ambig_m.append(False)
            ok.append(True)
            base = unpack_base(byte, slot)
            word = ((word << 2) | base_code[base]) & mask
            valid += 1
            if valid < word_size:
                short_m.append(True)
                probe.append(False)
                hitk.append(False)
                ta.append(0)
                continue
            short_m.append(False)
            probe.append(True)
            ta.append(table_base + (word % table_mod))
            hits = engine.lookup.lookup(word)
            hitk.append(bool(hits))
            if not hits:
                continue

            # Flush through the hit position, byte-close suppressed.
            last_m[-1] = False
            result = flush(position + 1)
            r_test = result.last(7, default=state["w0"])
            best = self._bucket_walk(
                builder, engine, subject_text, hits,
                position + 1 - word_size, seen_diagonals, best,
                buckets_base, diag_base, query_base, subject_base,
                r_test,
            )
            if byte_last:
                builder.ctrl(
                    "scan.byte_loop",
                    taken=byte_index + 1 < packed_bytes,
                    backward=True,
                )
        flush(length)
        return best

    def _bucket_walk(
        self,
        builder: TraceBuilder,
        engine: BlastnEngine,
        subject_text: str,
        hits,
        subject_offset: int,
        seen_diagonals: dict[int, int],
        best: int,
        buckets_base: int,
        diag_base: int,
        query_base: int,
        subject_base: int,
        r_test: int,
    ) -> int:
        """Bucket walk + extensions for one word hit (shared verbatim)."""
        word_size = self.options.word_size
        for bucket_pos, query_offset in enumerate(hits):
            engine.word_hits += 1
            r_qo = builder.iload(
                "hit.bucket",
                buckets_base + query_offset * 4,
                (r_test,),
                size=4,
            )
            diagonal = subject_offset - query_offset
            r_diag = builder.ialu("hit.diag", (r_qo,))
            r_seen = builder.iload(
                "hit.seen",
                diag_base + ((diagonal + len(engine.query.text)) * 4),
                (r_diag,),
                size=4,
            )
            repeat = seen_diagonals.get(diagonal, -1) >= subject_offset
            builder.ctrl("hit.br_seen", taken=repeat, sources=(r_seen,))
            builder.ctrl(
                "hit.bucket_loop",
                taken=bucket_pos + 1 < len(hits),
                backward=True,
            )
            if repeat:
                continue
            engine.extensions += 1
            score = self._traced_extension(
                builder, engine, subject_text, query_offset,
                subject_offset, query_base, subject_base, r_diag,
            )
            seen_diagonals[diagonal] = subject_offset + word_size
            builder.istore(
                "hit.update",
                diag_base + ((diagonal + len(engine.query.text)) * 4),
                (r_diag,),
                size=4,
            )
            if score > best:
                best = score
        return best

    def _extension_templated(
        self,
        builder: TraceBuilder,
        engine: BlastnEngine,
        subject_text: str,
        query_offset: int,
        subject_offset: int,
        query_base: int,
        subject_base: int,
        r_seed: int,
    ) -> int:
        """Template-stamped base-compare extension (one stamp/direction)."""
        options = self.options
        query_text = engine.query.text
        word_size = options.word_size
        score = options.match * word_size
        state = {"run": builder.ialu("ext.init", (r_seed,))}

        def stamp_direction(direction: str, steps) -> None:
            count = len(steps)
            if not count:
                return
            result = builder.stamp(_ext_template(direction), count, {
                "run": state["run"],
                "pa": [subject_base + sp // BASES_PER_BYTE
                       for _, sp, _ in steps],
                "qa": [query_base + qp for qp, _, _ in steps],
                "go": [not stop for _, _, stop in steps],
            })
            state["run"] = result.last(4, default=state["run"])

        best = score
        running = score
        q, s = query_offset + word_size, subject_offset + word_size
        limit = min(len(query_text) - q, len(subject_text) - s)
        steps: list[tuple[int, int, bool]] = []
        for step in range(limit):
            running += (
                options.match
                if query_text[q + step] == subject_text[s + step]
                else options.mismatch
            )
            stop = best - running > options.x_drop
            if running > best:
                best = running
            steps.append((q + step, s + step, stop))
            if stop:
                break
        stamp_direction("right", steps)

        running = best
        total_best = best
        limit = min(query_offset, subject_offset)
        steps = []
        for step in range(1, limit + 1):
            running += (
                options.match
                if query_text[query_offset - step]
                == subject_text[subject_offset - step]
                else options.mismatch
            )
            stop = total_best - running > options.x_drop
            if running > total_best:
                total_best = running
            steps.append(
                (query_offset - step, subject_offset - step, stop)
            )
            if stop:
                break
        stamp_direction("left", steps)
        return total_best

    def _traced_extension(
        self,
        builder: TraceBuilder,
        engine: BlastnEngine,
        subject_text: str,
        query_offset: int,
        subject_offset: int,
        query_base: int,
        subject_base: int,
        r_seed: int,
    ) -> int:
        """Ungapped extension; dispatches on the builder's emit mode."""
        extend = (
            self._extension_templated
            if builder.use_templates
            else self._extension_scalar
        )
        return extend(
            builder, engine, subject_text, query_offset, subject_offset,
            query_base, subject_base, r_seed,
        )

    def _extension_scalar(
        self,
        builder: TraceBuilder,
        engine: BlastnEngine,
        subject_text: str,
        query_offset: int,
        subject_offset: int,
        query_base: int,
        subject_base: int,
        r_seed: int,
    ) -> int:
        """Ungapped extension with per-base unpack emission."""
        options = self.options
        query_text = engine.query.text
        word_size = options.word_size
        score = options.match * word_size
        r_run = builder.ialu("ext.init", (r_seed,))

        def emit_step(direction: str, q_pos: int, s_pos: int, stop: bool) -> None:
            nonlocal r_run
            # p = *(subject0 + s_off ...); unpack; compare with *--q.
            r_p = builder.iload(
                f"ext.{direction}.loadp",
                subject_base + s_pos // BASES_PER_BYTE,
                (r_run,),
                size=1,
            )
            r_b = builder.ialu(f"ext.{direction}.unpack", (r_p,))
            r_q = builder.iload(
                f"ext.{direction}.loadq", query_base + q_pos, (r_run,), size=1
            )
            r_cmp = builder.ialu(f"ext.{direction}.cmp", (r_b, r_q))
            r_run = builder.ialu(f"ext.{direction}.add", (r_run, r_cmp))
            builder.ctrl(f"ext.{direction}.br", taken=not stop, sources=(r_cmp,))

        best = score
        running = score
        q, s = query_offset + word_size, subject_offset + word_size
        limit = min(len(query_text) - q, len(subject_text) - s)
        for step in range(limit):
            running += (
                options.match
                if query_text[q + step] == subject_text[s + step]
                else options.mismatch
            )
            stop = best - running > options.x_drop
            if running > best:
                best = running
            emit_step("right", q + step, s + step, stop)
            if stop:
                break

        running = best
        total_best = best
        limit = min(query_offset, subject_offset)
        for step in range(1, limit + 1):
            running += (
                options.match
                if query_text[query_offset - step]
                == subject_text[subject_offset - step]
                else options.mismatch
            )
            stop = total_best - running > options.x_drop
            if running > total_best:
                total_best = running
            emit_step("left", query_offset - step, subject_offset - step, stop)
            if stop:
                break
        return total_best
