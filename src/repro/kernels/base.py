"""Base machinery for instrumented (traced) workload kernels.

A traced kernel runs one of the paper's five applications on real input
while emitting its dynamic instruction stream into a
:class:`repro.isa.TraceBuilder`.  Each kernel:

* computes the *real* algorithm result (scores), which the test suite
  checks against the reference implementations in :mod:`repro.align`;
* emits instructions whose dependencies, addresses, and branch outcomes
  come from that same execution, so micro-architectural behaviour is
  data-driven rather than scripted;
* honours an instruction budget — when the budget is hit mid-database,
  the truncated trace is returned (the paper's traces are likewise
  windows of much longer executions).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.bio.database import SequenceDatabase
from repro.bio.sequence import Sequence
from repro.isa.builder import TraceBudgetExceededError, TraceBuilder
from repro.isa.trace import InstructionMix, Trace


@dataclass
class KernelRun:
    """Outcome of one traced kernel execution."""

    kernel_name: str
    mix: InstructionMix
    trace: Trace | None
    scores: dict[str, int] = field(default_factory=dict)
    truncated: bool = False
    subjects_processed: int = 0

    @property
    def instruction_count(self) -> int:
        """Total dynamic instructions emitted."""
        return self.mix.total


class TracedKernel(abc.ABC):
    """One instrumented application (Table I row)."""

    #: Registry/display name, e.g. ``"ssearch34"``.
    name: str = "abstract"

    @abc.abstractmethod
    def execute(
        self,
        builder: TraceBuilder,
        query: Sequence,
        database: SequenceDatabase,
        scores: dict[str, int],
    ) -> None:
        """Run the application, emitting instructions into ``builder``.

        Fills ``scores`` with subject identifier -> score as each
        subject completes (used for correctness checks; partially
        processed subjects are absent when the budget truncates).
        """

    def run(
        self,
        query: Sequence,
        database: SequenceDatabase,
        record: bool = True,
        limit: int | None = None,
        emit_mode: str | None = None,
    ) -> KernelRun:
        """Trace the application over ``database``.

        ``record=False`` counts instructions without materializing them
        (for Table III-scale measurements); ``limit`` truncates the run
        once the instruction budget is reached; ``emit_mode`` overrides
        the process-wide ``REPRO_EMIT`` templated/scalar selection.
        """
        builder = TraceBuilder(
            self.name, record=record, limit=limit, emit_mode=emit_mode
        )
        scores: dict[str, int] = {}
        truncated = False
        try:
            self.execute(builder, query, database, scores)
        except TraceBudgetExceededError:
            truncated = True
        trace = builder.build() if record else None
        return KernelRun(
            kernel_name=self.name,
            mix=builder.mix(),
            trace=trace,
            scores=scores,
            truncated=truncated,
            subjects_processed=len(scores),
        )
