"""Traced SW_vmx128 / SW_vmx256 kernels: anti-diagonal SIMD SW.

Runs the same Wozniak anti-diagonal algorithm as
:func:`repro.align.simd.sw_vmx.sw_score_vmx` (scores are bit-identical,
tested) while emitting the Altivec-style operation stream: per
wavefront step a fixed recipe of vector loads (profile gather), vector
simple-integer ops (saturating adds/subs/maxes), vector permutes (lane
shifts between neighbouring rows), and scalar address arithmetic — with
loop control only at tile boundaries (listing 3's ``i += 8``/``j += 8``
structure), which is why control instructions are ~2% of the mix.

The 256-bit variant executes half the wavefront steps but each of its
permute and memory operations cracks into two 128-bit micro-ops (the
emulated machine keeps 128-bit data paths, the scenario behind the
paper's Figure 8 "+1 latency" experiment), so its instruction reduction
is well short of 2x — the paper observes the same effect (Table III:
79.0M -> 65.6M).
"""

from __future__ import annotations

import numpy as np

from repro.align.simd.vector import INT16_MIN, VMX128, VMX256, VectorConfig, VectorUnit
from repro.align.types import GapPenalties, PAPER_GAPS
from repro.bio.database import SequenceDatabase
from repro.bio.matrices import BLOSUM62, ScoringMatrix
from repro.bio.sequence import Sequence
from repro.isa.builder import TraceBuilder
from repro.isa.emit import Carry, EmitTemplate, Reg, Slot, SlotSpec
from repro.isa.opcodes import OpClass
from repro.kernels.base import TracedKernel

#: Steps per unrolled inner tile (one back-edge per this many steps).
UNROLL = 2

#: Per-crack-count compiled wavefront-step templates.
_STEP_TEMPLATES: dict[int, EmitTemplate] = {}


def _step_template(cracks: int) -> EmitTemplate:
    """One wavefront step as a template (crack-expanded for 256-bit)."""
    template = _STEP_TEMPLATES.get(cracks)
    if template is not None:
        return template
    alu = OpClass.IALU
    c = cracks
    vload_len = 1 + 2 * (c - 1)
    # Forward slot positions (Carry references point at later slots);
    # asserted against the actual layout as it is built below.
    i_prof1 = 5
    i_prof2 = i_prof1 + vload_len
    i_g1 = i_prof2 + vload_len
    i_g2f = i_g1 + 2 * c - 1
    i_esub1 = i_g2f + 1
    i_emax = i_esub1 + 2
    i_hb = i_esub1 + 3
    i_fshf = i_hb + c + 1
    i_fsff = i_fshf + c
    i_fmax = i_fsff + 2
    i_fb = i_fsff + 3
    i_dadd = i_fb + c + 1
    i_h3 = i_dadd + 3
    i_best = i_dadd + 4

    slots: list[SlotSpec] = []

    def vperm_chain(site: str, sources: tuple) -> None:
        slots.append(SlotSpec(OpClass.VPERM, site, sources=sources))
        for crack in range(1, c):
            slots.append(SlotSpec(
                OpClass.VPERM, f"{site}.c{crack}",
                sources=(Slot(len(slots) - 1),),
            ))

    def vload_chain(site: str, source, base: str, offset: int = 0) -> None:
        slots.append(SlotSpec(
            OpClass.VLOAD, site, sources=(source,),
            base=base, offset=offset, size=16,
        ))
        for crack in range(1, c):
            slots.append(SlotSpec(alu, f"{site}.a{crack}", sources=(source,)))
            slots.append(SlotSpec(
                OpClass.VLOAD, f"{site}.c{crack}",
                sources=(Slot(len(slots) - 1),),
                base=base, offset=offset + 16 * crack, size=16,
            ))

    r_addr = Carry(0, init=Reg("addr"))
    r_vh = Carry(i_h3, init=Reg("vh"))
    slots.append(SlotSpec(alu, "step.addr1", sources=(r_addr,)))
    slots.append(SlotSpec(alu, "step.addr2", sources=(Slot(0),)))
    slots.append(SlotSpec(alu, "step.addr3", sources=(Slot(0),)))
    slots.append(SlotSpec(alu, "step.addr4", sources=(Slot(1),)))
    slots.append(SlotSpec(OpClass.ILOAD, "step.dbload", sources=(Slot(1),),
                          addr="dba", size=1))
    assert len(slots) == i_prof1
    vload_chain("step.prof1", Slot(4), "p1a")
    assert len(slots) == i_prof2
    vload_chain("step.prof2", Slot(4), "p1a", offset=16)
    assert len(slots) == i_g1
    vperm_chain("step.gather1", (Slot(i_prof2 - 1), Slot(i_g1 - 1)))
    vperm_chain("step.gather2", (Slot(i_g1 + c - 1), Reg("qblk")))
    assert len(slots) == i_g2f + 1 == i_esub1
    slots.append(SlotSpec(OpClass.VSIMPLE, "step.e_sub1", sources=(r_vh,)))
    slots.append(SlotSpec(OpClass.VSIMPLE, "step.e_sub2",
                          sources=(Carry(i_emax, init=Reg("ve")),)))
    slots.append(SlotSpec(OpClass.VSIMPLE, "step.e_max",
                          sources=(Slot(i_esub1), Slot(i_esub1 + 1))))
    assert len(slots) == i_hb
    slots.append(SlotSpec(OpClass.ILOAD, "step.hb_load", sources=(Slot(0),),
                          addr="hba", size=2))
    vperm_chain("step.f_shift_h", (r_vh, Slot(i_hb)))
    assert len(slots) == i_fshf
    vperm_chain("step.f_shift_f",
                (Carry(i_fmax, init=Reg("vf")), Slot(i_hb)))
    assert len(slots) == i_fsff
    slots.append(SlotSpec(OpClass.VSIMPLE, "step.f_sub1",
                          sources=(Slot(i_fshf - 1),)))
    slots.append(SlotSpec(OpClass.VSIMPLE, "step.f_sub2",
                          sources=(Slot(i_fsff - 1),)))
    slots.append(SlotSpec(OpClass.VSIMPLE, "step.f_max",
                          sources=(Slot(i_fsff), Slot(i_fsff + 1))))
    assert len(slots) == i_fb
    slots.append(SlotSpec(OpClass.ILOAD, "step.fb_load", sources=(Slot(0),),
                          addr="fba", size=2))
    vperm_chain("step.d_shift",
                (Carry(i_h3, lag=2, init=Reg("vh")), Slot(i_fb)))
    assert len(slots) == i_dadd
    slots.append(SlotSpec(OpClass.VSIMPLE, "step.d_add",
                          sources=(Slot(i_dadd - 1), Slot(i_g2f))))
    slots.append(SlotSpec(OpClass.VSIMPLE, "step.h_max1",
                          sources=(Slot(i_dadd), Slot(i_emax))))
    slots.append(SlotSpec(OpClass.VSIMPLE, "step.h_max2",
                          sources=(Slot(i_fmax),)))
    slots.append(SlotSpec(OpClass.VSIMPLE, "step.h_max3",
                          sources=(Slot(i_dadd + 1), Slot(i_dadd + 2))))
    assert len(slots) == i_h3 + 1 == i_best
    slots.append(SlotSpec(OpClass.VSIMPLE, "step.best",
                          sources=(Carry(i_best, init=Reg("vh")),
                                   Slot(i_h3)), key="best"))
    slots.append(SlotSpec(OpClass.ISTORE, "step.hb_store", gate="stb",
                          sources=(Slot(i_h3), Slot(i_fmax)),
                          addr="sta", size=4))
    slots.append(SlotSpec(alu, "step.tile_cmp", gate="tile",
                          sources=(Slot(0),)))
    slots.append(SlotSpec(OpClass.CTRL, "step.tile_loop", gate="tile",
                          taken="tl", sources=(Slot(len(slots) - 1),),
                          backward=True))
    template = EmitTemplate(f"sw_vmx.step.x{c}", slots)
    _STEP_TEMPLATES[cracks] = template
    return template


class SwVmxKernel(TracedKernel):
    """Instrumented vectorized Smith-Waterman database scan."""

    def __init__(
        self,
        config: VectorConfig = VMX128,
        matrix: ScoringMatrix = BLOSUM62,
        gaps: GapPenalties = PAPER_GAPS,
    ) -> None:
        self.config = config
        self.matrix = matrix
        self.gaps = gaps
        self.name = f"sw_vmx{config.width_bits}"
        #: 256-bit permutes/memory ops crack into two 128-bit micro-ops.
        self.cracks = config.width_bits // 128

    def execute(
        self,
        builder: TraceBuilder,
        query: Sequence,
        database: SequenceDatabase,
        scores: dict[str, int],
    ) -> None:
        if builder.use_templates:
            self._execute_templated(builder, query, database, scores)
        else:
            self._execute_scalar(builder, query, database, scores)

    def _execute_templated(
        self,
        builder: TraceBuilder,
        query: Sequence,
        database: SequenceDatabase,
        scores: dict[str, int],
    ) -> None:
        q = query.codes
        m = len(q)
        unit = VectorUnit(self.config)
        lanes = unit.lanes
        cracks = self.cracks
        gap_first = self.gaps.first_residue_cost
        gap_extend = self.gaps.extend
        rows = self.matrix.rows

        gf_vec = unit.splat(gap_first)
        ge_vec = unit.splat(gap_extend)
        zero_vec = unit.zero()
        sentinel = INT16_MIN
        template = _step_template(cracks)

        profile_base = builder.alloc("profile", self.matrix.size * m * 2)
        longest = max((len(s) for s in database), default=0)
        hb_base = builder.alloc("h_boundary", (longest + 1) * 2)
        fb_base = builder.alloc("f_boundary", (longest + 1) * 2)
        db_base = builder.alloc("db", database.residue_count)

        def emit_vperm(site: str, sources: tuple[int, ...]) -> int:
            register = builder.vperm(site, sources)
            for crack in range(1, cracks):
                register = builder.vperm(f"{site}.c{crack}", (register,))
            return register

        def emit_vload(
            site: str, address: int, sources: tuple[int, ...]
        ) -> int:
            register = builder.vload(site, address, sources, size=16)
            for crack in range(1, cracks):
                r_addr = builder.ialu(f"{site}.a{crack}", sources)
                register = builder.vload(
                    f"{site}.c{crack}", address + 16 * crack, (r_addr,), size=16
                )
            return register

        db_cursor = db_base
        for subject in database:
            s = subject.codes
            n = len(s)
            subject_base = db_cursor
            db_cursor += n

            h_boundary = [0] * (n + 1)
            f_boundary = [sentinel] * (n + 1)
            best = 0

            r_sub = builder.ialu("drv.subj.setup")
            builder.other("drv.subj.misc", (r_sub,))

            s_arr = np.asarray(s, dtype=np.int64)

            for r0 in range(0, m, lanes):
                block_codes = [q[r0 + k] if r0 + k < m else -1 for k in range(lanes)]
                last_lane = min(lanes, m - r0) - 1
                new_h_boundary = [0] * (n + 1)
                new_f_boundary = [sentinel] * (n + 1)

                v_h_prev = zero_vec.copy()
                v_h_prev2 = zero_vec.copy()
                v_e_prev = unit.splat(sentinel)
                v_f_prev = unit.splat(sentinel)

                r_addr0 = builder.ialu("blk.addr", (r_sub,))
                r_qblk = emit_vload("blk.qload", profile_base + r0 * 2, (r_addr0,))
                r_vh = builder.vperm("blk.zero", (r_qblk,))
                r_ve = builder.vperm("blk.sent_e", ())
                r_vf = builder.vperm("blk.sent_f", ())
                r_vbest = r_vh

                # Functional wavefront (exact) — no emissions; the whole
                # step stream is stamped in one bulk write afterwards.
                for t in range(1, n + lanes):
                    subject_codes = [
                        s[t - k - 1] if 1 <= t - k <= n else -1
                        for k in range(lanes)
                    ]
                    v_e = unit.vmax(
                        unit.subs(v_h_prev, gf_vec), unit.subs(v_e_prev, ge_vec)
                    )
                    carry_h = h_boundary[t] if t <= n else 0
                    carry_f = f_boundary[t] if t <= n else sentinel
                    v_f = unit.vmax(
                        unit.subs(unit.shift_down(v_h_prev, carry_h), gf_vec),
                        unit.subs(unit.shift_down(v_f_prev, carry_f), ge_vec),
                    )
                    carry_diag = h_boundary[t - 1] if t - 1 <= n else 0
                    v_scores = unit.gather_scores(rows, block_codes, subject_codes)
                    v_diag = unit.adds(
                        unit.shift_down(v_h_prev2, carry_diag), v_scores
                    )
                    v_h = unit.vmax(
                        unit.vmax(v_diag, v_e), unit.vmax(v_f, zero_vec)
                    )
                    for k in range(lanes):
                        if subject_codes[k] < 0:
                            v_h[k] = 0
                            v_e[k] = sentinel
                            v_f[k] = sentinel
                    lane_best = unit.horizontal_max(v_h)
                    if lane_best > best:
                        best = lane_best

                    j_last = t - last_lane
                    if 1 <= j_last <= n:
                        new_h_boundary[j_last] = unit.extract(v_h, last_lane)
                        new_f_boundary[j_last] = unit.extract(v_f, last_lane)

                    v_h_prev2 = v_h_prev
                    v_h_prev = v_h
                    v_e_prev = v_e
                    v_f_prev = v_f

                t_arr = np.arange(1, n + lanes, dtype=np.int64)
                min_tn = np.minimum(t_arr, n)
                db_index = min_tn - 1
                codes = s_arr[db_index]
                j_last_arr = t_arr - last_lane
                result = builder.stamp(template, n + lanes - 1, {
                    "addr": r_addr0,
                    "qblk": r_qblk,
                    "vh": r_vh,
                    "ve": r_ve,
                    "vf": r_vf,
                    "dba": subject_base + db_index,
                    "p1a": profile_base + (codes * m + r0) * 2,
                    "hba": hb_base + 2 * min_tn,
                    "fba": fb_base + 2 * min_tn,
                    "stb": (j_last_arr >= 1) & (j_last_arr <= n),
                    "sta": hb_base + 2 * j_last_arr,
                    "tile": (t_arr % UNROLL) == 0,
                    "tl": (t_arr + UNROLL) < (n + lanes),
                })

                r_vbest = result.last(
                    template.slot_index("best"), default=r_vbest
                )

                h_boundary = new_h_boundary
                f_boundary = new_f_boundary

                r_red = emit_vperm("blk.red_perm", (r_vbest,))
                builder.vsimple("blk.red_max", (r_red, r_vbest))
                r_cmp = builder.ialu("blk.cmp", (r_red,))
                builder.ctrl(
                    "blk.loop", taken=r0 + lanes < m, sources=(r_cmp,), backward=True
                )

            r_hist = builder.ialu("drv.hist.bin", (r_sub,))
            builder.istore("drv.hist.store", hb_base, (r_hist,), size=4)
            scores[subject.identifier] = best

    def _execute_scalar(
        self,
        builder: TraceBuilder,
        query: Sequence,
        database: SequenceDatabase,
        scores: dict[str, int],
    ) -> None:
        q = query.codes
        m = len(q)
        unit = VectorUnit(self.config)
        lanes = unit.lanes
        cracks = self.cracks
        gap_first = self.gaps.first_residue_cost
        gap_extend = self.gaps.extend
        rows = self.matrix.rows

        gf_vec = unit.splat(gap_first)
        ge_vec = unit.splat(gap_extend)
        zero_vec = unit.zero()
        sentinel = INT16_MIN

        # Data layout: striped query profile, boundary rows, database.
        profile_base = builder.alloc("profile", self.matrix.size * m * 2)
        longest = max((len(s) for s in database), default=0)
        hb_base = builder.alloc("h_boundary", (longest + 1) * 2)
        fb_base = builder.alloc("f_boundary", (longest + 1) * 2)
        db_base = builder.alloc("db", database.residue_count)

        def emit_vperm(site: str, sources: tuple[int, ...]) -> int:
            # A 2x-wide permute on 128-bit hardware needs a cross-half
            # fixup that consumes the first half's result, so the
            # cracked micro-ops form a chain (this is why rg_vper grows
            # for the 256-bit variant).
            register = builder.vperm(site, sources)
            for crack in range(1, cracks):
                register = builder.vperm(f"{site}.c{crack}", (register,))
            return register

        def emit_vload(
            site: str, address: int, sources: tuple[int, ...]
        ) -> int:
            register = builder.vload(site, address, sources, size=16)
            for crack in range(1, cracks):
                r_addr = builder.ialu(f"{site}.a{crack}", sources)
                register = builder.vload(
                    f"{site}.c{crack}", address + 16 * crack, (r_addr,), size=16
                )
            return register

        db_cursor = db_base
        for subject in database:
            s = subject.codes
            n = len(s)
            subject_base = db_cursor
            db_cursor += n

            h_boundary = [0] * (n + 1)
            f_boundary = [sentinel] * (n + 1)
            best = 0

            r_sub = builder.ialu("drv.subj.setup")
            builder.other("drv.subj.misc", (r_sub,))

            for r0 in range(0, m, lanes):
                block_codes = [q[r0 + k] if r0 + k < m else -1 for k in range(lanes)]
                last_lane = min(lanes, m - r0) - 1
                new_h_boundary = [0] * (n + 1)
                new_f_boundary = [sentinel] * (n + 1)

                v_h_prev = zero_vec.copy()
                v_h_prev2 = zero_vec.copy()
                v_e_prev = unit.splat(sentinel)
                v_f_prev = unit.splat(sentinel)

                # Block prologue: load the query stripe and reset state.
                r_addr = builder.ialu("blk.addr", (r_sub,))
                r_qblk = emit_vload("blk.qload", profile_base + r0 * 2, (r_addr,))
                r_vh = builder.vperm("blk.zero", (r_qblk,))
                r_vh2 = r_vh
                r_ve = builder.vperm("blk.sent_e", ())
                r_vf = builder.vperm("blk.sent_f", ())
                r_vbest = r_vh

                for t in range(1, n + lanes):
                    subject_codes = [
                        s[t - k - 1] if 1 <= t - k <= n else -1
                        for k in range(lanes)
                    ]

                    # --- functional wavefront step (exact) -----------
                    v_e = unit.vmax(
                        unit.subs(v_h_prev, gf_vec), unit.subs(v_e_prev, ge_vec)
                    )
                    carry_h = h_boundary[t] if t <= n else 0
                    carry_f = f_boundary[t] if t <= n else sentinel
                    v_f = unit.vmax(
                        unit.subs(unit.shift_down(v_h_prev, carry_h), gf_vec),
                        unit.subs(unit.shift_down(v_f_prev, carry_f), ge_vec),
                    )
                    carry_diag = h_boundary[t - 1] if t - 1 <= n else 0
                    v_scores = unit.gather_scores(rows, block_codes, subject_codes)
                    v_diag = unit.adds(
                        unit.shift_down(v_h_prev2, carry_diag), v_scores
                    )
                    v_h = unit.vmax(
                        unit.vmax(v_diag, v_e), unit.vmax(v_f, zero_vec)
                    )
                    for k in range(lanes):
                        if subject_codes[k] < 0:
                            v_h[k] = 0
                            v_e[k] = sentinel
                            v_f[k] = sentinel
                    lane_best = unit.horizontal_max(v_h)
                    if lane_best > best:
                        best = lane_best

                    # --- emitted operation stream --------------------
                    # Address arithmetic for the step (profile pointer,
                    # boundary pointers, wavefront index update).
                    r_addr = builder.ialu("step.addr1", (r_addr,))
                    r_addr2 = builder.ialu("step.addr2", (r_addr,))
                    builder.ialu("step.addr3", (r_addr,))
                    builder.ialu("step.addr4", (r_addr2,))
                    # New database residue enters the wavefront.
                    db_index = min(t, n) - 1
                    r_db = builder.iload(
                        "step.dbload", subject_base + db_index, (r_addr2,), size=1
                    )
                    # Profile gather for the anti-diagonal (perm lookup).
                    code = s[db_index]
                    r_p1 = emit_vload(
                        "step.prof1", profile_base + (code * m + r0) * 2, (r_db,)
                    )
                    r_p2 = emit_vload(
                        "step.prof2",
                        profile_base + (code * m + r0) * 2 + 16,
                        (r_db,),
                    )
                    r_scores = emit_vperm("step.gather1", (r_p1, r_p2))
                    r_scores = emit_vperm("step.gather2", (r_scores, r_qblk))
                    # E update: 3 vector-simple ops.
                    r_t1 = builder.vsimple("step.e_sub1", (r_vh,))
                    r_t2 = builder.vsimple("step.e_sub2", (r_ve,))
                    r_ve = builder.vsimple("step.e_max", (r_t1, r_t2))
                    # F update: two lane shifts + 3 vector-simple ops.
                    r_hb = builder.iload(
                        "step.hb_load", hb_base + 2 * min(t, n), (r_addr,), size=2
                    )
                    r_s1 = emit_vperm("step.f_shift_h", (r_vh, r_hb))
                    r_s2 = emit_vperm("step.f_shift_f", (r_vf, r_hb))
                    r_t1 = builder.vsimple("step.f_sub1", (r_s1,))
                    r_t2 = builder.vsimple("step.f_sub2", (r_s2,))
                    r_vf = builder.vsimple("step.f_max", (r_t1, r_t2))
                    # Diagonal + substitution scores.
                    r_fb = builder.iload(
                        "step.fb_load", fb_base + 2 * min(t, n), (r_addr,), size=2
                    )
                    r_d = emit_vperm("step.d_shift", (r_vh2, r_fb))
                    r_d = builder.vsimple("step.d_add", (r_d, r_scores))
                    # H = max(max(diag, E), max(F, 0)).
                    r_t1 = builder.vsimple("step.h_max1", (r_d, r_ve))
                    r_t2 = builder.vsimple("step.h_max2", (r_vf,))
                    r_vh_new = builder.vsimple("step.h_max3", (r_t1, r_t2))
                    # Running best.
                    r_vbest = builder.vsimple("step.best", (r_vbest, r_vh_new))

                    # Boundary row write-back (last valid lane).
                    j_last = t - last_lane
                    if 1 <= j_last <= n:
                        new_h_boundary[j_last] = unit.extract(v_h, last_lane)
                        new_f_boundary[j_last] = unit.extract(v_f, last_lane)
                        # H and F boundary entries are adjacent struct
                        # fields written with a single 4-byte store.
                        builder.istore(
                            "step.hb_store",
                            hb_base + 2 * j_last,
                            (r_vh_new, r_vf),
                            size=4,
                        )

                    # Tile loop control (unrolled by UNROLL).
                    if t % UNROLL == 0:
                        r_cmp = builder.ialu("step.tile_cmp", (r_addr,))
                        builder.ctrl(
                            "step.tile_loop",
                            taken=t + UNROLL < n + lanes,
                            sources=(r_cmp,),
                            backward=True,
                        )

                    v_h_prev2 = v_h_prev
                    v_h_prev = v_h
                    v_e_prev = v_e
                    v_f_prev = v_f
                    r_vh2 = r_vh
                    r_vh = r_vh_new

                h_boundary = new_h_boundary
                f_boundary = new_f_boundary

                # Block epilogue: horizontal max reduction of the best.
                r_red = emit_vperm("blk.red_perm", (r_vbest,))
                builder.vsimple("blk.red_max", (r_red, r_vbest))
                r_cmp = builder.ialu("blk.cmp", (r_red,))
                builder.ctrl(
                    "blk.loop", taken=r0 + lanes < m, sources=(r_cmp,), backward=True
                )

            r_hist = builder.ialu("drv.hist.bin", (r_sub,))
            builder.istore("drv.hist.store", hb_base, (r_hist,), size=4)
            scores[subject.identifier] = best
