"""Traced star-MSA kernel — the paper's "future work" workload.

The paper's conclusion names multiple-sequence analysis as the next
workload to characterize; this kernel does exactly that for the
progressive star MSA of :mod:`repro.align.msa`.  The dominant stage is
the all-to-center global DP (a branchy scalar recurrence like
SSEARCH's, but without the zero floor or the SWAT fast path), followed
by the linear merge scan.

Scores reported per sequence are the global alignment scores against
the chosen center, identical to :func:`repro.align.needleman_wunsch.nw_score`
(tested).
"""

from __future__ import annotations

from repro.align.needleman_wunsch import nw_score
from repro.align.types import GapPenalties, PAPER_GAPS
from repro.bio.database import SequenceDatabase
from repro.bio.matrices import BLOSUM62, ScoringMatrix
from repro.bio.sequence import Sequence
from repro.isa.builder import TraceBuilder
from repro.kernels.base import TracedKernel

_NEG_INF = -(10**9)


class MsaKernel(TracedKernel):
    """Instrumented star MSA over a database's sequences.

    The ``query`` argument of :meth:`run` is used as the star center
    (in a real run the center is chosen by all-pairs scoring; tracing
    uses a fixed center so the traced work is the pairwise DP stage).
    """

    name = "msa_star"

    def __init__(
        self,
        matrix: ScoringMatrix = BLOSUM62,
        gaps: GapPenalties = PAPER_GAPS,
    ) -> None:
        self.matrix = matrix
        self.gaps = gaps

    def execute(
        self,
        builder: TraceBuilder,
        query: Sequence,
        database: SequenceDatabase,
        scores: dict[str, int],
    ) -> None:
        center = query.codes
        m = len(center)
        gap_first = self.gaps.first_residue_cost
        gap_extend = self.gaps.extend
        rows = self.matrix.rows

        profile_base = builder.alloc("profile", self.matrix.size * m * 2)
        row_base = builder.alloc("dp_rows", (m + 1) * 8)
        msa_base = builder.alloc("msa", (len(database) + 1) * (m * 4))
        db_base = builder.alloc("db", database.residue_count)

        db_cursor = db_base
        for subject in database:
            s = subject.codes
            subject_base = db_cursor
            db_cursor += len(s)

            r_sub = builder.ialu("drv.subj.setup")
            builder.other("drv.subj.misc", (r_sub,))

            score = self._traced_nw(
                builder, center, s, rows, gap_first, gap_extend,
                profile_base, row_base, subject_base, r_sub,
            )
            scores[subject.identifier] = score

            # Merge scan: walk the alignment columns, padding rows
            # (linear in the alignment length).
            r_ptr = r_sub
            for column in range(max(m, len(s))):
                r_char = builder.iload(
                    "merge.load", msa_base + column * 4, (r_ptr,), size=4
                )
                r_ptr = builder.ialu("merge.advance", (r_char,))
                builder.ctrl(
                    "merge.br_gap",
                    taken=(column * 7 + len(s)) % 3 == 0,
                    sources=(r_ptr,),
                )
                builder.istore(
                    "merge.store", msa_base + column * 4, (r_ptr,), size=4
                )

    def _traced_nw(
        self,
        builder: TraceBuilder,
        q,
        s,
        rows,
        gap_first: int,
        gap_extend: int,
        profile_base: int,
        row_base: int,
        subject_base: int,
        r_ctx: int,
    ) -> int:
        """Global affine DP with per-cell emission; returns nw score."""
        m = len(q)
        h_row = [0] + [-(gap_first + gap_extend * (i - 1)) for i in range(1, m + 1)]
        e_row = [_NEG_INF] * (m + 1)

        r_ptr = builder.ialu("nw.setup", (r_ctx,))
        for j, b_code in enumerate(s, start=1):
            score_row = rows[b_code]
            diag = h_row[0]
            h_row[0] = -(gap_first + gap_extend * (j - 1))
            f = _NEG_INF

            r_b = builder.iload(
                "nw.col.loadb", subject_base + j - 1, (r_ptr,), size=1
            )
            r_prof = builder.ialu("nw.col.prof", (r_b,))
            r_h = builder.ialu("nw.col.h0")
            r_diag = r_h
            r_f = r_h
            r_e = r_h

            profile_row = profile_base + b_code * m * 2
            for i in range(1, m + 1):
                e = max(h_row[i] - gap_first, e_row[i] - gap_extend)
                f = max(h_row[i - 1] - gap_first, f - gap_extend)
                h = diag + score_row[q[i - 1]]
                diag_wins = h >= e and h >= f
                if e > h:
                    h = e
                if f > h:
                    h = f

                r_val = builder.iload(
                    "nw.cell.prof", profile_row + i * 2, (r_prof,), size=2
                )
                r_hl = builder.iload(
                    "nw.cell.loadH", row_base + i * 8, (r_ptr,), size=4
                )
                r_el = builder.iload(
                    "nw.cell.loadE", row_base + i * 8 + 4, (r_ptr,), size=4
                )
                r_add = builder.ialu("nw.cell.add", (r_diag, r_val))
                r_e = builder.ialu("nw.cell.e_upd", (r_hl, r_el))
                r_f = builder.ialu("nw.cell.f_upd", (r_f, r_h))
                r_h = builder.ialu("nw.cell.h_max", (r_add, r_e, r_f))
                r_cmp = builder.ialu("nw.cell.cmp", (r_h,))
                builder.ctrl("nw.cell.br_diag", taken=diag_wins, sources=(r_cmp,))
                builder.istore(
                    "nw.cell.store", row_base + i * 8, (r_h, r_e), size=8
                )
                builder.ctrl("nw.cell.loop", taken=i < m, backward=True)

                diag = h_row[i]
                h_row[i] = h
                e_row[i] = e
                r_diag = r_hl
            builder.ctrl("nw.col.loop", taken=j < len(s), backward=True)
        return h_row[m]
