"""Traced FASTA34 kernel: k-tuple scan, region handling, banded opt.

Follows the three-stage FASTA pipeline of
:class:`repro.align.fasta.engine.FastaEngine` (scores are identical,
tested).  Stage 1 streams the subject against the small (20^2-bucket)
k-tuple table — unlike BLAST's 20^3-word table this fits comfortably in
L1, which is why FASTA is *not* memory-bound in the paper.  Stages 2-3
are branchy integer scanning and the banded DP, giving FASTA its
SSEARCH-like dependence on branch prediction.
"""

from __future__ import annotations


from repro.align.fasta.engine import FastaOptions, FastaScores
from repro.align.fasta.chaining import chain_regions
from repro.align.fasta.ktup import (
    DiagonalRegion,
    HIT_BONUS_PER_RESIDUE,
    DISTANCE_PENALTY,
    KtupleIndex,
)
from repro.bio.alphabet import STANDARD_AMINO_ACIDS
from repro.bio.database import SequenceDatabase
from repro.bio.sequence import Sequence
from repro.isa.builder import TraceBuilder
from repro.isa.emit import Carry, EmitTemplate, Reg, Sel, Slot, SlotSpec
from repro.isa.opcodes import OpClass
from repro.kernels.base import TracedKernel
from repro.kernels.dp_emit import banded_dp_traced

#: Stage-1 k-tuple scan block.  Stamped in hit-to-hit runs: the kernel
#: buffers per-offset operands until a bucket walk interrupts the
#: stream, stamps the run (hit offset inclusive), emits the walk with
#: scalar calls, and threads ``r_ptr``/``r_head`` via the stamp result.
_SCAN_TEMPLATE = EmitTemplate("fasta.scan", [
    SlotSpec(OpClass.ILOAD, "scan.loads",
             sources=(Carry(1, init=Reg("ptr")),),
             base="sb", scale=1, size=1),
    SlotSpec(OpClass.IALU, "scan.shift",
             sources=(Slot(0), Carry(1, init=Reg("ptr")))),
    SlotSpec(OpClass.IALU, "scan.word", sources=(Slot(0),)),
    SlotSpec(OpClass.ILOAD, "scan.ktab", sources=(Slot(2),),
             addr="ka", size=8),
    SlotSpec(OpClass.IALU, "scan.test", sources=(Slot(3),)),
    SlotSpec(OpClass.CTRL, "scan.br_hit", taken="hit", sources=(Slot(4),)),
    SlotSpec(OpClass.CTRL, "scan.loop", gate="odd", taken="cont",
             backward=True),
])

#: Stage-3 per-residue rescoring block (the valid offsets of a region
#: form one contiguous run, so each region is a single stamp).
_RESC_TEMPLATE = EmitTemplate("fasta.resc", [
    SlotSpec(OpClass.ILOAD, "resc.loads",
             sources=(Carry(Sel(5, 2), init=Reg("run")),),
             addr="sa", size=1),
    SlotSpec(OpClass.ILOAD, "resc.prof", sources=(Slot(0),),
             addr="pa", size=2),
    SlotSpec(OpClass.IALU, "resc.add",
             sources=(Carry(Sel(5, 2), init=Reg("run")), Slot(1))),
    SlotSpec(OpClass.IALU, "resc.cmp", sources=(Slot(2),)),
    SlotSpec(OpClass.CTRL, "resc.br_reset", taken="reset",
             sources=(Slot(3),)),
    SlotSpec(OpClass.IALU, "resc.upd", gate="upd", sources=(Slot(2),)),
    SlotSpec(OpClass.CTRL, "resc.loop", taken="cont", backward=True),
])


class FastaKernel(TracedKernel):
    """Instrumented FASTA database scan."""

    name = "fasta34"

    def __init__(self, options: FastaOptions = FastaOptions()) -> None:
        self.options = options

    def execute(
        self,
        builder: TraceBuilder,
        query: Sequence,
        database: SequenceDatabase,
        scores: dict[str, int],
    ) -> None:
        options = self.options
        q = query.codes
        m = len(q)
        ktup = options.ktup
        index = KtupleIndex(q, ktup=ktup)

        ktab_base = builder.alloc("ktab", (STANDARD_AMINO_ACIDS**ktup) * 8)
        buckets_base = builder.alloc("buckets", max(m, 1) * 4)
        longest = max((len(s) for s in database), default=0)
        hitlist_base = builder.alloc("hitlist", (m + longest) * 8)
        profile_base = builder.alloc("profile", options.matrix.size * m * 2)
        row_base = builder.alloc("dp_rows", (m + 1) * 8)
        db_base = builder.alloc("db", database.residue_count)

        db_cursor = db_base
        for subject in database:
            s = subject.codes
            n = len(s)
            subject_base = db_cursor
            db_cursor += n

            r_sub = builder.ialu("drv.subj.setup")
            builder.other("drv.subj.misc", (r_sub,))

            # ---------------- stage 1: k-tuple diagonal scan ----------
            scan = (
                self._scan_templated
                if builder.use_templates
                else self._scan_scalar
            )
            hits = scan(
                builder, index, s, n, m, subject_base, ktab_base,
                buckets_base, hitlist_base, r_sub,
            )

            # ---------------- stage 2: diagonal run scoring -----------
            raw_regions: list[DiagonalRegion] = []
            for diagonal in hits:
                offsets = hits[diagonal]
                r_dptr = builder.ialu("run.diag_setup", (r_sub,))
                running = 0
                best = 0
                run_start = 0
                best_end = 0
                previous_end = None
                r_run = r_dptr
                for offset in offsets:
                    bonus = HIT_BONUS_PER_RESIDUE * ktup
                    if previous_end is None:
                        gap_cost = 0
                    else:
                        distance = offset - previous_end
                        if distance <= 0:
                            bonus = HIT_BONUS_PER_RESIDUE * (ktup + distance)
                            gap_cost = 0
                        else:
                            gap_cost = distance * DISTANCE_PENALTY

                    r_off = builder.iload(
                        "run.load",
                        hitlist_base + (diagonal + m) * 8,
                        (r_dptr,),
                        size=4,
                    )
                    r_run = builder.ialu("run.score", (r_run, r_off))
                    r_cmp = builder.ialu("run.cmp", (r_run,))

                    if running == 0:
                        run_start = offset
                        running = max(0, bonus)
                        best = running
                        best_end = offset + ktup
                        builder.ctrl("run.br_fresh", taken=True, sources=(r_cmp,))
                    else:
                        running = running - gap_cost + bonus
                        if running <= 0:
                            builder.ctrl(
                                "run.br_reset", taken=True, sources=(r_cmp,)
                            )
                            if best > 0:
                                raw_regions.append(
                                    DiagonalRegion(
                                        diagonal, run_start, best_end, best
                                    )
                                )
                            # The triggering hit seeds a fresh run
                            # (matching scan_diagonal()).
                            run_start = offset
                            running = HIT_BONUS_PER_RESIDUE * ktup
                            best = running
                            best_end = offset + ktup
                            previous_end = offset + ktup
                            continue
                        builder.ctrl(
                            "run.br_better",
                            taken=running > best,
                            sources=(r_cmp,),
                        )
                        if running > best:
                            best = running
                            best_end = offset + ktup
                            r_run = builder.ialu("run.upd_best", (r_run,))
                    previous_end = offset + ktup
                if best > 0:
                    raw_regions.append(
                        DiagonalRegion(diagonal, run_start, best_end, best)
                    )

            raw_regions.sort(key=lambda region: (-region.score, region.diagonal))
            raw_regions = raw_regions[: options.best_regions]

            # ---------------- stage 3: rescoring + chaining -----------
            rescore = (
                self._rescore_templated
                if builder.use_templates
                else self._rescore_traced
            )
            rescored: list[DiagonalRegion] = []
            for region in raw_regions:
                rescored.append(
                    rescore(
                        builder, region, q, s, profile_base, subject_base, r_sub
                    )
                )
            rescored = [region for region in rescored if region.score > 0]
            init1 = max((region.score for region in rescored), default=0)
            initn = chain_regions(rescored, join_penalty=options.join_penalty)
            for pair_index in range(len(rescored) * (len(rescored) - 1) // 2):
                r_c = builder.ialu("chain.cmp", (r_sub,))
                builder.ctrl(
                    "chain.br", taken=pair_index % 2 == 0, sources=(r_c,)
                )

            # ---------------- stage 4: banded optimization ------------
            opt = 0
            r_thr = builder.ialu("drv.thr_cmp", (r_sub,))
            builder.ctrl(
                "drv.br_opt",
                taken=initn >= options.opt_threshold and bool(rescored),
                sources=(r_thr,),
            )
            if initn >= options.opt_threshold and rescored:
                best_region = max(rescored, key=lambda region: region.score)
                opt = banded_dp_traced(
                    builder,
                    "opt",
                    q,
                    s,
                    center=best_region.diagonal,
                    width=options.opt_band,
                    matrix=options.matrix,
                    gaps=options.gaps,
                    profile_base=profile_base,
                    row_base=row_base,
                    subject_base=subject_base,
                    r_ctx=r_thr,
                )

            stage_scores = FastaScores(init1=init1, initn=initn, opt=opt)
            r_hist = builder.ialu("drv.hist.bin", (r_sub,))
            builder.istore("drv.hist.store", hitlist_base, (r_hist,), size=4)
            scores[subject.identifier] = stage_scores.reported

    def _scan_scalar(
        self,
        builder: TraceBuilder,
        index: KtupleIndex,
        s,
        n: int,
        m: int,
        subject_base: int,
        ktab_base: int,
        buckets_base: int,
        hitlist_base: int,
        r_sub: int,
    ) -> dict[int, list[int]]:
        """Per-call scalar stage-1 scan (the ``REPRO_EMIT=scalar`` path)."""
        ktup = self.options.ktup
        hits: dict[int, list[int]] = {}
        r_ptr = r_sub
        for so in range(max(0, n - ktup + 1)):
            word = 0
            valid = True
            for offset in range(ktup):
                code = s[so + offset]
                if code >= STANDARD_AMINO_ACIDS:
                    valid = False
                    break
                word = word * STANDARD_AMINO_ACIDS + code
            positions = index.positions(word) if valid else ()

            r_byte = builder.iload(
                "scan.loads", subject_base + so, (r_ptr,), size=1
            )
            r_ptr = builder.ialu("scan.shift", (r_byte, r_ptr))
            r_word = builder.ialu("scan.word", (r_byte,))
            r_head = builder.iload(
                "scan.ktab", ktab_base + max(word, 0) * 8, (r_word,), size=8
            )
            r_test = builder.ialu("scan.test", (r_head,))
            builder.ctrl("scan.br_hit", taken=bool(positions), sources=(r_test,))
            if so % 2 == 1:
                builder.ctrl("scan.loop", taken=so + 1 < n, backward=True)

            self._emit_bucket_walk(
                builder, hits, positions, so, m, buckets_base,
                hitlist_base, r_head,
            )
        return hits

    def _scan_templated(
        self,
        builder: TraceBuilder,
        index: KtupleIndex,
        s,
        n: int,
        m: int,
        subject_base: int,
        ktab_base: int,
        buckets_base: int,
        hitlist_base: int,
        r_sub: int,
    ) -> dict[int, list[int]]:
        """Template-stamped stage-1 scan, flushed run-by-run at hits."""
        ktup = self.options.ktup
        hits: dict[int, list[int]] = {}
        total = max(0, n - ktup + 1)
        state = {"ptr": r_sub, "start": 0}
        ka: list[int] = []
        hit: list[bool] = []
        odd: list[bool] = []
        cont: list[bool] = []

        def flush(upto: int):
            count = upto - state["start"]
            if count <= 0:
                return None
            result = builder.stamp(_SCAN_TEMPLATE, count, {
                "ptr": state["ptr"],
                "sb": subject_base + state["start"],
                "ka": ka,
                "hit": hit,
                "odd": odd,
                "cont": cont,
            })
            state["ptr"] = result.last(1, default=state["ptr"])
            state["start"] = upto
            ka.clear()
            hit.clear()
            odd.clear()
            cont.clear()
            return result

        for so in range(total):
            word = 0
            valid = True
            for offset in range(ktup):
                code = s[so + offset]
                if code >= STANDARD_AMINO_ACIDS:
                    valid = False
                    break
                word = word * STANDARD_AMINO_ACIDS + code
            positions = index.positions(word) if valid else ()
            ka.append(ktab_base + max(word, 0) * 8)
            hit.append(bool(positions))
            odd.append(so % 2 == 1)
            cont.append(so + 1 < n)
            if positions:
                result = flush(so + 1)
                r_head = result.last(3, default=state["ptr"])
                self._emit_bucket_walk(
                    builder, hits, positions, so, m, buckets_base,
                    hitlist_base, r_head,
                )
        flush(total)
        return hits

    def _emit_bucket_walk(
        self,
        builder: TraceBuilder,
        hits: dict[int, list[int]],
        positions,
        so: int,
        m: int,
        buckets_base: int,
        hitlist_base: int,
        r_head: int,
    ) -> None:
        """Bucket-list walk for one hit offset (shared by both paths)."""
        for bucket_pos, qo in enumerate(positions):
            diagonal = so - qo
            hits.setdefault(diagonal, []).append(so)
            r_qo = builder.iload(
                "scan.bucket", buckets_base + qo * 4, (r_head,), size=4
            )
            r_d = builder.ialu("scan.diag", (r_qo,))
            builder.istore(
                "scan.record",
                hitlist_base + (diagonal + m) * 8,
                (r_d,),
                size=8,
            )
            builder.ctrl(
                "scan.bucket_loop",
                taken=bucket_pos + 1 < len(positions),
                backward=True,
            )

    def _rescore_templated(
        self,
        builder: TraceBuilder,
        region: DiagonalRegion,
        q,
        s,
        profile_base: int,
        subject_base: int,
        r_ctx: int,
    ) -> DiagonalRegion:
        """Template-stamped equivalent of :meth:`_rescore_traced`.

        A region's in-query offsets form one contiguous run, so the
        whole rescoring loop is a single stamp.
        """
        m = len(q)
        matrix = self.options.matrix
        best = 0
        running = 0
        best_start = region.subject_start
        best_end = region.subject_start
        run_start = region.subject_start
        r_run = builder.ialu("resc.setup", (r_ctx,))

        lo = max(region.subject_start, region.diagonal)
        hi = min(region.subject_end, region.diagonal + m)
        count = max(0, hi - lo)
        sa: list[int] = []
        pa: list[int] = []
        reset_mask: list[bool] = []
        upd_mask: list[bool] = []
        cont: list[bool] = []
        for k in range(count):
            subject_offset = lo + k
            query_offset = subject_offset - region.diagonal
            value = matrix.score(q[query_offset], s[subject_offset])
            sa.append(subject_base + subject_offset)
            pa.append(
                profile_base + (s[subject_offset] * m + query_offset) * 2
            )
            if running == 0:
                run_start = subject_offset
            running += value
            reset = running <= 0
            reset_mask.append(reset)
            upd = False
            if reset:
                running = 0
            elif running > best:
                best = running
                best_start = run_start
                best_end = subject_offset + 1
                upd = True
            upd_mask.append(upd)
            cont.append(subject_offset + 1 < region.subject_end)
        if count:
            builder.stamp(_RESC_TEMPLATE, count, {
                "run": r_run,
                "sa": sa,
                "pa": pa,
                "reset": reset_mask,
                "upd": upd_mask,
                "cont": cont,
            })
        return DiagonalRegion(
            diagonal=region.diagonal,
            subject_start=best_start,
            subject_end=best_end,
            score=best,
        )

    def _rescore_traced(
        self,
        builder: TraceBuilder,
        region: DiagonalRegion,
        q,
        s,
        profile_base: int,
        subject_base: int,
        r_ctx: int,
    ) -> DiagonalRegion:
        """Matrix rescoring of one region with per-residue emission.

        Exactly mirrors :func:`repro.align.fasta.ktup.rescore_region`.
        """
        m = len(q)
        matrix = self.options.matrix
        best = 0
        running = 0
        best_start = region.subject_start
        best_end = region.subject_start
        run_start = region.subject_start
        r_run = builder.ialu("resc.setup", (r_ctx,))
        for subject_offset in range(region.subject_start, region.subject_end):
            query_offset = subject_offset - region.diagonal
            if not 0 <= query_offset < m:
                continue
            value = matrix.score(q[query_offset], s[subject_offset])
            r_s = builder.iload(
                "resc.loads", subject_base + subject_offset, (r_run,), size=1
            )
            r_v = builder.iload(
                "resc.prof",
                profile_base + (s[subject_offset] * m + query_offset) * 2,
                (r_s,),
                size=2,
            )
            r_run = builder.ialu("resc.add", (r_run, r_v))
            if running == 0:
                run_start = subject_offset
            running += value
            reset = running <= 0
            r_cmp = builder.ialu("resc.cmp", (r_run,))
            builder.ctrl("resc.br_reset", taken=reset, sources=(r_cmp,))
            if reset:
                running = 0
            elif running > best:
                best = running
                best_start = run_start
                best_end = subject_offset + 1
                r_run = builder.ialu("resc.upd", (r_run,))
            builder.ctrl(
                "resc.loop",
                taken=subject_offset + 1 < region.subject_end,
                backward=True,
            )
        return DiagonalRegion(
            diagonal=region.diagonal,
            subject_start=best_start,
            subject_end=best_end,
            score=best,
        )
