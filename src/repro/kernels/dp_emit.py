"""Shared traced banded affine DP used by the BLAST and FASTA kernels.

BLAST's gapped extension and FASTA's ``opt`` stage both run a banded
Gotoh dynamic program.  This helper executes the exact
:func:`repro.align.banded.banded_sw_score` recurrence while emitting a
branchy scalar DP instruction stream (profile load, H/E row loads,
compare-and-branch on the positivity tests, packed row store) — the
same control-flow character as the SSEARCH cell loop, which is why the
paper finds branch prediction to be FASTA's main limiter too.

Returns the banded score; tests assert it equals ``banded_sw_score``.
"""

from __future__ import annotations

import numpy as np

from repro.align.types import GapPenalties
from repro.bio.matrices import ScoringMatrix
from repro.isa.builder import TraceBuilder
from repro.isa.emit import Carry, EmitTemplate, Reg, Slot, SlotSpec
from repro.isa.opcodes import OpClass

_NEG_INF = -(10**9)

#: Per-prefix compiled banded-cell templates (sites embed the prefix).
_CELL_TEMPLATES: dict[str, EmitTemplate] = {}


def _cell_template(prefix: str) -> EmitTemplate:
    """The banded Gotoh cell block for one call-site prefix."""
    template = _CELL_TEMPLATES.get(prefix)
    if template is not None:
        return template
    alu = OpClass.IALU
    load = OpClass.ILOAD
    template = EmitTemplate(f"{prefix}.cell", [
        SlotSpec(load, f"{prefix}.cell.prof", sources=(Reg("prof"),),
                 base="profrow", scale=2, index="idx", size=2),
        SlotSpec(load, f"{prefix}.cell.loadH", sources=(Reg("ptr"),),
                 base="rowb", scale=8, index="idx", size=4),
        SlotSpec(load, f"{prefix}.cell.loadE", sources=(Reg("ptr"),),
                 base="rowb", scale=8, index="idx", offset=4, size=4),
        SlotSpec(alu, f"{prefix}.cell.add", sources=(Reg("h0"), Slot(0))),
        SlotSpec(alu, f"{prefix}.cell.e_upd", sources=(Slot(1), Slot(2))),
        SlotSpec(alu, f"{prefix}.cell.f_upd",
                 sources=(Carry(5, init=Reg("h0")),
                          Carry(6, init=Reg("h0")))),
        SlotSpec(alu, f"{prefix}.cell.h_max",
                 sources=(Slot(3), Slot(4), Slot(5))),
        SlotSpec(alu, f"{prefix}.cell.cmp_pos", sources=(Slot(6),)),
        SlotSpec(OpClass.CTRL, f"{prefix}.cell.br_pos", taken="pos",
                 sources=(Slot(7),)),
        SlotSpec(alu, f"{prefix}.cell.cmp_best", gate="pos",
                 sources=(Slot(6),)),
        SlotSpec(OpClass.CTRL, f"{prefix}.cell.br_best", gate="pos",
                 taken="b_gt", sources=(Slot(9),)),
        SlotSpec(alu, f"{prefix}.cell.mov_best", gate="best_upd",
                 sources=(Slot(6),)),
        SlotSpec(OpClass.ISTORE, f"{prefix}.cell.store",
                 sources=(Slot(6), Slot(4)),
                 base="rowb", scale=8, index="idx", size=8),
        SlotSpec(OpClass.CTRL, f"{prefix}.cell.loop", taken="loop",
                 backward=True),
    ])
    _CELL_TEMPLATES[prefix] = template
    return template


def banded_dp_traced(
    builder: TraceBuilder,
    prefix: str,
    query_codes,
    subject_codes,
    center: int,
    width: int,
    matrix: ScoringMatrix,
    gaps: GapPenalties,
    profile_base: int,
    row_base: int,
    subject_base: int,
    r_ctx: int,
) -> int:
    """Run a traced banded local DP; returns the best score in the band.

    ``profile_base``/``row_base``/``subject_base`` locate the query
    profile, the H/E row arrays, and the subject residues in the traced
    address space; ``r_ctx`` is the register carrying the caller's
    context pointer (address dependencies hang off it).
    """
    if builder.use_templates:
        return _banded_dp_templated(
            builder, prefix, query_codes, subject_codes, center, width,
            matrix, gaps, profile_base, row_base, subject_base, r_ctx,
        )
    return _banded_dp_scalar(
        builder, prefix, query_codes, subject_codes, center, width,
        matrix, gaps, profile_base, row_base, subject_base, r_ctx,
    )


def _banded_dp_templated(
    builder: TraceBuilder,
    prefix: str,
    query_codes,
    subject_codes,
    center: int,
    width: int,
    matrix: ScoringMatrix,
    gaps: GapPenalties,
    profile_base: int,
    row_base: int,
    subject_base: int,
    r_ctx: int,
) -> int:
    """Template-stamped equivalent of :func:`_banded_dp_scalar`."""
    q = query_codes
    s = subject_codes
    if not q or not s:
        return 0

    gap_first = gaps.first_residue_cost
    gap_extend = gaps.extend
    rows = matrix.rows
    m = len(q)
    lo_diag = center - width
    hi_diag = center + width
    template = _cell_template(prefix)

    h_row = [0] * (m + 1)
    e_row = [_NEG_INF] * (m + 1)
    best = 0

    r_ptr = builder.ialu(f"{prefix}.setup", (r_ctx,))

    for j in range(1, len(s) + 1):
        score_row = rows[s[j - 1]]
        i_min = max(1, j - hi_diag)
        i_max = min(m, j - lo_diag)
        if i_min > i_max:
            continue
        r_b = builder.iload(
            f"{prefix}.col.loadb", subject_base + j - 1, (r_ptr,), size=1
        )
        r_prof = builder.ialu(f"{prefix}.col.prof", (r_b,))
        r_h0 = builder.ialu(f"{prefix}.col.h0")

        diag = h_row[i_min - 1]
        f = _NEG_INF
        if i_min > 1:
            h_row[i_min - 1] = 0

        # Reference banded recurrence for the column, collecting the
        # positivity/best branch outcomes that gate the template.
        n = i_max - i_min + 1
        pos = [False] * n
        b_gt = [False] * n
        for k in range(n):
            i = i_min + k
            on_right_edge = (j - i) == lo_diag
            e = _NEG_INF if on_right_edge else max(
                h_row[i] - gap_first, e_row[i] - gap_extend
            )
            f = max(h_row[i - 1] - gap_first, f - gap_extend)
            h = diag + score_row[q[i - 1]]
            if e > h:
                h = e
            if f > h:
                h = f
            clamped = h < 0
            if clamped:
                h = 0
            pos[k] = not clamped
            b_gt[k] = h > best

            diag = h_row[i]
            h_row[i] = h
            e_row[i] = e
            if h > best:
                best = h

        pos_mask = np.asarray(pos, dtype=bool)
        b_gt_mask = np.asarray(b_gt, dtype=bool)
        idx = np.arange(i_min, i_max + 1, dtype=np.int64)
        builder.stamp(template, n, {
            "prof": r_prof,
            "ptr": r_ptr,
            "h0": r_h0,
            "profrow": profile_base + s[j - 1] * m * 2,
            "rowb": row_base,
            "idx": idx,
            "pos": pos_mask,
            "b_gt": b_gt_mask,
            "best_upd": pos_mask & b_gt_mask,
            "loop": idx < i_max,
        })

        if i_max < m:
            h_row[i_max + 1] = 0
            e_row[i_max + 1] = _NEG_INF
        builder.ctrl(f"{prefix}.col.loop", taken=j < len(s), backward=True)

    return best


def _banded_dp_scalar(
    builder: TraceBuilder,
    prefix: str,
    query_codes,
    subject_codes,
    center: int,
    width: int,
    matrix: ScoringMatrix,
    gaps: GapPenalties,
    profile_base: int,
    row_base: int,
    subject_base: int,
    r_ctx: int,
) -> int:
    """Per-call scalar emission (the ``REPRO_EMIT=scalar`` path)."""
    q = query_codes
    s = subject_codes
    if not q or not s:
        return 0

    gap_first = gaps.first_residue_cost
    gap_extend = gaps.extend
    rows = matrix.rows
    m = len(q)
    lo_diag = center - width
    hi_diag = center + width

    h_row = [0] * (m + 1)
    e_row = [_NEG_INF] * (m + 1)
    best = 0

    r_ptr = builder.ialu(f"{prefix}.setup", (r_ctx,))
    r_best = r_ptr

    for j in range(1, len(s) + 1):
        score_row = rows[s[j - 1]]
        i_min = max(1, j - hi_diag)
        i_max = min(m, j - lo_diag)
        if i_min > i_max:
            continue
        # Column setup: subject residue load, band limit arithmetic.
        r_b = builder.iload(
            f"{prefix}.col.loadb", subject_base + j - 1, (r_ptr,), size=1
        )
        r_prof = builder.ialu(f"{prefix}.col.prof", (r_b,))
        r_h = builder.ialu(f"{prefix}.col.h0")
        r_f = r_h
        r_diag = r_h

        diag = h_row[i_min - 1]
        f = _NEG_INF
        if i_min > 1:
            h_row[i_min - 1] = 0

        profile_row = profile_base + s[j - 1] * m * 2
        for i in range(i_min, i_max + 1):
            on_right_edge = (j - i) == lo_diag
            e = _NEG_INF if on_right_edge else max(
                h_row[i] - gap_first, e_row[i] - gap_extend
            )
            f = max(h_row[i - 1] - gap_first, f - gap_extend)
            h = diag + score_row[q[i - 1]]
            if e > h:
                h = e
            if f > h:
                h = f
            clamped = h < 0
            if clamped:
                h = 0

            # Emitted stream: loads, adds/selects, positivity branches.
            r_val = builder.iload(
                f"{prefix}.cell.prof", profile_row + i * 2, (r_prof,), size=2
            )
            r_hl = builder.iload(
                f"{prefix}.cell.loadH", row_base + i * 8, (r_ptr,), size=4
            )
            r_el = builder.iload(
                f"{prefix}.cell.loadE", row_base + i * 8 + 4, (r_ptr,), size=4
            )
            r_add = builder.ialu(f"{prefix}.cell.add", (r_diag, r_val))
            r_e = builder.ialu(f"{prefix}.cell.e_upd", (r_hl, r_el))
            r_f = builder.ialu(f"{prefix}.cell.f_upd", (r_f, r_h))
            r_h = builder.ialu(f"{prefix}.cell.h_max", (r_add, r_e, r_f))
            r_cmp = builder.ialu(f"{prefix}.cell.cmp_pos", (r_h,))
            builder.ctrl(f"{prefix}.cell.br_pos", taken=not clamped, sources=(r_cmp,))
            if not clamped:
                r_cmp = builder.ialu(f"{prefix}.cell.cmp_best", (r_h,))
                builder.ctrl(
                    f"{prefix}.cell.br_best", taken=h > best, sources=(r_cmp,)
                )
                if h > best:
                    r_best = builder.ialu(f"{prefix}.cell.mov_best", (r_h,))
            builder.istore(
                f"{prefix}.cell.store", row_base + i * 8, (r_h, r_e), size=8
            )
            builder.ctrl(
                f"{prefix}.cell.loop", taken=i < i_max, backward=True
            )

            diag = h_row[i]
            h_row[i] = h
            e_row[i] = e
            if h > best:
                best = h

        if i_max < m:
            h_row[i_max + 1] = 0
            e_row[i_max + 1] = _NEG_INF
        builder.ctrl(f"{prefix}.col.loop", taken=j < len(s), backward=True)

    return best
