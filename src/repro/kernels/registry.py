"""Kernel registry: Table I workload names -> traced kernel factories.

The five applications of the paper's Table I, with the option sets used
by the reproduction suite.  Two calibration choices (documented in
DESIGN.md / EXPERIMENTS.md) compensate for the synthetic database and
the leaner per-hit bookkeeping of the reimplementations so that the
*relative* trace sizes land near Table III:

* BLAST runs with neighborhood threshold 9 (instead of NCBI's 11),
  giving ~46 neighborhood words per query position — about what real
  BLAST sees on SwissProt;
* FASTA runs with opt threshold 16 so the banded optimization stage
  runs for most database sequences, as it does in real fasta34 runs
  that report optimized scores.
"""

from __future__ import annotations

from typing import Callable

from repro.align.blast.engine import BlastOptions
from repro.align.fasta.engine import FastaOptions
from repro.align.simd.vector import VMX128, VMX256
from repro.kernels.base import TracedKernel
from repro.kernels.blast_kernel import BlastKernel
from repro.kernels.fasta_kernel import FastaKernel
from repro.kernels.ssearch_kernel import SsearchKernel
from repro.kernels.sw_vmx_kernel import SwVmxKernel

#: Neighborhood threshold used by the reproduction suite's BLAST runs.
SUITE_BLAST_THRESHOLD = 9
#: FASTA opt threshold used by the reproduction suite.
SUITE_FASTA_OPT_THRESHOLD = 16

KERNEL_FACTORIES: dict[str, Callable[[], TracedKernel]] = {
    "ssearch34": SsearchKernel,
    "sw_vmx128": lambda: SwVmxKernel(VMX128),
    "sw_vmx256": lambda: SwVmxKernel(VMX256),
    "fasta34": lambda: FastaKernel(
        FastaOptions(opt_threshold=SUITE_FASTA_OPT_THRESHOLD)
    ),
    "blast": lambda: BlastKernel(
        BlastOptions(threshold=SUITE_BLAST_THRESHOLD)
    ),
}

#: Table I order.
WORKLOAD_NAMES: tuple[str, ...] = (
    "ssearch34",
    "sw_vmx128",
    "sw_vmx256",
    "fasta34",
    "blast",
)


def create_kernel(name: str) -> TracedKernel:
    """Instantiate a traced kernel by its Table I name."""
    try:
        factory = KERNEL_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(KERNEL_FACTORIES)}"
        ) from None
    return factory()
