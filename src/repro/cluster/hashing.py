"""Consistent hashing for query→replica affinity.

The router prefers to send a repeated query back to the replica that
served it before: every replica holds a full copy of the shard set, so
*any* replica can answer *any* query, and affinity is purely a cache
optimization — the preferred replica's runtime scan cache and
worker-side engine memos are already warm for that query.

A classic hash ring with virtual nodes gives the two properties the
topology operations need:

* **determinism** — the preferred replica for a key is a pure function
  of the key and the replica set (seeded SHA-1, no process state), so
  routers restart without losing affinity;
* **minimal remapping** — removing one replica (drain, crash, scale
  down) remaps only the keys that replica owned; every other key keeps
  its warm cache.
"""

from __future__ import annotations

import bisect
import hashlib

#: Virtual nodes per replica: enough to spread ownership evenly across
#: single-digit replica counts without making ring edits expensive.
DEFAULT_VNODES = 64


def stable_hash(text: str) -> int:
    """Deterministic 64-bit position for a key (seeded by content only)."""
    digest = hashlib.sha1(text.encode()).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring mapping keys to replica names."""

    def __init__(self, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self.vnodes = vnodes
        self._points: list[tuple[int, str]] = []
        self._members: set[str] = set()

    def add(self, name: str) -> None:
        """Join a replica (idempotent)."""
        if name in self._members:
            return
        self._members.add(name)
        for index in range(self.vnodes):
            point = (stable_hash(f"{name}#{index}"), name)
            bisect.insort(self._points, point)

    def remove(self, name: str) -> None:
        """Leave the ring (idempotent)."""
        if name not in self._members:
            return
        self._members.discard(name)
        self._points = [
            point for point in self._points if point[1] != name
        ]

    def members(self) -> set[str]:
        return set(self._members)

    def lookup(self, key: str) -> str | None:
        """The replica owning ``key`` (clockwise successor), or None."""
        if not self._points:
            return None
        position = stable_hash(key)
        index = bisect.bisect_right(
            self._points, (position, "￿")
        )
        if index == len(self._points):
            index = 0
        return self._points[index][1]


def affinity_key(data: dict) -> str:
    """Affinity key for one decoded search payload.

    Everything that shapes the cached scan participates — the query
    text and id plus the scoring knobs — so two requests hit the same
    replica exactly when the replica-side caches can serve the second
    from the first.
    """
    return "|".join(
        str(data.get(field, ""))
        for field in (
            "query", "query_id", "algorithm", "best_count",
            "gap_open", "gap_extend", "threshold",
        )
    )
