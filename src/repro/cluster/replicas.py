"""Router-side replica handles: one connection, one health state.

A :class:`ReplicaHandle` owns the router's TCP connection to one
replica server and the bookkeeping the dispatch policy reads: how many
requests are outstanding there, whether the replica recently shed
(saturation backoff), and its lifecycle state.

Wire ids are *rewritten* on the way through: many clients may reuse
the same request ``id`` concurrently, so the router assigns each
dispatch a private monotonically-increasing id, routes the replica's
response back through it, and restores the client's original id before
answering.  A dropped connection fails every outstanding future with
:class:`ReplicaGone` — the router's dispatch loop catches that and
redispatches the in-flight requests to surviving replicas, which is
what makes a mid-run replica kill invisible to clients.
"""

from __future__ import annotations

import asyncio
import contextlib
import json

from repro.serve.protocol import encode_response

#: Lifecycle states a handle moves through.
STATE_CONNECTING = "connecting"
STATE_HEALTHY = "healthy"
STATE_DRAINING = "draining"
STATE_EJECTED = "ejected"
STATE_STOPPED = "stopped"


class ReplicaGone(ConnectionError):
    """The replica's connection dropped with requests outstanding."""


class ReplicaHandle:
    """The router's view of one replica server."""

    def __init__(
        self,
        name: str,
        host: str,
        port: int,
        on_disconnect=None,
    ) -> None:
        self.name = name
        self.host = host
        self.port = port
        self.state = STATE_CONNECTING
        self.on_disconnect = on_disconnect
        self.queue_capacity: int | None = None
        #: Soft saturation hint: after a shed response the dispatch
        #: policy avoids this replica until the backoff passes, unless
        #: every alternative is saturated too.
        self.saturated_until = 0.0
        self.dispatched_total = 0
        self.shed_total = 0
        self._reader = None
        self._writer = None
        self._reader_task: asyncio.Task | None = None
        self._pending: dict[str, asyncio.Future] = {}
        self._sequence = 0
        self._drained = asyncio.Event()
        self._drained.set()

    # -- connection lifecycle ------------------------------------------

    async def connect(self) -> None:
        """Open the connection and learn the replica's capacity."""
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_responses()
        )
        status = await self.request({"op": "status"}, timeout=5.0)
        serve = status.get("serve", {})
        self.queue_capacity = serve.get("queue_capacity")
        self.state = STATE_HEALTHY

    async def close(self) -> None:
        """Tear the connection down (fails anything outstanding)."""
        self.state = STATE_STOPPED
        if self._reader_task is not None:
            self._reader_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._reader_task
            self._reader_task = None
        if self._writer is not None:
            with contextlib.suppress(ConnectionError):
                self._writer.close()
                await self._writer.wait_closed()
            self._writer = None
        self._fail_pending()

    @property
    def connected(self) -> bool:
        return self._writer is not None

    @property
    def outstanding(self) -> int:
        """Requests dispatched here and not yet answered."""
        return len(self._pending)

    async def _read_responses(self) -> None:
        try:
            while True:
                raw = await self._reader.readline()
                if not raw:
                    break
                response = json.loads(raw)
                future = self._pending.pop(
                    str(response.get("id", "")), None
                )
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._writer = None
            self._fail_pending()
            if self.state not in (STATE_STOPPED, STATE_DRAINING):
                self.state = STATE_EJECTED
            if self.on_disconnect is not None:
                self.on_disconnect(self)

    def _fail_pending(self) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(
                    ReplicaGone(f"replica {self.name} disconnected")
                )
        self._drained.set()

    # -- requests ------------------------------------------------------

    async def request(
        self, payload: dict, timeout: float | None = None
    ) -> dict:
        """Send one payload (id rewritten) and await its response.

        Raises :class:`ReplicaGone` on connection loss and
        ``asyncio.TimeoutError`` if the replica holds the request
        longer than ``timeout`` — both are retryable upstream.
        """
        if self._writer is None:
            raise ReplicaGone(f"replica {self.name} not connected")
        self._sequence += 1
        internal_id = f"x{self._sequence}"
        wire = dict(payload)
        wire["id"] = internal_id
        future = asyncio.get_running_loop().create_future()
        self._pending[internal_id] = future
        self._drained.clear()
        try:
            self._writer.write(
                (encode_response(wire) + "\n").encode()
            )
            await self._writer.drain()
            if timeout is None:
                return await future
            return await asyncio.wait_for(future, timeout)
        except ConnectionError as error:
            raise ReplicaGone(str(error)) from None
        finally:
            self._pending.pop(internal_id, None)
            if not self._pending:
                self._drained.set()

    async def wait_drained(self, grace: float) -> bool:
        """Wait until nothing is outstanding (True) or grace expires."""
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(self._drained.wait(), grace)
        return self.outstanding == 0

    def describe(self) -> dict:
        """Topology-status row for this replica."""
        return {
            "name": self.name,
            "address": f"{self.host}:{self.port}",
            "state": self.state,
            "outstanding": self.outstanding,
            "dispatched": self.dispatched_total,
            "shed": self.shed_total,
            "queue_capacity": self.queue_capacity,
        }
