"""Cluster supervisor: replica processes and zero-downtime operations.

``repro cluster up`` runs one supervisor process hosting the router's
event loop; each replica is a separate OS process (multiprocessing
``spawn``) running the ordinary ``repro serve`` TCP server with a
``--replica-label``.  The supervisor owns the topology operations the
router's admin channel exposes:

* **scale** — spawn new replicas (joined once healthy) or drain and
  retire the highest-numbered ones;
* **drain** — stop dispatching cluster-wide, let in-flight work
  finish, then gracefully stop every replica and exit;
* **rolling restart** — one replica at a time: out of dispatch, wait
  for its in-flight requests, SIGTERM (the serve layer's drain
  handler), relaunch, wait healthy, rejoin — traffic keeps flowing on
  the others throughout;
* **kill** — SIGKILL a replica (chaos testing); the watcher respawns
  it and the router rejoins it, so the cluster self-heals.

A watcher task restarts replicas that die *unexpectedly* (bounded by
``max_restarts``); intentional stops (drain, restart, scale-down) are
flagged so the watcher leaves them alone.
"""

from __future__ import annotations

import asyncio
import contextlib
import multiprocessing
import socket
import sys
from dataclasses import dataclass, field

from repro.cluster.replicas import STATE_EJECTED, STATE_HEALTHY
from repro.cluster.router import ClusterRouter, RouterConfig


def _replica_entry(argv: list[str]) -> None:
    """Spawn target: run one replica server (its own event loop)."""
    from repro.serve.server import main_serve

    sys.exit(main_serve(argv))


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (bind-and-release)."""
    with socket.socket() as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


@dataclass(frozen=True)
class ClusterConfig:
    """Topology shape for one supervised cluster."""

    replicas: int = 3
    host: str = "127.0.0.1"
    #: Router port (0 picks a free one).
    port: int = 0
    #: Raw ``repro serve`` flags every replica is launched with.
    serve_args: tuple[str, ...] = ()
    router: RouterConfig = field(default_factory=RouterConfig)
    #: Seconds to wait for a spawned replica to come up healthy.
    spawn_timeout: float = 60.0
    #: Seconds a drain waits for in-flight requests.
    drain_grace: float = 30.0
    #: Unexpected-death respawns per replica before giving up.
    max_restarts: int = 5

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError("need at least one replica")


@dataclass
class ReplicaProcess:
    """One supervised replica OS process."""

    name: str
    port: int
    process: multiprocessing.process.BaseProcess | None = None
    #: Should this replica be running?  Scale-down/drain clear it so
    #: the watcher does not resurrect an intentional stop.
    desired: bool = True
    #: A planned stop (rolling restart) is in progress.
    stopping: bool = False
    #: Unexpected-death respawns performed by the watcher.
    restarts: int = 0
    #: Planned relaunches (rolling restarts) completed.
    generation: int = 0


class ClusterSupervisor:
    """Owns replica processes and serves the router in-process."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.router = ClusterRouter(config.router, ops=self)
        self.specs: dict[str, ReplicaProcess] = {}
        self.shutdown = asyncio.Event()
        self._context = multiprocessing.get_context("spawn")
        self._watch_task: asyncio.Task | None = None
        self._ops_lock = asyncio.Lock()

    # -- process plumbing ---------------------------------------------

    def _spawn(self, spec: ReplicaProcess) -> None:
        argv = [
            "--host", self.config.host,
            "--port", str(spec.port),
            "--replica-label", spec.name,
            *self.config.serve_args,
        ]
        spec.process = self._context.Process(
            target=_replica_entry, args=(argv,), name=spec.name
        )
        spec.process.start()

    async def _stop_process(
        self, spec: ReplicaProcess, graceful: bool = True
    ) -> None:
        """Terminate one replica process (SIGTERM drains, SIGKILL not)."""
        process = spec.process
        if process is None:
            return
        if process.is_alive():
            if graceful:
                process.terminate()
            else:
                process.kill()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, process.join, 10.0)
        if process.is_alive():
            process.kill()
            await loop.run_in_executor(None, process.join, 5.0)
        spec.process = None

    async def _await_healthy(
        self, name: str, timeout: float | None = None
    ) -> bool:
        """Poll/rejoin until the replica answers, or time out."""
        if timeout is None:
            timeout = self.config.spawn_timeout
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        replica = self.router.replicas.get(name)
        while loop.time() < deadline:
            if replica is None:
                replica = await self.router.add_replica(
                    name, self.config.host, self.specs[name].port
                )
            if replica.state == STATE_HEALTHY:
                return True
            replica.state = STATE_EJECTED
            await self.router.try_rejoin(replica)
            if replica.state == STATE_HEALTHY:
                return True
            await asyncio.sleep(0.2)
        return False

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Spawn the topology and wait until every replica serves."""
        for index in range(self.config.replicas):
            name = f"r{index}"
            spec = ReplicaProcess(name, free_port(self.config.host))
            self.specs[name] = spec
            self._spawn(spec)
        await self.router.start()
        failures = []
        for name in sorted(self.specs):
            if not await self._await_healthy(name):
                failures.append(name)
        if failures:
            await self.stop()
            raise RuntimeError(
                f"replicas never became healthy: {', '.join(failures)}"
            )
        self._watch_task = asyncio.get_running_loop().create_task(
            self._watch_loop()
        )

    async def stop(self) -> None:
        """Tear everything down (drain() is the graceful road here)."""
        if self._watch_task is not None:
            self._watch_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._watch_task
            self._watch_task = None
        await self.router.stop()
        for spec in self.specs.values():
            spec.desired = False
            await self._stop_process(spec, graceful=True)

    # -- watcher -------------------------------------------------------

    async def _watch_loop(self) -> None:
        """Respawn replicas that die unexpectedly (self-healing)."""
        while True:
            await asyncio.sleep(0.3)
            for spec in list(self.specs.values()):
                if not spec.desired or spec.stopping:
                    continue
                process = spec.process
                if process is not None and process.is_alive():
                    continue
                if spec.restarts >= self.config.max_restarts:
                    continue
                spec.restarts += 1
                if process is not None:
                    await asyncio.get_running_loop().run_in_executor(
                        None, process.join, 1.0
                    )
                self._spawn(spec)
                # The router's health loop rejoins the replica once
                # the relaunched process answers; nothing to do here.

    # -- admin operations (router.ops hooks) --------------------------

    def enrich_topology(self, rows: list[dict]) -> None:
        """Add process facts to the router's topology rows."""
        for row in rows:
            spec = self.specs.get(row["name"])
            if spec is None:
                continue
            process = spec.process
            row["pid"] = process.pid if process is not None else None
            row["alive"] = (
                process.is_alive() if process is not None else False
            )
            row["restarts"] = spec.restarts
            row["generation"] = spec.generation

    async def scale(self, count: int) -> dict:
        """Grow or shrink the replica set to ``count``."""
        if count < 1:
            raise ValueError("scale target must be at least 1")
        async with self._ops_lock:
            current = [
                name for name, spec in sorted(self.specs.items())
                if spec.desired
            ]
            added, removed = [], []
            next_index = 0
            while len(current) + len(added) < count:
                while f"r{next_index}" in self.specs:
                    next_index += 1
                name = f"r{next_index}"
                spec = ReplicaProcess(
                    name, free_port(self.config.host)
                )
                self.specs[name] = spec
                self._spawn(spec)
                added.append(name)
            for name in added:
                if not await self._await_healthy(name):
                    raise ValueError(
                        f"new replica {name} never became healthy"
                    )
            # Shrink from the top so names stay dense and stable.
            for name in reversed(current):
                if len(current) - len(removed) <= count:
                    break
                await self._retire(name)
                removed.append(name)
            return {
                "replicas": count, "added": added, "removed": removed
            }

    async def _retire(self, name: str) -> None:
        """Drain one replica out of existence (scale-down)."""
        spec = self.specs[name]
        spec.desired = False
        spec.stopping = True
        self.router.set_draining(name)
        replica = self.router.replicas.get(name)
        if replica is not None:
            await replica.wait_drained(self.config.drain_grace)
        await self._stop_process(spec, graceful=True)
        await self.router.remove_replica(name)
        del self.specs[name]

    async def drain(self) -> dict:
        """Cluster-wide graceful drain; the up-loop exits afterwards."""
        async with self._ops_lock:
            self.router.draining = True
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self.config.drain_grace
            while (
                self.router.total_outstanding() > 0
                and loop.time() < deadline
            ):
                await asyncio.sleep(0.02)
            for name in sorted(self.specs):
                spec = self.specs[name]
                spec.desired = False
                spec.stopping = True
                await self._stop_process(spec, graceful=True)
            self.shutdown.set()
            return {"drained": True, "replicas": len(self.specs)}

    async def rolling_restart(self) -> dict:
        """Restart every replica one at a time, never dropping traffic."""
        async with self._ops_lock:
            restarted = []
            for name in sorted(self.specs):
                spec = self.specs[name]
                if not spec.desired:
                    continue
                spec.stopping = True
                self.router.set_draining(name)
                replica = self.router.replicas.get(name)
                if replica is not None:
                    await replica.wait_drained(self.config.drain_grace)
                await self._stop_process(spec, graceful=True)
                self._spawn(spec)
                spec.generation += 1
                if replica is not None:
                    replica.state = STATE_EJECTED
                if not await self._await_healthy(name):
                    spec.stopping = False
                    raise ValueError(
                        f"replica {name} never came back after restart"
                    )
                spec.stopping = False
                restarted.append(name)
            return {"restarted": restarted}

    async def kill(self, name: str) -> dict:
        """Chaos: SIGKILL one replica (no drain, no warning).

        The router redispatches its in-flight requests, the watcher
        respawns the process, and the health loop rejoins it — the
        full failover-and-heal path a chaos test wants to exercise.
        """
        spec = self.specs.get(name)
        if spec is None or spec.process is None:
            raise ValueError(f"no such replica: {name!r}")
        spec.process.kill()
        return {"killed": name, "pid": spec.process.pid}
