"""The cluster router: dispatch, backpressure, health, aggregation.

One asyncio process speaking the same JSON-lines protocol as a single
``repro serve`` server, in front of N replica servers.  Clients do not
change a line of code: a ``search`` sent to the router comes back with
the same byte-identical ``result`` a standalone server would produce —
the router adds availability (any replica can answer any query; a
dying replica's in-flight work is redispatched) and capacity (load
spreads by outstanding work).

Dispatch policy
===============

* **Least-loaded**: among healthy replicas, pick the one with the
  fewest outstanding requests — outstanding work is the most direct
  congestion signal available without guessing at service times.
* **Affinity**: cacheable repeat queries prefer their consistent-hash
  owner (:mod:`repro.cluster.hashing`) as long as that replica is not
  materially busier than the least-loaded one — warm scan caches and
  engine memos beat perfect balance for hot-query traffic.
* **Backpressure**: a replica that sheds (admission queue full or
  draining) is marked saturated for a short backoff and the request is
  *redispatched* to the next candidate; the router itself sheds only
  when every healthy replica has refused or the cluster-wide
  outstanding total reaches the summed replica admission capacities.
  Overload therefore degrades exactly like a single server's admission
  control — immediate retryable ``shed`` responses — instead of
  queueing into timeouts.

Health
======

A background loop pings every replica; consecutive failures (or an
outright connection drop) eject the replica — out of the hash ring,
out of the candidate set — while the loop keeps probing and rejoins it
the moment it answers again.  Ejection is also triggered inline by the
connection reader, so a killed replica stops receiving dispatches
immediately, not at the next probe.
"""

from __future__ import annotations

import asyncio
import contextlib
from collections import OrderedDict
from dataclasses import dataclass

from repro.cluster.hashing import HashRing, affinity_key
from repro.cluster.replicas import (
    STATE_DRAINING,
    STATE_EJECTED,
    STATE_HEALTHY,
    ReplicaGone,
    ReplicaHandle,
)
from repro.serve.protocol import (
    STATUS_SHED,
    ProtocolError,
    decode_line,
    decode_search,
    error_response,
    shed_response,
    timeout_response,
)
from repro.serve.telemetry import Telemetry, merge_snapshots

#: Admission capacity assumed for replicas that predate the status op.
DEFAULT_REPLICA_CAPACITY = 64


@dataclass(frozen=True)
class RouterConfig:
    """Dispatch and health policy knobs."""

    #: Prefer the consistent-hash owner for repeat queries.
    affinity: bool = True
    #: How many more outstanding requests the affinity owner may carry
    #: than the least-loaded replica before balance wins over warmth.
    affinity_slack: int = 8
    #: Seconds a replica sits out of dispatch after shedding.
    saturation_backoff: float = 0.05
    #: Seconds between health probes.
    health_interval: float = 0.5
    #: Per-probe timeout.
    health_timeout: float = 2.0
    #: Consecutive probe failures before ejection.
    health_failures: int = 2
    #: Router-side guard timeout for requests with no deadline.
    request_timeout: float = 35.0
    #: Completed search responses the router keeps (LRU); a repeat of
    #: a cached request is answered without touching any replica.
    #: The key is the affinity key — every result-shaping field — so a
    #: hit is exact by construction.  0 disables the cache.
    response_cache_size: int = 256

    def __post_init__(self) -> None:
        if self.health_interval <= 0:
            raise ValueError("health_interval must be positive")
        if self.health_failures < 1:
            raise ValueError("health_failures must be positive")
        if self.response_cache_size < 0:
            raise ValueError("response_cache_size must be >= 0")


class ClusterRouter:
    """Routes the serve protocol across replica servers."""

    def __init__(
        self,
        config: RouterConfig = RouterConfig(),
        telemetry: Telemetry | None = None,
        ops=None,
    ) -> None:
        self.config = config
        self.telemetry = telemetry or Telemetry()
        #: Supervisor hooks for admin actions (scale/drain/restart/
        #: kill) and topology enrichment; ``None`` for a router over
        #: externally-managed replicas.
        self.ops = ops
        self.replicas: dict[str, ReplicaHandle] = {}
        self.ring = HashRing()
        self.draining = False
        self._health_task: asyncio.Task | None = None
        self._failures: dict[str, int] = {}
        self.requests_total = self.telemetry.counter(
            "router.requests.total", "search requests received"
        )
        self.shed = self.telemetry.counter(
            "router.requests.shed",
            "requests shed because every replica was saturated",
        )
        self.redispatches = self.telemetry.counter(
            "router.redispatches",
            "busy-replica retries routed to another replica",
        )
        self.failovers = self.telemetry.counter(
            "router.failovers",
            "in-flight requests redispatched after a replica died",
        )
        self.ejections = self.telemetry.counter(
            "router.replica.ejections", "replicas removed from dispatch"
        )
        self.rejoins = self.telemetry.counter(
            "router.replica.rejoins", "ejected replicas readmitted"
        )
        self.request_latency = self.telemetry.histogram(
            "router.request.latency",
            "seconds from router receipt to response",
        )
        #: affinity key -> completed ok response (sans request id).
        self._response_cache: OrderedDict[str, dict] = OrderedDict()
        self.cache_hits = self.telemetry.counter(
            "router.cache.hits",
            "searches answered from the router response cache",
        )
        self.cache_misses = self.telemetry.counter(
            "router.cache.misses",
            "cacheable searches that had to be dispatched",
        )

    # -- membership ----------------------------------------------------

    async def add_replica(
        self, name: str, host: str, port: int
    ) -> ReplicaHandle:
        """Register a replica and try to bring it into dispatch."""
        replica = ReplicaHandle(
            name, host, port, on_disconnect=self._on_disconnect
        )
        self.replicas[name] = replica
        self._failures[name] = 0
        try:
            await replica.connect()
        except OSError:
            replica.state = STATE_EJECTED
            return replica
        self.ring.add(name)
        return replica

    async def remove_replica(self, name: str) -> None:
        """Forget a replica entirely (scale-down's last step)."""
        replica = self.replicas.pop(name, None)
        self._failures.pop(name, None)
        self.ring.remove(name)
        if replica is not None:
            await replica.close()

    def set_draining(self, name: str, draining: bool = True) -> None:
        """Take a replica out of dispatch without closing it.

        Rolling restarts drain one replica at a time: out of the ring
        (affinity remaps with minimal disruption), out of the
        candidate set, while its in-flight requests finish.
        """
        replica = self.replicas.get(name)
        if replica is None:
            return
        if draining:
            replica.state = STATE_DRAINING
            self.ring.remove(name)
        elif replica.state == STATE_DRAINING:
            replica.state = (
                STATE_HEALTHY if replica.connected else STATE_EJECTED
            )
            if replica.connected:
                self.ring.add(name)

    def _on_disconnect(self, replica: ReplicaHandle) -> None:
        # Reader-task callback: a dropped connection ejects inline so
        # dispatch stops immediately; the health loop handles rejoin.
        if replica.state == STATE_EJECTED:
            self.ring.remove(replica.name)
            self.ejections.increment()

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        self._health_task = asyncio.get_running_loop().create_task(
            self._health_loop()
        )

    async def stop(self) -> None:
        if self._health_task is not None:
            self._health_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._health_task
            self._health_task = None
        for name in list(self.replicas):
            await self.remove_replica(name)

    async def __aenter__(self) -> "ClusterRouter":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- health --------------------------------------------------------

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.health_interval)
            await self.check_health()

    async def check_health(self) -> None:
        """One probe round: eject the unresponsive, rejoin the cured."""
        for replica in list(self.replicas.values()):
            if replica.state == STATE_HEALTHY:
                try:
                    await replica.request(
                        {"op": "ping"},
                        timeout=self.config.health_timeout,
                    )
                    self._failures[replica.name] = 0
                except (ReplicaGone, asyncio.TimeoutError, OSError):
                    count = self._failures.get(replica.name, 0) + 1
                    self._failures[replica.name] = count
                    if (
                        count >= self.config.health_failures
                        or not replica.connected
                    ):
                        replica.state = STATE_EJECTED
                        self.ring.remove(replica.name)
                        self.ejections.increment()
            elif replica.state == STATE_EJECTED:
                await self.try_rejoin(replica)

    async def try_rejoin(self, replica: ReplicaHandle) -> None:
        """Reconnect an ejected replica and readmit it to dispatch."""
        await replica.close()
        try:
            await replica.connect()
        except OSError:
            replica.state = STATE_EJECTED
            return
        self._failures[replica.name] = 0
        self.ring.add(replica.name)
        self.rejoins.increment()

    # -- dispatch ------------------------------------------------------

    def _candidates(self, tried: set[str]) -> list[ReplicaHandle]:
        return [
            replica for replica in self.replicas.values()
            if replica.state == STATE_HEALTHY
            and replica.name not in tried
        ]

    def pick(
        self, key: str, tried: set[str], now: float
    ) -> ReplicaHandle | None:
        """Choose the dispatch target for one attempt."""
        candidates = self._candidates(tried)
        if not candidates:
            return None
        # Saturation backoff is a soft hint: skip recently-shedding
        # replicas while alternatives exist, but when *everyone* is
        # marked, still try the least loaded — its queue may have
        # drained, and its own admission control is the authority.
        fresh = [
            replica for replica in candidates
            if replica.saturated_until <= now
        ] or candidates
        least = min(
            fresh, key=lambda replica: (replica.outstanding, replica.name)
        )
        if self.config.affinity:
            preferred_name = self.ring.lookup(key)
            preferred = next(
                (r for r in fresh if r.name == preferred_name), None
            )
            if (
                preferred is not None
                and preferred.outstanding
                <= least.outstanding + self.config.affinity_slack
            ):
                return preferred
        return least

    def total_outstanding(self) -> int:
        return sum(
            replica.outstanding for replica in self.replicas.values()
        )

    def total_capacity(self) -> int:
        """Summed admission capacities of dispatchable replicas."""
        return sum(
            replica.queue_capacity or DEFAULT_REPLICA_CAPACITY
            for replica in self.replicas.values()
            if replica.state == STATE_HEALTHY
        )

    def _request_timeout(self, data: dict) -> float:
        timeout = data.get("timeout")
        if isinstance(timeout, (int, float)) and timeout > 0:
            # The replica answers `timeout` itself at the deadline;
            # the slack only guards against a hung replica.
            return float(timeout) + 5.0
        return self.config.request_timeout

    async def dispatch_search(self, data: dict) -> dict:
        """Route one search, redispatching around busy/dead replicas."""
        request_id = str(data.get("id", ""))
        self.requests_total.increment()
        loop = asyncio.get_running_loop()
        began = loop.time()
        if self.draining:
            return shed_response(request_id, reason="cluster draining")
        key = affinity_key(data)
        # Searches are deterministic, so the affinity key (query text
        # plus every scoring knob) addresses the exact response; a hit
        # costs the router a dict probe instead of a replica round trip
        # — and is checked before the saturation gate, because serving
        # from cache is precisely what a saturated cluster wants.
        cacheable = (
            self.config.response_cache_size > 0
            and not data.get("no_cache")
        )
        if cacheable:
            cached = self._response_cache.get(key)
            if cached is not None:
                self._response_cache.move_to_end(key)
                self.cache_hits.increment()
                response = dict(cached)
                response["id"] = request_id
                response["cached"] = True
                self.request_latency.observe(loop.time() - began)
                return response
            self.cache_misses.increment()
        if (
            self.replicas
            and self.total_outstanding() >= self.total_capacity()
        ):
            # Backpressure propagation: replica admission queues are
            # collectively full, so shed at the door instead of
            # queueing the request into a guaranteed timeout.
            self.shed.increment()
            return shed_response(request_id, reason="saturated")
        tried: set[str] = set()
        while True:
            replica = self.pick(key, tried, loop.time())
            if replica is None:
                self.shed.increment()
                return shed_response(request_id, reason="saturated")
            tried.add(replica.name)
            replica.dispatched_total += 1
            self.telemetry.counter(
                "router.dispatched",
                "requests dispatched per replica",
                labels={"replica": replica.name},
            ).increment()
            try:
                response = await replica.request(
                    data, timeout=self._request_timeout(data)
                )
            except ReplicaGone:
                # The replica died with our request in flight; searches
                # are deterministic and idempotent, so redispatching is
                # always safe and the client never sees the crash.
                self.failovers.increment()
                continue
            except asyncio.TimeoutError:
                return timeout_response(request_id)
            if response.get("status") == STATUS_SHED:
                replica.shed_total += 1
                replica.saturated_until = (
                    loop.time() + self.config.saturation_backoff
                )
                self.redispatches.increment()
                continue
            response["id"] = request_id
            response["replica"] = replica.name
            if cacheable and response.get("status") == "ok":
                # Only completed searches are cacheable: sheds,
                # timeouts, and errors are transient verdicts.
                entry = dict(response)
                del entry["id"]
                self._response_cache[key] = entry
                self._response_cache.move_to_end(key)
                while (
                    len(self._response_cache)
                    > self.config.response_cache_size
                ):
                    self._response_cache.popitem(last=False)
            self.request_latency.observe(loop.time() - began)
            return response

    # -- protocol ------------------------------------------------------

    async def handle_line(self, line: str) -> dict:
        """One wire line in, one response out (never raises)."""
        try:
            data = decode_line(line)
        except ProtocolError as error:
            return error_response("", str(error))
        request_id = str(data.get("id", ""))
        operation = data.get("op", "search")
        if operation == "ping":
            return {"id": request_id, "status": "ok", "op": "ping"}
        if operation == "status":
            return {
                "id": request_id,
                "status": "ok",
                "cluster": self.topology(),
            }
        if operation == "telemetry":
            return {
                "id": request_id,
                "status": "ok",
                "telemetry": await self.aggregate_telemetry(),
            }
        if operation == "admin":
            return await self.handle_admin(data)
        try:
            decode_search(data)
        except ProtocolError as error:
            return error_response(request_id, str(error))
        return await self.dispatch_search(data)

    def topology(self) -> dict:
        """Cluster status: one row per replica plus totals."""
        rows = [
            self.replicas[name].describe()
            for name in sorted(self.replicas)
        ]
        if self.ops is not None:
            self.ops.enrich_topology(rows)
        healthy = sum(
            1 for row in rows if row["state"] == STATE_HEALTHY
        )
        return {
            "replicas": rows,
            "healthy": healthy,
            "total": len(rows),
            "draining": self.draining,
            "outstanding": self.total_outstanding(),
            "capacity": self.total_capacity(),
        }

    async def aggregate_telemetry(self) -> dict:
        """Router + per-replica + merged cluster-wide telemetry.

        Replica snapshots are fetched with their histogram sample
        windows so the aggregate's percentiles are computed over the
        pooled samples with the shared nearest-rank definition — then
        the samples are stripped from the per-replica view to keep the
        response lean.
        """
        snapshots: dict[str, dict] = {}
        for name in sorted(self.replicas):
            replica = self.replicas[name]
            if replica.state not in (STATE_HEALTHY, STATE_DRAINING):
                continue
            try:
                answer = await replica.request(
                    {"op": "telemetry", "samples": True},
                    timeout=self.config.health_timeout,
                )
            except (ReplicaGone, asyncio.TimeoutError, OSError):
                continue
            snapshots[name] = answer.get("telemetry", {})
        aggregate = merge_snapshots(list(snapshots.values()))
        for snapshot in snapshots.values():
            for shaped in snapshot.get("histograms", {}).values():
                shaped.pop("samples", None)
        return {
            "router": self.telemetry.snapshot(),
            "replicas": snapshots,
            "aggregate": aggregate,
        }

    async def handle_admin(self, data: dict) -> dict:
        """Control-channel actions (``repro cluster`` subcommands)."""
        request_id = str(data.get("id", ""))
        action = data.get("action", "status")
        if action == "status":
            return {
                "id": request_id,
                "status": "ok",
                "cluster": self.topology(),
            }
        if self.ops is None:
            return error_response(
                request_id,
                f"admin action {action!r} needs a supervised cluster "
                "(repro cluster up)",
            )
        try:
            if action == "scale":
                count = int(data.get("replicas", 0))
                result = await self.ops.scale(count)
            elif action == "drain":
                result = await self.ops.drain()
            elif action == "restart":
                result = await self.ops.rolling_restart()
            elif action == "kill":
                result = await self.ops.kill(str(data.get("replica", "")))
            else:
                return error_response(
                    request_id, f"unknown admin action {action!r}"
                )
        except ValueError as error:
            return error_response(request_id, str(error))
        return {"id": request_id, "status": "ok", **result}
