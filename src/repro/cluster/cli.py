"""``repro cluster``: launch and operate a local replica cluster.

``up`` runs the supervisor in the foreground: it spawns N replica
``repro serve`` processes, serves the router on a TCP port, and writes
``cluster.json`` (router address + pid) into the state directory so
the other subcommands can find the cluster without arguments.  Every
other subcommand is a thin client over the router's ``admin``
operation::

    repro cluster up --replicas 3 --port 7720
    repro cluster status
    repro cluster scale 5
    repro cluster restart          # rolling, zero downtime
    repro cluster kill r1          # chaos: SIGKILL one replica
    repro cluster drain            # graceful cluster shutdown

SIGTERM/SIGINT to the ``up`` process triggers the same graceful drain
as ``repro cluster drain``.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import os
import signal
import sys
from pathlib import Path

from repro.cluster.router import RouterConfig
from repro.cluster.supervisor import ClusterConfig, ClusterSupervisor
from repro.serve.server import add_serve_arguments, serve_tcp

#: Where ``up`` records the router address for the other subcommands.
DEFAULT_STATE_DIR = ".repro-cluster"
STATE_FILE = "cluster.json"


def _serve_flags(args: argparse.Namespace) -> tuple[str, ...]:
    """Forward the service-shape flags to every replica process."""
    flags = [
        "--jobs", str(args.jobs),
        "--shards", str(args.shards),
        "--batch-size", str(args.batch_size),
        "--max-wait", str(args.max_wait),
        "--queue-capacity", str(args.queue_capacity),
        "--timeout", str(args.timeout),
        "--db-sequences", str(args.db_sequences),
        "--db-seed", str(args.db_seed),
        "--drain-grace", str(args.drain_grace),
        "--precompute" if args.precompute else "--no-precompute",
    ]
    if args.cache_dir:
        flags += ["--cache-dir", args.cache_dir]
    if getattr(args, "db_path", None):
        flags += ["--db-path", args.db_path]
    if getattr(args, "store_dir", None):
        flags += ["--store-dir", args.store_dir]
    return tuple(flags)


def write_state(state_dir: str, state: dict) -> Path:
    path = Path(state_dir)
    path.mkdir(parents=True, exist_ok=True)
    target = path / STATE_FILE
    target.write_text(json.dumps(state, indent=2) + "\n")
    return target


def read_state(state_dir: str) -> dict | None:
    target = Path(state_dir) / STATE_FILE
    if not target.exists():
        return None
    return json.loads(target.read_text())


def resolve_address(args: argparse.Namespace) -> tuple[str, int]:
    """Router address from ``--connect`` or the state file."""
    if getattr(args, "connect", None):
        host, _, port = args.connect.rpartition(":")
        return host or "127.0.0.1", int(port)
    state = read_state(args.state_dir)
    if state is None:
        raise SystemExit(
            f"no running cluster recorded in {args.state_dir!r}; "
            "start one with `repro cluster up` or pass --connect"
        )
    return state["host"], int(state["port"])


async def admin_request(
    host: str, port: int, payload: dict, timeout: float = 600.0
) -> dict:
    """One admin round-trip against the router."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write((json.dumps(payload) + "\n").encode())
        await writer.drain()
        raw = await asyncio.wait_for(reader.readline(), timeout)
    finally:
        writer.close()
        with contextlib.suppress(ConnectionError):
            await writer.wait_closed()
    if not raw:
        raise SystemExit("router closed the connection mid-request")
    return json.loads(raw)


def print_topology(cluster: dict) -> None:
    print(
        f"cluster: {cluster['healthy']}/{cluster['total']} healthy, "
        f"outstanding {cluster['outstanding']}/{cluster['capacity']}"
        + (", draining" if cluster.get("draining") else "")
    )
    for row in cluster.get("replicas", []):
        process = ""
        if "pid" in row:
            process = (
                f"  pid={row['pid']} alive={row['alive']}"
                f" restarts={row['restarts']} gen={row['generation']}"
            )
        print(
            f"  {row['name']:<4} {row['address']:<21} "
            f"{row['state']:<10} outstanding={row['outstanding']} "
            f"dispatched={row['dispatched']} shed={row['shed']}"
            + process
        )


async def run_up(args: argparse.Namespace) -> int:
    """Foreground supervisor: router + N replica processes."""
    config = ClusterConfig(
        replicas=args.replicas,
        host=args.host,
        port=args.port,
        serve_args=_serve_flags(args),
        router=RouterConfig(
            affinity=args.affinity,
            request_timeout=max(35.0, args.timeout + 5.0),
            response_cache_size=args.response_cache,
        ),
        drain_grace=args.drain_grace,
    )
    supervisor = ClusterSupervisor(config)
    await supervisor.start()
    try:
        server = await serve_tcp(
            supervisor.router, args.host, args.port
        )
    except OSError:
        await supervisor.stop()
        raise
    address = server.sockets[0].getsockname()
    state_path = write_state(args.state_dir, {
        "host": address[0],
        "port": address[1],
        "pid": os.getpid(),
        "replicas": args.replicas,
    })
    print(
        f"cluster up: router on {address[0]}:{address[1]}, "
        f"{args.replicas} replicas "
        f"(jobs={args.jobs}, shards={args.shards}, "
        f"queue={args.queue_capacity}); state in {state_path}",
        flush=True,
    )

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    registered: list[signal.Signals] = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError, ValueError):
            loop.add_signal_handler(signum, stop.set)
            registered.append(signum)
    try:
        stop_wait = loop.create_task(stop.wait())
        shutdown_wait = loop.create_task(supervisor.shutdown.wait())
        await asyncio.wait(
            (stop_wait, shutdown_wait),
            return_when=asyncio.FIRST_COMPLETED,
        )
        for task in (stop_wait, shutdown_wait):
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
        if stop.is_set() and not supervisor.shutdown.is_set():
            print("draining cluster (signal)...", flush=True)
            await supervisor.drain()
    finally:
        for signum in registered:
            loop.remove_signal_handler(signum)
        server.close()
        await server.wait_closed()
        await supervisor.stop()
        with contextlib.suppress(OSError):
            state_path.unlink()
    print("cluster down: replicas drained and stopped", flush=True)
    return 0


async def run_admin(args: argparse.Namespace, payload: dict) -> int:
    host, port = resolve_address(args)
    response = await admin_request(
        host, port, {"op": "admin", "id": "cli", **payload},
        timeout=args.wait,
    )
    if response.get("status") != "ok":
        print(
            f"error: {response.get('error', response)}",
            file=sys.stderr,
        )
        return 1
    if "cluster" in response:
        print_topology(response["cluster"])
    else:
        body = {
            key: value for key, value in response.items()
            if key not in ("id", "status")
        }
        print(json.dumps(body, sort_keys=True))
    return 0


def _add_client_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--state-dir", default=DEFAULT_STATE_DIR,
        help="where `cluster up` recorded the router address",
    )
    parser.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="router address (overrides the state file)",
    )
    parser.add_argument(
        "--wait", type=float, default=600.0,
        help="seconds to wait for the admin action (default 600)",
    )


def main_cluster(argv: list[str] | None = None) -> int:
    """``repro cluster``: multi-replica serving topology."""
    parser = argparse.ArgumentParser(
        prog="repro cluster",
        description="Replicated alignment-search serving: router + N "
        "replica servers with health checks, graceful drain, and "
        "rolling restarts (see docs/cluster.md).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    up = commands.add_parser(
        "up", help="launch router + replicas in the foreground"
    )
    up.add_argument(
        "--replicas", type=int, default=3,
        help="replica server processes (default 3)",
    )
    up.add_argument("--host", default="127.0.0.1")
    up.add_argument(
        "--port", type=int, default=0,
        help="router TCP port (default 0: pick a free one)",
    )
    up.add_argument(
        "--state-dir", default=DEFAULT_STATE_DIR,
        help="directory for cluster.json (default .repro-cluster)",
    )
    up.add_argument(
        "--affinity", action=argparse.BooleanOptionalAction,
        default=True,
        help="consistent-hash affinity for repeat queries (default on)",
    )
    up.add_argument(
        "--response-cache", type=int, default=256, metavar="N",
        help="router-side LRU of completed search responses; repeats "
        "are answered without touching a replica (default 256, 0 off)",
    )
    add_serve_arguments(up)

    status = commands.add_parser(
        "status", help="topology, health, and per-replica load"
    )
    _add_client_arguments(status)

    scale = commands.add_parser(
        "scale", help="grow or shrink the replica set"
    )
    scale.add_argument("replicas", type=int)
    _add_client_arguments(scale)

    drain = commands.add_parser(
        "drain", help="graceful cluster shutdown (finish in-flight)"
    )
    _add_client_arguments(drain)

    restart = commands.add_parser(
        "restart", help="rolling restart, one replica at a time"
    )
    _add_client_arguments(restart)

    kill = commands.add_parser(
        "kill", help="SIGKILL one replica (chaos testing)"
    )
    kill.add_argument("replica", help="replica name, e.g. r1")
    _add_client_arguments(kill)

    args = parser.parse_args(argv)
    if args.command == "up":
        return asyncio.run(run_up(args))
    payloads = {
        "status": {"action": "status"},
        "scale": {
            "action": "scale",
            "replicas": getattr(args, "replicas", 0),
        },
        "drain": {"action": "drain"},
        "restart": {"action": "restart"},
        "kill": {
            "action": "kill",
            "replica": getattr(args, "replica", ""),
        },
    }
    return asyncio.run(run_admin(args, payloads[args.command]))
