"""Multi-replica serving tier: router, replication, zero-downtime ops.

The cluster layer puts N :mod:`repro.serve` replica servers behind one
router process speaking the identical JSON-lines protocol (clients are
unchanged), adding:

* least-loaded dispatch with consistent-hash affinity for cacheable
  repeat queries (:mod:`repro.cluster.hashing`);
* full shard replication — any replica answers any query, so results
  are byte-identical to a standalone server;
* backpressure propagation — replica admission sheds are retried
  elsewhere, and the router sheds only when the whole cluster is
  saturated (:mod:`repro.cluster.router`);
* zero-downtime operations — health-checked ejection and rejoin,
  graceful drain, rolling restart, and chaos-kill self-healing
  (:mod:`repro.cluster.supervisor`), driven by the ``repro cluster``
  CLI (:mod:`repro.cluster.cli`).

See ``docs/cluster.md``.
"""

from repro.cluster.hashing import HashRing, affinity_key, stable_hash
from repro.cluster.replicas import ReplicaGone, ReplicaHandle
from repro.cluster.router import ClusterRouter, RouterConfig
from repro.cluster.supervisor import (
    ClusterConfig,
    ClusterSupervisor,
    free_port,
)

__all__ = [
    "ClusterConfig",
    "ClusterRouter",
    "ClusterSupervisor",
    "HashRing",
    "ReplicaGone",
    "ReplicaHandle",
    "RouterConfig",
    "affinity_key",
    "free_port",
    "stable_hash",
]
