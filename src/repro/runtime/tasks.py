"""Task payloads and their worker-side execution functions.

A task is ``(kind, payload)`` where ``kind`` names an entry in
:data:`TASK_KINDS` and ``payload`` is a picklable tuple.  Workers look
the function up by kind, so nothing but plain data crosses the process
boundary; the same functions run unchanged in-process when the executor
degrades (or was never parallel to begin with).

Kinds
-----
``simulate``
    ``(trace_ref, config, track_occupancy)`` — ``trace_ref`` is either a
    :class:`~repro.isa.trace.Trace` (in-process executors) or the path
    of a spilled ``.trace.npz`` (pool workers).  Returns the
    :class:`~repro.uarch.results.SimulationResult`.
``simulate_batch``
    ``(trace_ref, configs)`` — one trace under many configurations
    through the lockstep engine
    (:func:`repro.uarch.simulator.simulate_batch`); returns the list of
    results in config order, each byte-identical to the corresponding
    ``simulate`` task's.
``trace``
    ``(name, budget, database_config, query, cache_root)`` — runs the
    instrumented kernel, stores the trace into the content-addressed
    cache at ``cache_root``, and returns a summary dict (mix counts,
    scores, truncation, subjects, trace content digest).  The trace
    itself travels through the cache file, not the result queue.
``lint``
    ``(trace_ref, expected_digest, include_roundtrip)`` — runs the
    TraceLint rules (:mod:`repro.verify.tracelint`) over one trace and
    returns the report as a plain dict.  ``trace_ref`` follows the
    ``simulate`` convention (a Trace in-process, a spilled ``.npz``
    path across the pool), which is what lets ``repro lint-trace
    --all --jobs N`` fan the workload set out over the worker pool.
``sweep_point``
    ``(trace_ref, config, track_occupancy, cache_root, digest)`` — one
    sweep grid point: simulates, stores the result into the
    content-addressed cache at ``cache_root`` under ``digest`` *from
    the worker*, and returns the result as a plain dict.  The
    worker-side store is what makes sweeps resumable even when the
    orchestrating process dies mid-batch: every finished point is
    durable the moment its simulation ends, and the re-run finds it as
    a cache hit.
``sweep_batch``
    ``(trace_ref, configs, cache_root, digests)`` — several sweep grid
    points over one trace, simulated as a lockstep batch.  Each point's
    result is stored under its own digest from the worker the moment
    the batch finishes (same per-point cache entries, byte-for-byte, as
    ``sweep_point`` would produce), and the return value is the list of
    result dicts in config order.
``search_shard``
    ``(params_key, queries, database_config, shard_index, shard_count
    [, store_root])`` — scans one deterministic shard of the database
    for a *batch* of queries (``queries`` is a tuple of ``(id,
    residues)`` pairs) and returns ``{"scans": [ShardScan dict, ...]}``
    in query order.  ``database_config`` is either a generator config
    (the worker materializes and memoizes the database) or a
    :class:`~repro.store.packdb.PackedDatabaseRef` (the worker mmaps
    the shared snapshot).  With ``store_root``, BLAST query lookup
    tables resolve through the artifact store
    (:mod:`repro.store.artifacts`) before compiling.
``precompute_words``
    ``(threshold, word_size[, store_root])`` — expands every possible
    BLAST word's neighborhood into the worker's memo (the moral
    equivalent of BLAST's shipped neighbor tables).  With
    ``store_root`` the expansion is loaded from / persisted to the
    artifact store, so only the first process ever pays it.  The
    serving layer dispatches one per worker at startup so later query
    compiles are memo lookups.
``flow_facts``
    ``(path, relative, module, is_package, spec)`` — scans one module's
    source into :class:`repro.verify.flow.ModuleFacts` (symbol table,
    raw call descriptors, dataflow facts).  ``repro lint-flow --jobs N``
    fans the whole-repo scan out over the pool; linking stays in the
    parent.
``selftest``
    Tiny deterministic operations used by the executor's test suite and
    fault-injection scenarios.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.isa.serialize import load_trace
from repro.isa.trace import Trace
from repro.uarch.simulator import simulate, simulate_batch


@dataclass(frozen=True)
class Task:
    """One unit of work for an executor."""

    kind: str
    payload: tuple
    label: str = ""


def execute_simulate(payload: tuple):
    trace_ref, config, track_occupancy = payload
    trace = trace_ref if isinstance(trace_ref, Trace) else load_trace(trace_ref)
    return simulate(trace, config, track_occupancy=track_occupancy)


def execute_simulate_batch(payload: tuple) -> list:
    trace_ref, configs = payload
    trace = trace_ref if isinstance(trace_ref, Trace) else load_trace(trace_ref)
    return simulate_batch(trace, list(configs))


def execute_trace(payload: tuple) -> dict:
    from repro.bio.synthetic import generate_database
    from repro.kernels.registry import create_kernel
    from repro.runtime.cache import ResultCache
    from repro.runtime.keys import trace_digest

    name, budget, database_config, query, cache_root = payload
    database = generate_database(database_config)
    kernel = create_kernel(name)
    run = kernel.run(query, database, record=True, limit=budget)
    assert run.trace is not None
    content_digest = trace_digest(run.trace)
    ResultCache(cache_root).store_trace(content_digest, run.trace)
    return {
        "kernel_name": run.kernel_name,
        "mix_counts": list(run.mix.counts),
        "scores": dict(run.scores),
        "truncated": run.truncated,
        "subjects_processed": run.subjects_processed,
        "trace_digest": content_digest,
    }


def execute_sweep_point(payload: tuple) -> dict:
    from repro.runtime.cache import ResultCache, result_to_dict

    trace_ref, config, track_occupancy, cache_root, digest = payload
    trace = trace_ref if isinstance(trace_ref, Trace) else load_trace(trace_ref)
    result = simulate(trace, config, track_occupancy=track_occupancy)
    ResultCache(cache_root).store_result(digest, result)
    return result_to_dict(result)


def execute_sweep_batch(payload: tuple) -> list:
    from repro.runtime.cache import ResultCache, result_to_dict

    trace_ref, configs, cache_root, digests = payload
    trace = trace_ref if isinstance(trace_ref, Trace) else load_trace(trace_ref)
    results = simulate_batch(trace, list(configs))
    cache = ResultCache(cache_root)
    for digest, result in zip(digests, results):
        cache.store_result(digest, result)
    return [result_to_dict(result) for result in results]


def execute_lint(payload: tuple) -> dict:
    from repro.verify import lint_trace

    trace_ref, expected_digest, include_roundtrip = payload
    trace = trace_ref if isinstance(trace_ref, Trace) else load_trace(trace_ref)
    report = lint_trace(
        trace,
        expected_digest=expected_digest,
        include_roundtrip=include_roundtrip,
    )
    return report.to_dict()


#: Worker-side memo of generated databases, keyed by config identity.
#: Synthetic generation is deterministic, so equality of the config
#: repr implies equality of the database.  Small cap: a serving worker
#: sees one or two database configs, never an unbounded stream.
_database_memo: dict[str, object] = {}
_DATABASE_MEMO_CAP = 4

#: Worker-side memo of compiled query engines, keyed by
#: (params_key, query_text).  Engine compilation (BLAST neighbourhood
#: expansion in particular) dominates short-query scan time, so reuse
#: across requests is what makes batched serving fast.
_engine_memo: dict[tuple, object] = {}
_ENGINE_MEMO_CAP = 128


def _memo_database(database_config):
    from repro.bio.synthetic import generate_database
    from repro.store.packdb import PackedDatabaseRef, open_packed

    key = repr(database_config)
    database = _database_memo.get(key)
    if database is None:
        if len(_database_memo) >= _DATABASE_MEMO_CAP:
            _database_memo.clear()
        if isinstance(database_config, PackedDatabaseRef):
            # An mmap open, not a materialization: the worker shares
            # the snapshot's page-cache pages with every other process
            # scanning it.
            database = open_packed(database_config.path)
        else:
            database = generate_database(database_config)
        _database_memo[key] = database
    return database


def _memo_engine(
    params,
    params_key: tuple,
    query_id: str,
    query_text: str,
    store_root: str | None = None,
):
    from repro.align.batch import make_engine, make_query

    key = (params_key, query_text)
    engine = _engine_memo.get(key)
    if engine is None:
        if len(_engine_memo) >= _ENGINE_MEMO_CAP:
            _engine_memo.clear()
        if store_root is not None and params.algorithm == "blast":
            from repro.store.artifacts import (
                ArtifactStore,
                cached_blast_engine,
            )

            engine = cached_blast_engine(
                ArtifactStore(store_root),
                params,
                make_query(query_id, query_text),
            )
        else:
            engine = make_engine(params, make_query(query_id, query_text))
        _engine_memo[key] = engine
    return engine


def execute_search_shard(payload: tuple) -> dict:
    from repro.align.batch import SearchParams, scan_shard

    params_key, queries, database_config, shard_index, shard_count = (
        payload[:5]
    )
    store_root = payload[5] if len(payload) > 5 else None
    params = SearchParams.from_key(params_key)
    database = _memo_database(database_config)
    engines = [
        _memo_engine(
            params, tuple(params_key), query_id, query_text, store_root
        )
        for query_id, query_text in queries
    ]
    scans = scan_shard(params, engines, database, shard_index, shard_count)
    return {"scans": [scan.to_dict() for scan in scans]}


def execute_precompute_words(payload: tuple) -> dict:
    from repro.align.blast.wordfinder import precompute_neighborhoods

    threshold, word_size = payload[:2]
    store_root = payload[2] if len(payload) > 2 else None
    start = time.perf_counter()
    if store_root is not None:
        from repro.store.artifacts import ArtifactStore, ensure_neighbor_table

        entries = ensure_neighbor_table(
            ArtifactStore(store_root),
            threshold=threshold, word_size=word_size,
        )
    else:
        entries = precompute_neighborhoods(
            threshold=threshold, word_size=word_size
        )
    return {
        "entries": entries,
        "seconds": time.perf_counter() - start,
    }


def execute_flow_facts(payload: tuple):
    from repro.verify.flow import scan_module

    path, relative, module, is_package, spec = payload
    return scan_module(
        Path(path).read_text(), relative, module, is_package, spec
    )


def execute_selftest(payload: tuple):
    operation, *arguments = payload
    if operation == "square":
        return arguments[0] * arguments[0]
    if operation == "raise":
        raise RuntimeError("selftest failure")
    if operation == "sleep":
        # Fault-injection scaffolding: serve never submits selftest
        # tasks, so this sleep cannot reach the event loop.
        time.sleep(arguments[0])  # flowlint: disable=FL004
        return "slept"
    if operation == "exit_once":
        # Dies the first time only: the marker file survives the crash,
        # so the retry succeeds.  Used to simulate a killed worker.
        marker = Path(arguments[0])
        if not marker.exists():
            marker.touch()
            os._exit(42)
        return "recovered"
    if operation == "sleep_once":
        # Hangs the first time only (simulates a stuck worker); the
        # retry returns promptly.
        marker = Path(arguments[0])
        if not marker.exists():
            marker.touch()
            # Same scaffolding-only reasoning as the "sleep" operation.
            time.sleep(arguments[1])  # flowlint: disable=FL004
        return "recovered"
    raise ValueError(f"unknown selftest operation {operation!r}")


TASK_KINDS = {
    "simulate": execute_simulate,
    "simulate_batch": execute_simulate_batch,
    "sweep_point": execute_sweep_point,
    "sweep_batch": execute_sweep_batch,
    "trace": execute_trace,
    "lint": execute_lint,
    "search_shard": execute_search_shard,
    "precompute_words": execute_precompute_words,
    "flow_facts": execute_flow_facts,
    "selftest": execute_selftest,
}


def run_task(kind: str, payload: tuple):
    """Execute one task in the calling process."""
    try:
        function = TASK_KINDS[kind]
    except KeyError:
        raise ValueError(f"unknown task kind {kind!r}") from None
    return function(payload)
