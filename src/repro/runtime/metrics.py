"""Lightweight run metrics: task timings, cache hits, retries.

The engine records one :class:`TaskRecord` per task it resolves —
whether from the persistent cache or by executing it — and the CLI
writes the aggregate as a JSON run report (``--report``).  Counters are
monotonically increasing, so callers can diff :meth:`RunMetrics.counts`
snapshots around an experiment to report per-experiment numbers.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

#: Default percentile points for latency summaries.
DEFAULT_PERCENTILES = (50, 95, 99)


def percentiles(
    values: list[float],
    points: tuple[int, ...] = DEFAULT_PERCENTILES,
) -> dict[str, float]:
    """Nearest-rank percentiles of ``values`` as ``{"p50": ...}``.

    The single percentile definition shared by run reports
    (:meth:`RunMetrics.to_dict`) and the serving telemetry histograms
    (:class:`repro.serve.telemetry.Histogram`), so latency numbers from
    both layers are directly comparable.  Empty input yields ``{}``.
    """
    if not values:
        return {}
    ordered = sorted(values)
    count = len(ordered)
    result = {}
    for point in points:
        # Nearest-rank: ceil(p/100 * n), clamped to [1, n].
        rank = max(1, min(count, -(-point * count // 100)))
        result[f"p{point}"] = ordered[rank - 1]
    return result


@dataclass(frozen=True)
class TaskRecord:
    """How one task was resolved."""

    kind: str          # "simulate" | "trace"
    label: str
    cache_hit: bool
    wall_time: float
    retries: int = 0
    where: str = "cache"  # "cache" | "pool" | "inline"


@dataclass
class RunMetrics:
    """Accumulates task records for one runtime's lifetime."""

    records: list[TaskRecord] = field(default_factory=list)

    def record_hit(self, kind: str, label: str, wall_time: float) -> None:
        """One task served from the persistent cache."""
        self.records.append(TaskRecord(
            kind=kind, label=label, cache_hit=True, wall_time=wall_time,
        ))

    def record_executed(
        self, kind: str, label: str, wall_time: float,
        retries: int, where: str,
    ) -> None:
        """One task actually executed (pool or in-process)."""
        self.records.append(TaskRecord(
            kind=kind, label=label, cache_hit=False, wall_time=wall_time,
            retries=retries, where=where,
        ))

    # -- aggregates ---------------------------------------------------------

    @property
    def cache_hits(self) -> int:
        """Tasks served from the persistent cache."""
        return sum(1 for record in self.records if record.cache_hit)

    @property
    def cache_misses(self) -> int:
        """Tasks that had to execute."""
        return sum(1 for record in self.records if not record.cache_hit)

    def executions(self, kind: str) -> int:
        """Number of tasks of one kind that actually executed."""
        return sum(
            1 for record in self.records
            if record.kind == kind and not record.cache_hit
        )

    @property
    def total_retries(self) -> int:
        """Retries across all executed tasks."""
        return sum(record.retries for record in self.records)

    def counts(self) -> dict[str, int]:
        """Snapshot of the headline counters (diffable)."""
        return {
            "tasks": len(self.records),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "simulate_executions": self.executions("simulate"),
            "sweep_executions": self.executions("sweep"),
            "trace_executions": self.executions("trace"),
            "search_executions": self.executions("search"),
            "retries": self.total_retries,
        }

    # -- reporting ----------------------------------------------------------

    def to_dict(self, **extra) -> dict:
        """Full report: totals plus the per-task records."""
        totals = self.counts()
        totals["wall_time"] = round(
            sum(record.wall_time for record in self.records), 6
        )
        totals["wall_time_percentiles"] = {
            point: round(value, 6)
            for point, value in percentiles(
                [record.wall_time for record in self.records]
            ).items()
        }
        return {
            **extra,
            "totals": totals,
            "tasks": [asdict(record) for record in self.records],
        }

    def write_report(self, path: str | Path, **extra) -> None:
        """Write the JSON run report to ``path``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(**extra), indent=2) + "\n")
