"""Parallel experiment execution with a persistent result cache.

The runtime decomposes simulation campaigns into ``trace(workload)``
and ``simulate(trace, config)`` tasks, executes them on a
multiprocessing pool (or serially) with timeouts, bounded retries, and
in-process degradation, and memoizes every task's artifact in an
on-disk content-addressed cache.  See ``docs/runtime.md``.
"""

from repro.runtime.cache import CacheStats, ResultCache
from repro.runtime.engine import ExperimentRuntime
from repro.runtime.executor import (
    KillFirstN,
    PoolExecutor,
    SerialExecutor,
    TaskError,
    TaskOutcome,
)
from repro.runtime.keys import (
    code_salt,
    config_key,
    simulate_key,
    trace_digest,
    trace_task_key,
)
from repro.runtime.metrics import RunMetrics, TaskRecord
from repro.runtime.tasks import Task

__all__ = [
    "CacheStats",
    "ExperimentRuntime",
    "KillFirstN",
    "PoolExecutor",
    "ResultCache",
    "RunMetrics",
    "SerialExecutor",
    "Task",
    "TaskError",
    "TaskOutcome",
    "TaskRecord",
    "code_salt",
    "config_key",
    "simulate_key",
    "trace_digest",
    "trace_task_key",
]
