"""Cache-key construction for the experiment runtime.

Every artifact in the persistent result cache is addressed by a digest
of everything that can change its content:

* the **structural configuration key** (every knob of
  :class:`~repro.uarch.config.ProcessorConfig` and its nested memory /
  branch dataclasses — this is the same key the in-process memo in
  :mod:`repro.analysis.context` uses);
* the **trace content digest** (hash of the exact columnar bytes the
  on-disk format stores) or, for trace-generation tasks, the workload
  spec (name, budget, database configuration, query residues);
* the global ``REPRO_SCALE`` factor;
* a **code-version salt**: a hash over every ``repro`` source file, so
  any change to the simulator, kernels, or inputs invalidates the whole
  cache rather than silently serving stale results.
"""

from __future__ import annotations

import dataclasses
import hashlib
from pathlib import Path

from repro.isa.trace import Trace
from repro.uarch.config import ProcessorConfig
from repro.workloads.suite import scale_factor

#: Bump to invalidate every cache entry on a format/semantic change.
CACHE_SCHEMA_VERSION = 1


def config_key(config: ProcessorConfig) -> tuple:
    """Structural identity of everything that can change a simulation."""
    memory = config.memory
    branch = config.branch

    def cache_key(cache) -> tuple:
        return (cache.size_bytes, cache.associativity, cache.line_bytes,
                cache.latency)

    def tlb_key(tlb) -> tuple:
        return (tlb.entries, tlb.associativity, tlb.page_bytes,
                tlb.miss_penalty)

    return (
        config.name,
        config.fetch_width,
        config.dispatch_width,
        config.retire_width,
        config.inflight,
        config.gpr,
        config.vpr,
        config.fpr,
        tuple(sorted((fu.value, count) for fu, count in config.units.items())),
        config.issue_queue_size,
        config.ibuffer_size,
        config.retire_queue,
        config.dcache_read_ports,
        config.dcache_write_ports,
        config.max_outstanding_misses,
        config.store_queue_size,
        config.wide_load_extra_latency,
        memory.name,
        cache_key(memory.il1),
        cache_key(memory.dl1),
        cache_key(memory.l2),
        memory.memory_latency,
        tlb_key(memory.itlb),
        tlb_key(memory.dtlb),
        memory.sequential_prefetch,
        branch.kind,
        branch.table_entries,
        branch.btb_entries,
        branch.btb_associativity,
        branch.btb_miss_penalty,
        branch.max_predicted_branches,
        branch.mispredict_recovery,
    )


_code_salt: str | None = None


def code_salt() -> str:
    """Digest of every ``repro`` source file (memoized per process)."""
    global _code_salt
    if _code_salt is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.blake2b(digest_size=16)
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _code_salt = digest.hexdigest()
    return _code_salt


#: id(trace) -> (pinned trace, digest).  The pin keeps the id stable;
#: the handful of suite traces live for the process anyway.
_trace_digests: dict[int, tuple[Trace, str]] = {}


def compute_trace_digest(trace: Trace) -> str:
    """Content hash of a trace (name + exact on-disk column bytes).

    Pure recomputation, no memo — this is the single definition of
    trace content identity, shared by the cache keys and by
    :mod:`repro.verify`'s digest-recomputation check.
    """
    from repro.isa.serialize import trace_columns

    digest = hashlib.blake2b(digest_size=16)
    digest.update(trace.name.encode())
    columns = trace_columns(trace)
    for column in sorted(columns):
        array = columns[column]
        digest.update(column.encode())
        digest.update(str(array.dtype).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def trace_digest(trace: Trace) -> str:
    """Memoized :func:`compute_trace_digest` (keyed on trace identity)."""
    memo = _trace_digests.get(id(trace))
    if memo is not None and memo[0] is trace:
        return memo[1]
    value = compute_trace_digest(trace)
    _trace_digests[id(trace)] = (trace, value)
    return value


def _hash_material(material: tuple) -> str:
    return hashlib.blake2b(repr(material).encode(), digest_size=16).hexdigest()


def simulate_key(
    trace: Trace, config: ProcessorConfig, track_occupancy: bool = False
) -> str:
    """Cache address of one ``simulate(trace, config)`` task's result."""
    return _hash_material((
        "simulate",
        CACHE_SCHEMA_VERSION,
        code_salt(),
        trace_digest(trace),
        config_key(config),
        bool(track_occupancy),
        scale_factor(),
    ))


def database_cache_key(database_config) -> object:
    """Digest material for a database configuration.

    A generator config contributes its ``dataclasses.astuple`` (as
    always).  A :class:`~repro.store.packdb.PackedDatabaseRef`
    contributes the *source key* its header pinned at pack time — the
    very same astuple, JSON round-tripped — so a packed snapshot of
    config C hashes identically to C itself and the two paths share
    every cache entry byte-for-byte.
    """
    from repro.store.packdb import PackedDatabaseRef, packed_source_key

    if isinstance(database_config, PackedDatabaseRef):
        return packed_source_key(database_config)
    return dataclasses.astuple(database_config)


def trace_task_key(name: str, budget: int, database_config, query) -> str:
    """Cache address of one ``trace(workload)`` task's result."""
    return _hash_material((
        "trace",
        CACHE_SCHEMA_VERSION,
        code_salt(),
        name,
        int(budget),
        database_cache_key(database_config),
        query.identifier,
        query.text,
        scale_factor(),
    ))


def search_shard_key(
    params_key: tuple,
    query_text: str,
    database_config,
    shard_index: int,
    shard_count: int,
) -> str:
    """Cache address of one per-query ``search_shard`` scan.

    Keyed on the query *residues* (not its identifier): a shard scan's
    raw scores depend only on the sequence content, the search params,
    and the shard geometry, so renamed queries still hit.
    """
    return _hash_material((
        "search-shard",
        CACHE_SCHEMA_VERSION,
        code_salt(),
        tuple(params_key),
        query_text,
        database_cache_key(database_config),
        int(shard_index),
        int(shard_count),
    ))
