"""Task executors: in-process serial and multiprocessing pool.

Both executors share one contract: ``run_many(tasks)`` returns a list of
:class:`TaskOutcome` in task order, or raises :class:`TaskError` when a
task cannot be completed anywhere.

The :class:`PoolExecutor` owns long-lived worker processes, one task in
flight per worker.  Failure handling, in escalating order:

* a task that raises in a worker, a worker that dies mid-task, or a
  task that exceeds the per-task timeout is **retried** (fresh worker,
  bounded by ``retries``);
* a task that exhausts its retries **degrades** to in-process
  execution in the parent — a dying pool slows the campaign down but
  never kills it;
* a pool whose workers cannot start at all marks itself broken and runs
  everything in-process.

Fault injection for tests goes through the picklable ``fault_hook``
callable, invoked in the worker before each task (see
:class:`KillFirstN`).
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
from collections import deque
from dataclasses import dataclass, field

from repro.runtime.tasks import Task, run_task


class TaskError(RuntimeError):
    """A task failed in the pool and in the in-process fallback."""


@dataclass
class TaskOutcome:
    """How one task completed."""

    value: object
    retries: int = 0
    wall_time: float = 0.0
    where: str = "inline"  # "pool" | "inline"


class SerialExecutor:
    """Runs every task in the calling process, in order."""

    jobs = 1
    #: Payloads may hold live objects; nothing crosses a process boundary.
    inline = True

    def run_many(self, tasks: list[Task]) -> list[TaskOutcome]:
        return [_run_inline(task, retries=0) for task in tasks]

    def close(self) -> None:
        pass

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _run_inline(task: Task, retries: int) -> TaskOutcome:
    start = time.perf_counter()
    try:
        value = run_task(task.kind, task.payload)
    except Exception as error:
        raise TaskError(
            f"task {task.label or task.kind!r} failed in-process: {error}"
        ) from error
    return TaskOutcome(
        value=value,
        retries=retries,
        wall_time=time.perf_counter() - start,
        where="inline",
    )


def _worker_loop(inbox, outbox, fault_hook) -> None:
    while True:
        item = inbox.get()
        if item is None:
            return
        index, kind, payload = item
        if fault_hook is not None:
            fault_hook(kind, payload)
        try:
            value = run_task(kind, payload)
        except BaseException as error:
            outbox.put((index, False, f"{type(error).__name__}: {error}"))
        else:
            outbox.put((index, True, value))


class KillFirstN:
    """Fault-injection hook: hard-kill the worker for the first N tasks.

    The strike counter is a shared :func:`multiprocessing.Value`, so the
    limit holds across all workers; ``kind`` restricts the faults to one
    task kind (e.g. only ``"simulate"`` tasks).
    """

    def __init__(self, count: int, kind: str | None = None) -> None:
        self.limit = count
        self.kind = kind
        self._struck = multiprocessing.Value("i", 0)

    def __call__(self, kind: str, payload: tuple) -> None:
        if self.kind is not None and kind != self.kind:
            return
        with self._struck.get_lock():
            if self._struck.value >= self.limit:
                return
            self._struck.value += 1
        os._exit(43)


@dataclass
class _Worker:
    process: object
    inbox: object
    task_index: int | None = None
    started: float = field(default=0.0)


class PoolExecutor:
    """Multiprocessing worker pool with per-task timeout and retries."""

    inline = False

    def __init__(
        self,
        jobs: int,
        *,
        task_timeout: float | None = None,
        retries: int = 2,
        fault_hook=None,
        poll_interval: float = 0.02,
        start_method: str | None = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.task_timeout = task_timeout
        self.retries = max(0, int(retries))
        self.fault_hook = fault_hook
        self.poll_interval = poll_interval
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._context = multiprocessing.get_context(start_method)
        self._outbox = None
        self._workers: list[_Worker] = []
        self._broken = False

    # -- worker lifecycle ---------------------------------------------------

    def _start_worker(self) -> _Worker:
        inbox = self._context.Queue()
        process = self._context.Process(
            target=_worker_loop,
            args=(inbox, self._outbox, self.fault_hook),
            daemon=True,
        )
        process.start()
        return _Worker(process=process, inbox=inbox)

    def _ensure_started(self) -> None:
        if self._outbox is None:
            self._outbox = self._context.Queue()
            self._workers = [self._start_worker() for _ in range(self.jobs)]

    def close(self) -> None:
        """Shut the workers down (the pool can be restarted afterwards)."""
        for worker in self._workers:
            try:
                worker.inbox.put(None)
            except (OSError, ValueError):
                # A dead worker's queue may already be closed; the join /
                # terminate pass below still reaps the process.
                pass
        for worker in self._workers:
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        self._workers = []
        self._outbox = None

    def __enter__(self) -> "PoolExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- scheduling ---------------------------------------------------------

    def run_many(self, tasks: list[Task]) -> list[TaskOutcome]:
        tasks = list(tasks)
        if not tasks:
            return []
        if not self._broken:
            try:
                self._ensure_started()
            except Exception:
                self._broken = True
        if self._broken:
            return [_run_inline(task, retries=0) for task in tasks]

        outcomes: list[TaskOutcome | None] = [None] * len(tasks)
        pending: deque[int] = deque(range(len(tasks)))
        attempts = [0] * len(tasks)

        def fail(index: int) -> None:
            if outcomes[index] is not None:
                return
            attempts[index] += 1
            if attempts[index] <= self.retries:
                pending.append(index)
            else:
                # Graceful degradation: the pool gave up on this task,
                # the parent process has not.
                outcomes[index] = _run_inline(tasks[index], attempts[index])

        while pending or any(w.task_index is not None for w in self._workers):
            for worker in self._workers:
                while worker.task_index is None and pending:
                    index = pending.popleft()
                    if outcomes[index] is not None:
                        continue
                    worker.task_index = index
                    worker.started = time.perf_counter()
                    worker.inbox.put(
                        (index, tasks[index].kind, tasks[index].payload)
                    )
            try:
                index, ok, value = self._outbox.get(timeout=self.poll_interval)
            except queue_module.Empty:
                pass
            else:
                worker = next(
                    (w for w in self._workers if w.task_index == index), None
                )
                elapsed = (
                    time.perf_counter() - worker.started if worker else 0.0
                )
                if worker is not None:
                    worker.task_index = None
                if ok:
                    if outcomes[index] is None:
                        outcomes[index] = TaskOutcome(
                            value=value,
                            retries=attempts[index],
                            wall_time=elapsed,
                            where="pool",
                        )
                else:
                    fail(index)

            now = time.perf_counter()
            for position, worker in enumerate(self._workers):
                if worker.task_index is None:
                    if not worker.process.is_alive():
                        self._workers[position] = self._start_worker()
                    continue
                index = worker.task_index
                if not worker.process.is_alive():
                    self._workers[position] = self._start_worker()
                    fail(index)
                elif (
                    self.task_timeout is not None
                    and now - worker.started > self.task_timeout
                ):
                    worker.process.terminate()
                    worker.process.join(timeout=1.0)
                    self._workers[position] = self._start_worker()
                    fail(index)

        return outcomes  # type: ignore[return-value]
