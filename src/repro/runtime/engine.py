"""The experiment runtime: executor + persistent cache + metrics.

:class:`ExperimentRuntime` is the substrate the analysis layer runs on.
It decomposes campaign work into ``trace(workload)`` and
``simulate(trace, config)`` tasks, resolves each against the
content-addressed cache first, and fans the misses out on the
configured executor.  Without an explicit ``cache_dir`` the cache lives
in a temporary directory for the runtime's lifetime (still used to ship
traces to workers); with one, results survive across processes and a
warm rerun executes nothing.
"""

from __future__ import annotations

import tempfile
import time

from repro.isa.trace import InstructionMix, Trace
from repro.kernels.base import KernelRun
from repro.runtime.cache import ResultCache
from repro.runtime.executor import (
    PoolExecutor,
    SerialExecutor,
    TaskError,
    TaskOutcome,
)
from repro.runtime.keys import simulate_key, trace_digest, trace_task_key
from repro.runtime.metrics import RunMetrics
from repro.runtime.tasks import Task
from repro.uarch.config import ProcessorConfig
from repro.uarch.results import SimulationResult
from repro.workloads.suite import WorkloadSuite

#: A simulate request: (trace, config, track_occupancy).
SimRequest = tuple[Trace, ProcessorConfig, bool]


class ExperimentRuntime:
    """Cached, parallel execution of trace and simulate tasks."""

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | None = None,
        *,
        task_timeout: float | None = None,
        retries: int = 2,
        fault_hook=None,
        executor=None,
        metrics: RunMetrics | None = None,
        strict: bool = False,
    ) -> None:
        #: Refuse to cache or simulate traces that fail lint
        #: (repro.verify.tracelint); see docs/verify.md.
        self.strict = strict
        self.metrics = metrics or RunMetrics()
        self.persistent = cache_dir is not None
        self._temporary = None
        if cache_dir is None:
            self._temporary = tempfile.TemporaryDirectory(
                prefix="repro-runtime-"
            )
            cache_dir = self._temporary.name
        self.cache = ResultCache(cache_dir)
        if executor is not None:
            self.executor = executor
        elif jobs > 1:
            self.executor = PoolExecutor(
                jobs,
                task_timeout=task_timeout,
                retries=retries,
                fault_hook=fault_hook,
            )
        else:
            self.executor = SerialExecutor()

    @property
    def jobs(self) -> int:
        """Worker-process count (1 for the serial executor)."""
        return getattr(self.executor, "jobs", 1)

    def close(self) -> None:
        """Shut workers down and drop an ephemeral cache directory."""
        self.executor.close()
        if self._temporary is not None:
            self._temporary.cleanup()
            self._temporary = None

    def __enter__(self) -> "ExperimentRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- simulate tasks -----------------------------------------------------

    def simulate(
        self,
        trace: Trace,
        config: ProcessorConfig,
        track_occupancy: bool = False,
    ) -> SimulationResult:
        """One cached/executed simulation."""
        return self.simulate_many([(trace, config, track_occupancy)])[0]

    def simulate_many(
        self, requests: list[SimRequest]
    ) -> list[SimulationResult]:
        """Resolve a batch of simulations, fanning misses out in parallel.

        Duplicate requests (same trace content, config, and occupancy
        flag) execute once; results come back in request order.
        """
        requests = [
            (trace, config, bool(occupancy))
            for trace, config, occupancy in requests
        ]
        results: list[SimulationResult | None] = [None] * len(requests)
        miss_indices: dict[str, list[int]] = {}
        miss_order: list[str] = []
        for index, (trace, config, occupancy) in enumerate(requests):
            digest = simulate_key(trace, config, occupancy)
            if digest in miss_indices:
                miss_indices[digest].append(index)
                continue
            start = time.perf_counter()
            cached = self.cache.load_result(digest)
            if cached is not None:
                results[index] = cached
                self.metrics.record_hit(
                    "simulate",
                    _simulate_label(trace, config, occupancy),
                    time.perf_counter() - start,
                )
            else:
                miss_indices[digest] = [index]
                miss_order.append(digest)

        tasks = []
        for digest in miss_order:
            trace, config, occupancy = requests[miss_indices[digest][0]]
            if self.executor.inline:
                if self.strict:
                    from repro.verify import check_trace

                    check_trace(trace)
                trace_ref: object = trace
            else:
                trace_ref = str(self.cache.store_trace(
                    trace_digest(trace), trace, strict=self.strict
                ))
            tasks.append(Task(
                kind="simulate",
                payload=(trace_ref, config, occupancy),
                label=_simulate_label(trace, config, occupancy),
            ))
        outcomes = self.executor.run_many(tasks)
        for digest, task, outcome in zip(miss_order, tasks, outcomes):
            result = outcome.value
            self.cache.store_result(digest, result)
            self.metrics.record_executed(
                "simulate", task.label, outcome.wall_time,
                outcome.retries, outcome.where,
            )
            for index in miss_indices[digest]:
                results[index] = result
        return results  # type: ignore[return-value]

    # -- trace tasks --------------------------------------------------------

    def run_workloads(
        self,
        suite: WorkloadSuite,
        names: tuple[str, ...] | None = None,
        budget: int | None = None,
    ) -> dict[str, KernelRun]:
        """Generate (or recall) traced runs for many workloads at once.

        Fills the suite's in-process trace cache, so subsequent
        ``suite.trace(name)`` / ``suite.run(name)`` calls are hits.
        """
        names = tuple(names) if names is not None else suite.names
        budget = suite.trace_budget if budget is None else budget
        runs: dict[str, KernelRun] = {}
        misses: list[tuple[str, str]] = []
        tasks: list[Task] = []
        for name in names:
            cached = suite.cached_run(name, budget)
            if cached is not None:
                runs[name] = cached
                continue
            digest = trace_task_key(
                name, budget, suite.database_config, suite.query
            )
            start = time.perf_counter()
            from_disk = self.cache.load_kernel_run(digest, strict=self.strict)
            if from_disk is not None:
                runs[name] = from_disk
                suite.install_run(name, from_disk, budget)
                self.metrics.record_hit(
                    "trace", f"trace:{name}", time.perf_counter() - start
                )
                continue
            misses.append((name, digest))
            tasks.append(Task(
                kind="trace",
                payload=(
                    name, budget, suite.database_config, suite.query,
                    str(self.cache.root),
                ),
                label=f"trace:{name}",
            ))
        outcomes = self.executor.run_many(tasks)
        for (name, digest), outcome in zip(misses, outcomes):
            runs[name] = self._install_trace_outcome(
                suite, name, budget, digest, outcome
            )
        return runs

    def _install_trace_outcome(
        self,
        suite: WorkloadSuite,
        name: str,
        budget: int,
        digest: str,
        outcome: TaskOutcome,
    ) -> KernelRun:
        summary = outcome.value
        trace = self.cache.load_trace(
            summary["trace_digest"], strict=self.strict
        )
        if trace is None:
            raise TaskError(
                f"trace task for {name!r} reported digest "
                f"{summary['trace_digest']} but the cache has no such trace"
            )
        run = KernelRun(
            kernel_name=summary["kernel_name"],
            mix=InstructionMix(counts=tuple(summary["mix_counts"])),
            trace=trace,
            scores=dict(summary["scores"]),
            truncated=summary["truncated"],
            subjects_processed=summary["subjects_processed"],
        )
        self.cache.store_kernel_run(digest, run, summary["trace_digest"])
        self.metrics.record_executed(
            "trace", f"trace:{name}", outcome.wall_time,
            outcome.retries, outcome.where,
        )
        suite.install_run(name, run, budget)
        return run


def _simulate_label(
    trace: Trace, config: ProcessorConfig, occupancy: bool
) -> str:
    suffix = "+occ" if occupancy else ""
    return f"simulate:{trace.name}@{config.name}/{config.memory.name}{suffix}"
