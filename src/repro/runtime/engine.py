"""The experiment runtime: executor + persistent cache + metrics.

:class:`ExperimentRuntime` is the substrate the analysis layer runs on.
It decomposes campaign work into ``trace(workload)`` and
``simulate(trace, config)`` tasks, resolves each against the
content-addressed cache first, and fans the misses out on the
configured executor.  Without an explicit ``cache_dir`` the cache lives
in a temporary directory for the runtime's lifetime (still used to ship
traces to workers); with one, results survive across processes and a
warm rerun executes nothing.
"""

from __future__ import annotations

import tempfile
import time

from repro.align.batch import SearchParams
from repro.align.types import ShardScan
from repro.bio.sequence import Sequence
from repro.isa.trace import InstructionMix, Trace
from repro.kernels.base import KernelRun
from repro.runtime.cache import ResultCache
from repro.runtime.executor import (
    PoolExecutor,
    SerialExecutor,
    TaskError,
    TaskOutcome,
)
from repro.runtime.keys import (
    search_shard_key,
    simulate_key,
    trace_digest,
    trace_task_key,
)
from repro.runtime.metrics import RunMetrics
from repro.runtime.tasks import Task
from repro.uarch.config import ProcessorConfig
from repro.uarch.pipeline.lockstep import LOCKSTEP_WIDTH
from repro.uarch.results import SimulationResult
from repro.workloads.suite import WorkloadSuite

#: A simulate request: (trace, config, track_occupancy).
SimRequest = tuple[Trace, ProcessorConfig, bool]

#: A search-shard request:
#: (params, query, database_config, shard_index, shard_count).
SearchRequest = tuple[SearchParams, Sequence, object, int, int]


class ExperimentRuntime:
    """Cached, parallel execution of trace and simulate tasks."""

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | None = None,
        *,
        store_dir: str | None = None,
        task_timeout: float | None = None,
        retries: int = 2,
        fault_hook=None,
        executor=None,
        metrics: RunMetrics | None = None,
        strict: bool = False,
    ) -> None:
        #: Compiled-artifact store root (repro.store.artifacts); when
        #: set, search workers resolve neighbor tables and query
        #: lookup tables store-first instead of recompiling.
        self.store_dir = store_dir
        #: Refuse to cache or simulate traces that fail lint
        #: (repro.verify.tracelint); see docs/verify.md.
        self.strict = strict
        self.metrics = metrics or RunMetrics()
        self.persistent = cache_dir is not None
        self._temporary = None
        if cache_dir is None:
            self._temporary = tempfile.TemporaryDirectory(
                prefix="repro-runtime-"
            )
            cache_dir = self._temporary.name
        self.cache = ResultCache(cache_dir)
        if strict:
            # Strict runs also prove the *code* sound before spending
            # compute on it: the whole-repo flow rules (FL001-FL005,
            # docs/verify.md) run once per process per source state and
            # raise FlowLintError on any violation.  A cached task
            # whose body can reach nondeterminism, or a config field
            # that escapes the cache key, would poison every result
            # this runtime caches.  The linked graph pickle lands in
            # the runtime's own cache dir, so repeat strict runs warm.
            from repro.verify.flow import check_flow

            check_flow(cache_dir=cache_dir)
        if executor is not None:
            self.executor = executor
        elif jobs > 1:
            self.executor = PoolExecutor(
                jobs,
                task_timeout=task_timeout,
                retries=retries,
                fault_hook=fault_hook,
            )
        else:
            self.executor = SerialExecutor()
        # In-process memo over the persistent search-scan entries:
        # serving workloads probe the same digests thousands of times,
        # and a dict hit skips the disk read + JSON decode entirely.
        self._scan_memo: dict[str, ShardScan] = {}
        self._scan_memo_cap = 4096

    @property
    def jobs(self) -> int:
        """Worker-process count (1 for the serial executor)."""
        return getattr(self.executor, "jobs", 1)

    def close(self) -> None:
        """Shut workers down and drop an ephemeral cache directory."""
        self.executor.close()
        if self._temporary is not None:
            self._temporary.cleanup()
            self._temporary = None

    def __enter__(self) -> "ExperimentRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- simulate tasks -----------------------------------------------------

    def simulate(
        self,
        trace: Trace,
        config: ProcessorConfig,
        track_occupancy: bool = False,
    ) -> SimulationResult:
        """One cached/executed simulation."""
        return self.simulate_many([(trace, config, track_occupancy)])[0]

    def _lockstep_groups(
        self,
        requests: list[SimRequest],
        miss_order: list[str],
        miss_indices: dict[str, list[int]],
    ) -> list[tuple[list[str], Trace, list[ProcessorConfig]]]:
        """Group pending misses into lockstep batches.

        Misses over the same trace object (the sweep and figure-driver
        shape: one trace under many configurations) group into batches
        of up to :data:`~repro.uarch.pipeline.lockstep.LOCKSTEP_WIDTH`
        configs; occupancy-tracking requests and leftovers stay
        singleton groups, which execute as plain scalar tasks.
        """
        groups: list[tuple[list[str], Trace, list[ProcessorConfig]]] = []
        open_group: dict[int, tuple] = {}
        for digest in miss_order:
            trace, config, occupancy = requests[miss_indices[digest][0]]
            if occupancy:
                groups.append(([digest], trace, [config]))
                continue
            group = open_group.get(id(trace))
            if group is None or len(group[0]) >= LOCKSTEP_WIDTH:
                group = ([digest], trace, [config])
                open_group[id(trace)] = group
                groups.append(group)
            else:
                group[0].append(digest)
                group[2].append(config)
        return groups

    def simulate_many(
        self, requests: list[SimRequest], *, lockstep: bool = True
    ) -> list[SimulationResult]:
        """Resolve a batch of simulations, fanning misses out in parallel.

        Duplicate requests (same trace content, config, and occupancy
        flag) execute once; results come back in request order.  With
        ``lockstep`` (the default), misses sharing a trace execute as
        lockstep multi-config batches; results are byte-identical
        either way.
        """
        requests = [
            (trace, config, bool(occupancy))
            for trace, config, occupancy in requests
        ]
        results: list[SimulationResult | None] = [None] * len(requests)
        miss_indices: dict[str, list[int]] = {}
        miss_order: list[str] = []
        for index, (trace, config, occupancy) in enumerate(requests):
            digest = simulate_key(trace, config, occupancy)
            if digest in miss_indices:
                miss_indices[digest].append(index)
                continue
            start = time.perf_counter()
            cached = self.cache.load_result(digest)
            if cached is not None:
                results[index] = cached
                self.metrics.record_hit(
                    "simulate",
                    _simulate_label(trace, config, occupancy),
                    time.perf_counter() - start,
                )
            else:
                miss_indices[digest] = [index]
                miss_order.append(digest)

        if lockstep:
            groups = self._lockstep_groups(requests, miss_order, miss_indices)
        else:
            groups = [
                ([digest],
                 requests[miss_indices[digest][0]][0],
                 [requests[miss_indices[digest][0]][1]])
                for digest in miss_order
            ]
        tasks = []
        for digests, trace, configs in groups:
            if self.executor.inline:
                if self.strict:
                    from repro.verify import check_trace

                    check_trace(trace)
                trace_ref: object = trace
            else:
                trace_ref = str(self.cache.store_trace(
                    trace_digest(trace), trace, strict=self.strict
                ))
            if len(digests) == 1:
                occupancy = requests[miss_indices[digests[0]][0]][2]
                tasks.append(Task(
                    kind="simulate",
                    payload=(trace_ref, configs[0], occupancy),
                    label=_simulate_label(trace, configs[0], occupancy),
                ))
            else:
                tasks.append(Task(
                    kind="simulate_batch",
                    payload=(trace_ref, tuple(configs)),
                    label=_batch_label(trace, configs),
                ))
        outcomes = self.executor.run_many(tasks)
        for (digests, trace, configs), outcome in zip(groups, outcomes):
            values = (
                outcome.value if len(digests) > 1 else [outcome.value]
            )
            # One metrics record per point: a lockstep batch counts
            # exactly like the scalar runs it replaces (same labels,
            # wall time split across the batch, retries charged once).
            share = outcome.wall_time / len(digests)
            for position, (digest, config, result) in enumerate(
                zip(digests, configs, values)
            ):
                occupancy = requests[miss_indices[digest][0]][2]
                self.metrics.record_executed(
                    "simulate",
                    _simulate_label(trace, config, occupancy),
                    share,
                    outcome.retries if position == 0 else 0,
                    outcome.where,
                )
                self.cache.store_result(digest, result)
                for index in miss_indices[digest]:
                    results[index] = result
        return results  # type: ignore[return-value]

    # -- sweep point tasks --------------------------------------------------

    def sweep_points(
        self, requests: list[SimRequest], *, lockstep: bool = True
    ) -> list[SimulationResult]:
        """Resolve a batch of sweep grid points (cache-first, parallel).

        Identical in contract to :meth:`simulate_many` — duplicates
        collapse, results come back in request order, and the cache
        addresses are the same :func:`~repro.runtime.keys.simulate_key`
        digests, so sweep points and ad-hoc figure runs share entries
        byte-for-byte.  The difference is durability: ``sweep_point`` /
        ``sweep_batch`` workers store their results into the persistent
        cache *themselves*, so a point survives even if this
        orchestrating process dies before the batch returns.  With
        ``lockstep`` (the default), points sharing a trace execute as
        lockstep multi-config batches; the per-point cache entries stay
        byte-for-byte identical either way.
        """
        requests = [
            (trace, config, bool(occupancy))
            for trace, config, occupancy in requests
        ]
        results: list[SimulationResult | None] = [None] * len(requests)
        miss_indices: dict[str, list[int]] = {}
        miss_order: list[str] = []
        for index, (trace, config, occupancy) in enumerate(requests):
            digest = simulate_key(trace, config, occupancy)
            if digest in miss_indices:
                miss_indices[digest].append(index)
                continue
            start = time.perf_counter()
            cached = self.cache.load_result(digest)
            if cached is not None:
                results[index] = cached
                self.metrics.record_hit(
                    "sweep",
                    _simulate_label(trace, config, occupancy),
                    time.perf_counter() - start,
                )
            else:
                miss_indices[digest] = [index]
                miss_order.append(digest)

        if lockstep:
            groups = self._lockstep_groups(requests, miss_order, miss_indices)
        else:
            groups = [
                ([digest],
                 requests[miss_indices[digest][0]][0],
                 [requests[miss_indices[digest][0]][1]])
                for digest in miss_order
            ]
        tasks = []
        for digests, trace, configs in groups:
            if self.executor.inline:
                if self.strict:
                    from repro.verify import check_trace

                    check_trace(trace)
                trace_ref: object = trace
            else:
                trace_ref = str(self.cache.store_trace(
                    trace_digest(trace), trace, strict=self.strict
                ))
            if len(digests) == 1:
                occupancy = requests[miss_indices[digests[0]][0]][2]
                tasks.append(Task(
                    kind="sweep_point",
                    payload=(
                        trace_ref, configs[0], occupancy,
                        str(self.cache.root), digests[0],
                    ),
                    label=_simulate_label(trace, configs[0], occupancy),
                ))
            else:
                tasks.append(Task(
                    kind="sweep_batch",
                    payload=(
                        trace_ref, tuple(configs),
                        str(self.cache.root), tuple(digests),
                    ),
                    label=_batch_label(trace, configs),
                ))
        outcomes = self.executor.run_many(tasks)
        from repro.runtime.cache import result_from_dict

        for (digests, trace, configs), outcome in zip(groups, outcomes):
            values = (
                outcome.value if len(digests) > 1 else [outcome.value]
            )
            # Per-point metrics, exactly as on the scalar path (see
            # simulate_many): counters diffed around a sweep keep
            # meaning "grid points executed" under either engine.
            share = outcome.wall_time / len(digests)
            for position, (digest, config, value) in enumerate(
                zip(digests, configs, values)
            ):
                occupancy = requests[miss_indices[digest][0]][2]
                self.metrics.record_executed(
                    "sweep",
                    _simulate_label(trace, config, occupancy),
                    share,
                    outcome.retries if position == 0 else 0,
                    outcome.where,
                )
                result = result_from_dict(value)
                for index in miss_indices[digest]:
                    results[index] = result
        return results  # type: ignore[return-value]

    # -- search shard tasks -------------------------------------------------

    def search_shards(
        self, requests: list[SearchRequest]
    ) -> list[ShardScan]:
        """Resolve a batch of per-query shard scans (the serving hot path).

        Each request is ``(params, query, database_config, shard_index,
        shard_count)``; results come back in request order.  Duplicate
        requests execute once, cached scans are served from the
        in-process memo (and from disk when the cache is persistent), and
        misses that share ``(params, shard)`` coordinates are grouped
        into one multi-query task so BLAST batches share a single pass
        over the shard and workers amortize database generation and
        engine compilation.
        """
        results: list[ShardScan | None] = [None] * len(requests)
        digest_indices: dict[str, list[int]] = {}
        groups: dict[tuple, list[str]] = {}
        for index, request in enumerate(requests):
            params, query, database_config, shard_index, shard_count = request
            digest = search_shard_key(
                params.key(), query.text, database_config,
                shard_index, shard_count,
            )
            if digest in digest_indices:
                # Duplicate within this call: share the first
                # occurrence's result (already filled on the hit path;
                # the miss path fills every recorded index later).
                digest_indices[digest].append(index)
                results[index] = results[digest_indices[digest][0]]
                continue
            start = time.perf_counter()
            scan = self._scan_memo.get(digest)
            if scan is None and self.persistent:
                cached = self.cache.load_search(digest)
                if cached is not None:
                    scan = ShardScan.from_dict(cached)
                    self._remember_scan(digest, scan)
            if scan is not None:
                digest_indices[digest] = [index]
                results[index] = scan
                self.metrics.record_hit(
                    "search",
                    _search_label(params, 1, shard_index, shard_count),
                    time.perf_counter() - start,
                )
                continue
            digest_indices[digest] = [index]
            group = (
                params.key(), repr(database_config),
                shard_index, shard_count,
            )
            groups.setdefault(group, []).append(digest)

        tasks: list[Task] = []
        ordered_groups: list[list[str]] = []
        for group, digests in groups.items():
            params_key, _, shard_index, shard_count = group
            first = requests[digest_indices[digests[0]][0]]
            database_config = first[2]
            queries = tuple(
                (request[1].identifier, request[1].text)
                for request in (
                    requests[digest_indices[digest][0]] for digest in digests
                )
            )
            tasks.append(Task(
                kind="search_shard",
                payload=(
                    params_key, queries, database_config,
                    shard_index, shard_count, self.store_dir,
                ),
                label=_search_label(
                    SearchParams.from_key(params_key), len(queries),
                    shard_index, shard_count,
                ),
            ))
            ordered_groups.append(digests)
        outcomes = self.executor.run_many(tasks)
        for digests, task, outcome in zip(ordered_groups, tasks, outcomes):
            self.metrics.record_executed(
                "search", task.label, outcome.wall_time,
                outcome.retries, outcome.where,
            )
            for digest, scan_dict in zip(digests, outcome.value["scans"]):
                if self.persistent:
                    # An ephemeral cache dies with the runtime, so the
                    # serving hot path skips the disk round-trip and
                    # reuses scans through the in-process memo alone.
                    self.cache.store_search(digest, scan_dict)
                scan = ShardScan.from_dict(scan_dict)
                self._remember_scan(digest, scan)
                for index in digest_indices[digest]:
                    results[index] = scan
        return results  # type: ignore[return-value]

    def precompute_words(
        self, threshold: int | None = None, word_size: int | None = None
    ) -> None:
        """Expand the full BLAST neighborhood table in every worker.

        One task per worker (the executor assigns pending tasks to idle
        workers in order, so ``jobs`` identical tasks land one per
        process).  Afterwards query compilation in the scan path costs
        memo lookups instead of branch-and-bound expansions — the
        serving layer calls this once at startup.
        """
        from repro.align.blast.wordfinder import (
            DEFAULT_THRESHOLD,
            DEFAULT_WORD_SIZE,
        )

        payload = (
            DEFAULT_THRESHOLD if threshold is None else threshold,
            DEFAULT_WORD_SIZE if word_size is None else word_size,
            self.store_dir,
        )
        tasks = [
            Task(
                kind="precompute_words",
                payload=payload,
                label=f"precompute:words@T{payload[0]}",
            )
            for _ in range(self.jobs)
        ]
        outcomes = self.executor.run_many(tasks)
        for task, outcome in zip(tasks, outcomes):
            self.metrics.record_executed(
                "search", task.label, outcome.wall_time,
                outcome.retries, outcome.where,
            )

    def _remember_scan(self, digest: str, scan: ShardScan) -> None:
        if len(self._scan_memo) >= self._scan_memo_cap:
            self._scan_memo.clear()
        self._scan_memo[digest] = scan

    # -- trace tasks --------------------------------------------------------

    def run_workloads(
        self,
        suite: WorkloadSuite,
        names: tuple[str, ...] | None = None,
        budget: int | None = None,
    ) -> dict[str, KernelRun]:
        """Generate (or recall) traced runs for many workloads at once.

        Fills the suite's in-process trace cache, so subsequent
        ``suite.trace(name)`` / ``suite.run(name)`` calls are hits.
        """
        names = tuple(names) if names is not None else suite.names
        budget = suite.trace_budget if budget is None else budget
        runs: dict[str, KernelRun] = {}
        misses: list[tuple[str, str]] = []
        tasks: list[Task] = []
        for name in names:
            cached = suite.cached_run(name, budget)
            if cached is not None:
                runs[name] = cached
                continue
            digest = trace_task_key(
                name, budget, suite.database_config, suite.query
            )
            start = time.perf_counter()
            from_disk = self.cache.load_kernel_run(digest, strict=self.strict)
            if from_disk is not None:
                runs[name] = from_disk
                suite.install_run(name, from_disk, budget)
                self.metrics.record_hit(
                    "trace", f"trace:{name}", time.perf_counter() - start
                )
                continue
            misses.append((name, digest))
            tasks.append(Task(
                kind="trace",
                payload=(
                    name, budget, suite.database_config, suite.query,
                    str(self.cache.root),
                ),
                label=f"trace:{name}",
            ))
        outcomes = self.executor.run_many(tasks)
        for (name, digest), outcome in zip(misses, outcomes):
            runs[name] = self._install_trace_outcome(
                suite, name, budget, digest, outcome
            )
        return runs

    def _install_trace_outcome(
        self,
        suite: WorkloadSuite,
        name: str,
        budget: int,
        digest: str,
        outcome: TaskOutcome,
    ) -> KernelRun:
        summary = outcome.value
        trace = self.cache.load_trace(
            summary["trace_digest"], strict=self.strict
        )
        if trace is None:
            raise TaskError(
                f"trace task for {name!r} reported digest "
                f"{summary['trace_digest']} but the cache has no such trace"
            )
        run = KernelRun(
            kernel_name=summary["kernel_name"],
            mix=InstructionMix(counts=tuple(summary["mix_counts"])),
            trace=trace,
            scores=dict(summary["scores"]),
            truncated=summary["truncated"],
            subjects_processed=summary["subjects_processed"],
        )
        self.cache.store_kernel_run(digest, run, summary["trace_digest"])
        self.metrics.record_executed(
            "trace", f"trace:{name}", outcome.wall_time,
            outcome.retries, outcome.where,
        )
        suite.install_run(name, run, budget)
        return run


def _search_label(
    params: SearchParams, queries: int, shard_index: int, shard_count: int
) -> str:
    return (
        f"search:{params.algorithm}x{queries}"
        f"@shard{shard_index}/{shard_count}"
    )


def _simulate_label(
    trace: Trace, config: ProcessorConfig, occupancy: bool
) -> str:
    suffix = "+occ" if occupancy else ""
    return f"simulate:{trace.name}@{config.name}/{config.memory.name}{suffix}"


def _batch_label(trace: Trace, configs: list[ProcessorConfig]) -> str:
    return f"lockstep:{trace.name}@{len(configs)} configs"
