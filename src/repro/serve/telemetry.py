"""Serving telemetry: counters, gauges, and latency histograms.

Generalizes the batch-run accounting in :mod:`repro.runtime.metrics`
for a long-lived service: metrics are named instruments in a registry,
snapshots are cheap, and the same nearest-rank percentile definition
(:func:`repro.runtime.metrics.percentiles`) produces the p50/p95/p99
numbers, so service latency reports and ``--report`` run reports are
directly comparable.

Two export formats: a JSON-able dict (for the ``telemetry`` protocol
op and loadgen report artifacts) and Prometheus text exposition (for
scraping).  Instruments are plain objects guarded by the event loop —
the service mutates them only from coroutine context — but nothing
here awaits, so they are equally usable from synchronous code.

Labels: a registry may carry process-wide labels (every cluster
replica runs with ``labels={"replica": "r0"}``) and individual
instruments may carry their own (the router keeps one dispatch counter
per replica).  Both render as ordinary Prometheus label blocks, and
:func:`merge_snapshots` folds many labelled replica snapshots into one
cluster-wide aggregate — summing counters and gauges, and re-deriving
histogram percentiles from the pooled sample windows via the shared
``percentiles`` definition.
"""

from __future__ import annotations

import json
from collections import deque

from repro.runtime.metrics import DEFAULT_PERCENTILES, percentiles


def _label_suffix(labels: dict[str, str] | None) -> str:
    """Render instrument labels into the registry/snapshot key."""
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{value}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing count (requests, errors, sheds)."""

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labels: dict[str, str] | None = None,
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.labels = dict(labels) if labels else {}
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """Instantaneous level (queue depth, in-flight batches)."""

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labels: dict[str, str] | None = None,
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.labels = dict(labels) if labels else {}
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += float(amount)

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Sample distribution with bounded memory (latency, occupancy).

    Keeps exact ``count``/``total`` accumulators forever and the most
    recent ``window`` observations for percentile estimates, so a
    long-running service neither grows without bound nor loses its
    lifetime averages.
    """

    def __init__(
        self,
        name: str,
        help_text: str = "",
        window: int = 4096,
        labels: dict[str, str] | None = None,
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.labels = dict(labels) if labels else {}
        self.count = 0
        self.total = 0.0
        self.samples: deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.samples.append(value)

    def percentiles(
        self, points: tuple[int, ...] = DEFAULT_PERCENTILES
    ) -> dict[str, float]:
        """Nearest-rank percentiles over the retained window."""
        return percentiles(list(self.samples), points)

    def snapshot(self, include_samples: bool = False) -> dict:
        mean = self.total / self.count if self.count else 0.0
        shaped = {
            "count": self.count,
            "total": round(self.total, 6),
            "mean": round(mean, 6),
            **{
                point: round(value, 6)
                for point, value in self.percentiles().items()
            },
        }
        if include_samples:
            # The windowed samples travel with the snapshot so a
            # downstream aggregator (the cluster router) can pool
            # windows across replicas and re-derive exact nearest-rank
            # percentiles instead of averaging percentiles.
            shaped["samples"] = [round(s, 6) for s in self.samples]
        return shaped


class Telemetry:
    """Registry of named instruments for one service instance.

    ``labels`` apply to every instrument in the registry — a cluster
    replica passes ``{"replica": "r0"}`` so its Prometheus export and
    snapshots are distinguishable after router-side aggregation.
    """

    def __init__(self, labels: dict[str, str] | None = None) -> None:
        self.labels = dict(labels) if labels else {}
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(
        self,
        name: str,
        help_text: str = "",
        labels: dict[str, str] | None = None,
    ) -> Counter:
        """The counter called ``name`` (created on first use)."""
        key = name + _label_suffix(labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(
                name, help_text, labels
            )
        return instrument

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labels: dict[str, str] | None = None,
    ) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        key = name + _label_suffix(labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, help_text, labels)
        return instrument

    def histogram(
        self,
        name: str,
        help_text: str = "",
        window: int = 4096,
        labels: dict[str, str] | None = None,
    ) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        key = name + _label_suffix(labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(
                name, help_text, window, labels
            )
        return instrument

    def snapshot(self, include_samples: bool = False) -> dict:
        """All instruments as one JSON-able dict."""
        shaped = {
            "counters": {
                key: counter.snapshot()
                for key, counter in sorted(self._counters.items())
            },
            "gauges": {
                key: gauge.snapshot()
                for key, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                key: histogram.snapshot(include_samples)
                for key, histogram in sorted(self._histograms.items())
            },
        }
        if self.labels:
            shaped["labels"] = dict(sorted(self.labels.items()))
        return shaped

    def to_json(self) -> str:
        """Snapshot rendered as a JSON document."""
        return json.dumps(self.snapshot(), indent=2)

    def to_prometheus(self) -> str:
        """Snapshot in Prometheus text exposition format."""
        lines: list[str] = []
        for _, counter in sorted(self._counters.items()):
            metric = _metric_name(counter.name)
            if counter.help_text:
                lines.append(f"# HELP {metric} {counter.help_text}")
            lines.append(f"# TYPE {metric} counter")
            block = self._label_block(counter.labels)
            lines.append(f"{metric}{block} {counter.value}")
        for _, gauge in sorted(self._gauges.items()):
            metric = _metric_name(gauge.name)
            if gauge.help_text:
                lines.append(f"# HELP {metric} {gauge.help_text}")
            lines.append(f"# TYPE {metric} gauge")
            block = self._label_block(gauge.labels)
            lines.append(f"{metric}{block} {_format_value(gauge.value)}")
        for _, histogram in sorted(self._histograms.items()):
            metric = _metric_name(histogram.name)
            if histogram.help_text:
                lines.append(f"# HELP {metric} {histogram.help_text}")
            lines.append(f"# TYPE {metric} summary")
            for point, value in histogram.percentiles().items():
                quantile = int(point[1:]) / 100
                block = self._label_block(
                    histogram.labels, quantile=str(quantile)
                )
                lines.append(f"{metric}{block} {_format_value(value)}")
            block = self._label_block(histogram.labels)
            lines.append(
                f"{metric}_sum{block} {_format_value(histogram.total)}"
            )
            lines.append(f"{metric}_count{block} {histogram.count}")
        return "\n".join(lines) + "\n"

    def _label_block(
        self, instrument_labels: dict[str, str], **extra: str
    ) -> str:
        merged = {**self.labels, **instrument_labels, **extra}
        return _label_suffix(merged)


def merge_snapshots(
    snapshots: list[dict],
    points: tuple[int, ...] = DEFAULT_PERCENTILES,
) -> dict:
    """Fold per-replica telemetry snapshots into one aggregate.

    Counters and gauges sum by instrument key; histograms sum their
    exact ``count``/``total`` accumulators and, when the snapshots
    carry sample windows (``snapshot(include_samples=True)``), the
    pooled windows feed :func:`repro.runtime.metrics.percentiles` so
    the aggregate p50/p95/p99 use the same nearest-rank definition as
    every other report in the repo.  Registry-level ``labels`` are
    dropped — the aggregate speaks for the whole cluster.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    pooled: dict[str, list[float]] = {}
    for snapshot in snapshots:
        for key, value in snapshot.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + value
        for key, value in snapshot.get("gauges", {}).items():
            gauges[key] = gauges.get(key, 0.0) + value
        for key, shaped in snapshot.get("histograms", {}).items():
            merged = histograms.setdefault(
                key, {"count": 0, "total": 0.0}
            )
            merged["count"] += shaped.get("count", 0)
            merged["total"] += shaped.get("total", 0.0)
            pooled.setdefault(key, []).extend(shaped.get("samples", ()))
    for key, merged in histograms.items():
        count = merged["count"]
        merged["total"] = round(merged["total"], 6)
        merged["mean"] = round(
            merged["total"] / count if count else 0.0, 6
        )
        for point, value in percentiles(pooled.get(key, []), points).items():
            merged[point] = round(value, 6)
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": {
            key: value for key, value in sorted(gauges.items())
        },
        "histograms": dict(sorted(histograms.items())),
    }


def _metric_name(name: str) -> str:
    """Dotted instrument name to a Prometheus-legal metric name."""
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)
