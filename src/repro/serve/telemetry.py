"""Serving telemetry: counters, gauges, and latency histograms.

Generalizes the batch-run accounting in :mod:`repro.runtime.metrics`
for a long-lived service: metrics are named instruments in a registry,
snapshots are cheap, and the same nearest-rank percentile definition
(:func:`repro.runtime.metrics.percentiles`) produces the p50/p95/p99
numbers, so service latency reports and ``--report`` run reports are
directly comparable.

Two export formats: a JSON-able dict (for the ``telemetry`` protocol
op and loadgen report artifacts) and Prometheus text exposition (for
scraping).  Instruments are plain objects guarded by the event loop —
the service mutates them only from coroutine context — but nothing
here awaits, so they are equally usable from synchronous code.
"""

from __future__ import annotations

import json
from collections import deque

from repro.runtime.metrics import DEFAULT_PERCENTILES, percentiles


class Counter:
    """Monotonically increasing count (requests, errors, sheds)."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """Instantaneous level (queue depth, in-flight batches)."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += float(amount)

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Sample distribution with bounded memory (latency, occupancy).

    Keeps exact ``count``/``total`` accumulators forever and the most
    recent ``window`` observations for percentile estimates, so a
    long-running service neither grows without bound nor loses its
    lifetime averages.
    """

    def __init__(
        self, name: str, help_text: str = "", window: int = 4096
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.count = 0
        self.total = 0.0
        self.samples: deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.samples.append(value)

    def percentiles(
        self, points: tuple[int, ...] = DEFAULT_PERCENTILES
    ) -> dict[str, float]:
        """Nearest-rank percentiles over the retained window."""
        return percentiles(list(self.samples), points)

    def snapshot(self) -> dict:
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "mean": round(mean, 6),
            **{
                point: round(value, 6)
                for point, value in self.percentiles().items()
            },
        }


class Telemetry:
    """Registry of named instruments for one service instance."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, help_text: str = "") -> Counter:
        """The counter called ``name`` (created on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name, help_text)
        return instrument

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name, help_text)
        return instrument

    def histogram(
        self, name: str, help_text: str = "", window: int = 4096
    ) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name, help_text, window
            )
        return instrument

    def snapshot(self) -> dict:
        """All instruments as one JSON-able dict."""
        return {
            "counters": {
                name: counter.snapshot()
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.snapshot()
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def to_json(self) -> str:
        """Snapshot rendered as a JSON document."""
        return json.dumps(self.snapshot(), indent=2)

    def to_prometheus(self) -> str:
        """Snapshot in Prometheus text exposition format."""
        lines: list[str] = []
        for name, counter in sorted(self._counters.items()):
            metric = _metric_name(name)
            if counter.help_text:
                lines.append(f"# HELP {metric} {counter.help_text}")
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {counter.value}")
        for name, gauge in sorted(self._gauges.items()):
            metric = _metric_name(name)
            if gauge.help_text:
                lines.append(f"# HELP {metric} {gauge.help_text}")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(gauge.value)}")
        for name, histogram in sorted(self._histograms.items()):
            metric = _metric_name(name)
            if histogram.help_text:
                lines.append(f"# HELP {metric} {histogram.help_text}")
            lines.append(f"# TYPE {metric} summary")
            for point, value in histogram.percentiles().items():
                quantile = int(point[1:]) / 100
                lines.append(
                    f'{metric}{{quantile="{quantile}"}} '
                    f"{_format_value(value)}"
                )
            lines.append(f"{metric}_sum {_format_value(histogram.total)}")
            lines.append(f"{metric}_count {histogram.count}")
        return "\n".join(lines) + "\n"


def _metric_name(name: str) -> str:
    """Dotted instrument name to a Prometheus-legal metric name."""
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)
