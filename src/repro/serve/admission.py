"""Admission control: bounded queue, load shedding, deadlines.

Every accepted search request becomes a :class:`PendingRequest` holding
the asyncio future its submitter awaits.  The
:class:`AdmissionController` enforces the capacity bound at submit time
(full queue -> immediate shed, the 429 analogue) and stamps each
request with its deadline, so the batching scheduler and the shard
backend can drop work that can no longer meet its deadline instead of
burning pool time on it (cooperative cancellation).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.serve.protocol import SearchRequest
from repro.serve.telemetry import Telemetry


@dataclass
class PendingRequest:
    """One admitted request travelling through the service."""

    request: SearchRequest
    future: asyncio.Future
    enqueued: float
    deadline: float | None
    cancelled: bool = field(default=False)

    def alive(self, now: float) -> bool:
        """Still worth working on (not cancelled, deadline not passed)?"""
        if self.cancelled or self.future.done():
            return False
        return self.deadline is None or now < self.deadline

    def resolve(self, response: dict) -> None:
        """Deliver the response unless the submitter already went away."""
        if not self.future.done():
            self.future.set_result(response)


class QueueFull(Exception):
    """Raised at submit time when the admission queue is at capacity."""


class AdmissionController:
    """Bounded intake queue with shed-on-full semantics.

    ``asyncio.Queue`` would *block* producers when full; a serving
    front-end must instead answer "overloaded" immediately, so the
    capacity check happens before the put and the put itself never
    waits.
    """

    def __init__(
        self,
        capacity: int,
        telemetry: Telemetry,
        default_timeout: float | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.default_timeout = default_timeout
        self.queue: asyncio.Queue[PendingRequest] = asyncio.Queue()
        self.telemetry = telemetry
        self.depth = telemetry.gauge(
            "serve.queue.depth", "admitted requests not yet batched"
        )
        self.admitted = telemetry.counter(
            "serve.requests.admitted", "requests accepted into the queue"
        )
        self.shed = telemetry.counter(
            "serve.requests.shed", "requests rejected by load shedding"
        )

    def submit(
        self, request: SearchRequest, now: float
    ) -> PendingRequest:
        """Admit one request or raise :class:`QueueFull`.

        Synchronous by design: admission is a pure capacity check plus
        a non-blocking enqueue, so the protocol layer can shed load
        without ever awaiting.
        """
        if self.queue.qsize() >= self.capacity:
            self.shed.increment()
            raise QueueFull()
        timeout = request.timeout
        if timeout is None:
            timeout = self.default_timeout
        pending = PendingRequest(
            request=request,
            future=asyncio.get_running_loop().create_future(),
            enqueued=now,
            deadline=None if timeout is None else now + timeout,
        )
        self.queue.put_nowait(pending)
        self.admitted.increment()
        self.depth.set(self.queue.qsize())
        return pending

    async def next_request(self) -> PendingRequest:
        """Wait for the next admitted request (scheduler side)."""
        pending = await self.queue.get()
        self.depth.set(self.queue.qsize())
        return pending

    def try_next(self) -> PendingRequest | None:
        """Non-blocking pop (used while filling a batch)."""
        try:
            pending = self.queue.get_nowait()
        except asyncio.QueueEmpty:
            return None
        self.depth.set(self.queue.qsize())
        return pending
