"""JSON-lines wire protocol for the alignment-search service.

One request per line, one response per line, matched by ``id`` (the
server may interleave responses when a client pipelines requests).

Request operations::

    {"op": "ping", "id": "1"}
    {"op": "telemetry", "id": "2"}
    {"op": "status", "id": "4"}
    {"op": "search", "id": "3", "query": "MKTAYIAK...",
     "query_id": "sp|P00762", "algorithm": "blast",
     "best_count": 500, "gap_open": 10, "gap_extend": 1,
     "timeout": 5.0}

``algorithm`` is one of :data:`repro.align.batch.ALGORITHMS`; scoring
knobs default to the paper's Table I settings.  ``threshold`` (BLAST
only, the ``blastp -f`` neighborhood cutoff) trades sensitivity for
speed.  ``timeout`` is the per-request deadline in seconds (server
default applies when absent).

Responses carry ``status``: ``ok`` (with ``result``), ``shed`` (queue
full or draining — the 429 analogue, with a ``reason``), ``timeout``
(deadline expired before the search finished), or ``error`` (with
``error`` text).  ``ok`` search responses embed a ranked hit list in
the :func:`repro.align.batch.result_to_dict` shape.

``status`` reports liveness/load (in-flight count, queue depth,
draining flag) — the cluster router uses it for admission capacity
discovery, and ``repro cluster status`` renders it.  ``admin`` is the
router's control channel (``repro cluster {scale,drain,restart}``);
plain replicas answer it with an error.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.align.batch import SearchParams

#: Response status values.
STATUS_OK = "ok"
STATUS_SHED = "shed"
STATUS_TIMEOUT = "timeout"
STATUS_ERROR = "error"

#: Request operations.
OPS = ("search", "telemetry", "ping", "status", "admin")


class ProtocolError(ValueError):
    """A request line the server cannot interpret."""


@dataclass(frozen=True)
class SearchRequest:
    """One decoded ``search`` operation."""

    request_id: str
    query_id: str
    query_text: str
    params: SearchParams
    timeout: float | None = None


def decode_line(line: str) -> dict:
    """Parse one request line into its JSON object."""
    try:
        data = json.loads(line)
    except ValueError as error:
        raise ProtocolError(f"invalid JSON: {error}") from None
    if not isinstance(data, dict):
        raise ProtocolError("request must be a JSON object")
    operation = data.get("op", "search")
    if operation not in OPS:
        raise ProtocolError(
            f"unknown op {operation!r}; expected one of {', '.join(OPS)}"
        )
    return data


def decode_search(data: dict) -> SearchRequest:
    """Build a :class:`SearchRequest` from a decoded ``search`` object."""
    query_text = data.get("query", "")
    if not isinstance(query_text, str) or not query_text:
        raise ProtocolError("search request needs a non-empty 'query'")
    timeout = data.get("timeout")
    if timeout is not None:
        timeout = float(timeout)
        if timeout <= 0:
            raise ProtocolError("'timeout' must be positive")
    threshold = data.get("threshold")
    try:
        params = SearchParams(
            algorithm=str(data.get("algorithm", "blast")),
            best_count=int(data.get("best_count", 500)),
            gap_open=int(data.get("gap_open", 10)),
            gap_extend=int(data.get("gap_extend", 1)),
            threshold=None if threshold is None else int(threshold),
        )
    except ValueError as error:
        raise ProtocolError(str(error)) from None
    return SearchRequest(
        request_id=str(data.get("id", "")),
        query_id=str(data.get("query_id", "query")),
        query_text=query_text,
        params=params,
        timeout=timeout,
    )


def encode_response(response: dict) -> str:
    """Serialize one response object to its wire line (no newline)."""
    return json.dumps(response, separators=(",", ":"))


def ok_response(request_id: str, result: dict, **extra) -> dict:
    """A successful search response."""
    return {
        "id": request_id, "status": STATUS_OK, "result": result, **extra
    }


def shed_response(request_id: str, reason: str | None = None) -> dict:
    """Load-shedding rejection (the HTTP 429 analogue).

    ``reason`` distinguishes *why* the request was refused — a full
    admission queue (``overloaded``) versus a draining server
    (``draining``) versus a saturated cluster (``saturated``).  Either
    way the request is retryable: the cluster router redispatches shed
    responses to other replicas before giving up.
    """
    return {
        "id": request_id,
        "status": STATUS_SHED,
        "reason": reason or "overloaded",
        "error": "server overloaded; retry later",
    }


def timeout_response(request_id: str) -> dict:
    """Deadline-expiry rejection."""
    return {
        "id": request_id,
        "status": STATUS_TIMEOUT,
        "error": "deadline expired before the search completed",
    }


def error_response(request_id: str, message: str) -> dict:
    """A malformed request or an internal failure."""
    return {"id": request_id, "status": STATUS_ERROR, "error": message}
