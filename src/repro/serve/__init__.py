"""Async alignment-search serving: batching, sharding, telemetry.

The serving layer turns the batch experiment runtime into an online
service: queries arrive one at a time, an admission controller bounds
the queue (shedding load past capacity), a dynamic batcher groups
compatible requests, and each batch fans out over deterministic
database shards on the worker pool before per-shard scans merge into
ranked results byte-identical to an unsharded search.

See ``docs/serving.md`` for the architecture and the wire protocol,
``repro serve`` / ``repro loadgen`` for the CLI entry points.
"""

from repro.serve.admission import AdmissionController, PendingRequest, QueueFull
from repro.serve.protocol import (
    ProtocolError,
    SearchRequest,
    decode_line,
    decode_search,
    encode_response,
)
from repro.serve.scheduler import BatchPolicy, DynamicBatcher
from repro.serve.server import AlignmentService, ServeConfig
from repro.serve.shards import ShardSearchBackend
from repro.serve.telemetry import Counter, Gauge, Histogram, Telemetry

__all__ = [
    "AdmissionController",
    "PendingRequest",
    "QueueFull",
    "ProtocolError",
    "SearchRequest",
    "decode_line",
    "decode_search",
    "encode_response",
    "BatchPolicy",
    "DynamicBatcher",
    "AlignmentService",
    "ServeConfig",
    "ShardSearchBackend",
    "Counter",
    "Gauge",
    "Histogram",
    "Telemetry",
]
