"""Dynamic batching scheduler.

Requests queue up in the admission controller; the batcher pulls them
into batches that flush when either the batch reaches
``BatchPolicy.max_batch`` requests or the oldest member has waited
``BatchPolicy.max_wait`` seconds — whichever comes first.  Batching is
what amortizes the per-scan fixed costs (task dispatch, engine
compilation, and the shared multi-query BLAST database pass) across
requests, trading a bounded queueing delay for throughput.

At flush time the batcher drops members that died while queued —
cancelled by their client or past their deadline — resolving the
latter with ``timeout`` responses.  A flush whose members all died
executes nothing.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Awaitable, Callable

from repro.serve.admission import AdmissionController, PendingRequest
from repro.serve.protocol import timeout_response
from repro.serve.telemetry import Telemetry

#: Executes one batch of live requests, resolving each member's future.
BatchExecutor = Callable[[list[PendingRequest]], Awaitable[None]]


@dataclass(frozen=True)
class BatchPolicy:
    """When a batch flushes."""

    max_batch: int = 8
    max_wait: float = 0.02  # seconds the first request may wait

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be positive")
        if self.max_wait < 0:
            raise ValueError("max_wait must be non-negative")


class DynamicBatcher:
    """Pulls admitted requests into deadline-or-size-triggered batches."""

    def __init__(
        self,
        admission: AdmissionController,
        execute: BatchExecutor,
        policy: BatchPolicy,
        telemetry: Telemetry,
    ) -> None:
        self.admission = admission
        self.execute = execute
        self.policy = policy
        self.telemetry = telemetry
        self.batches = telemetry.counter(
            "serve.batches.executed", "non-empty batches executed"
        )
        self.empty_flushes = telemetry.counter(
            "serve.batches.empty", "flushes whose members all died queued"
        )
        self.occupancy = telemetry.histogram(
            "serve.batch.occupancy", "live requests per executed batch"
        )
        self.queue_wait = telemetry.histogram(
            "serve.queue.wait", "seconds from admission to batch flush"
        )
        self.timeouts = telemetry.counter(
            "serve.requests.timeout", "requests expired before execution"
        )

    async def run(self) -> None:
        """Batch loop; runs until cancelled (server owns the task)."""
        while True:
            batch = await self._collect()
            live = self._prune(batch)
            if not live:
                self.empty_flushes.increment()
                continue
            self.batches.increment()
            self.occupancy.observe(len(live))
            await self.execute(live)

    async def _collect(self) -> list[PendingRequest]:
        """One batch: first request, then fill until size or deadline."""
        batch = [await self.admission.next_request()]
        # Fast path: drain whatever is already queued without touching
        # the clock or spawning timeout machinery.
        while len(batch) < self.policy.max_batch:
            queued = self.admission.try_next()
            if queued is None:
                break
            batch.append(queued)
        if len(batch) >= self.policy.max_batch or self.policy.max_wait <= 0:
            return batch
        # Slow path: wait out the remainder of the batching window with
        # a single timeout guard for the whole fill, not one per item.
        try:
            await asyncio.wait_for(
                self._fill(batch), self.policy.max_wait
            )
        except asyncio.TimeoutError:
            pass
        return batch

    async def _fill(self, batch: list[PendingRequest]) -> None:
        while len(batch) < self.policy.max_batch:
            batch.append(await self.admission.next_request())

    def _prune(self, batch: list[PendingRequest]) -> list[PendingRequest]:
        """Drop dead members; expired ones get ``timeout`` responses."""
        now = asyncio.get_running_loop().time()
        live = []
        for pending in batch:
            if pending.alive(now):
                self.queue_wait.observe(now - pending.enqueued)
                live.append(pending)
                continue
            if not pending.future.done() and not pending.cancelled:
                self.timeouts.increment()
                pending.resolve(
                    timeout_response(pending.request.request_id)
                )
        return live
