"""The alignment-search service and its transports.

:class:`AlignmentService` wires the pipeline together — admission
control -> dynamic batching -> sharded pool scan -> merged ranked
results — around one :class:`~repro.runtime.engine.ExperimentRuntime`
(the worker pool + persistent cache).  Transports are thin: a TCP
JSON-lines server (each line handled as its own task, so one slow
search never blocks a pipelining client) and a stdin/stdout mode for
shell-driven use.

``repro serve`` is the CLI entry point (:func:`main_serve`).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
from dataclasses import dataclass, field

from repro.bio.synthetic import SyntheticDatabaseConfig, generate_database
from repro.runtime.engine import ExperimentRuntime
from repro.serve.admission import AdmissionController, QueueFull
from repro.serve.protocol import (
    ProtocolError,
    decode_line,
    decode_search,
    encode_response,
    error_response,
    shed_response,
    timeout_response,
)
from repro.serve.scheduler import BatchPolicy, DynamicBatcher
from repro.serve.shards import ShardSearchBackend
from repro.serve.telemetry import Telemetry

#: Database the service scans unless configured otherwise — the same
#: golden synthetic database the benchmark suite uses.
DEFAULT_DATABASE = SyntheticDatabaseConfig(
    sequence_count=30,
    family_count=2,
    family_size=3,
    seed=2006,
    mean_length=200.0,
)


@dataclass(frozen=True)
class ServeConfig:
    """Everything that shapes one service instance."""

    database: SyntheticDatabaseConfig = DEFAULT_DATABASE
    #: Packed database directory (``repro store pack-db``).  When set
    #: it replaces ``database``: workers mmap the snapshot instead of
    #: materializing a private copy, and startup skips generation
    #: entirely — this is the replicated tier's shared-memory path.
    database_path: str | None = None
    shard_count: int = 2
    jobs: int = 2
    queue_capacity: int = 64
    policy: BatchPolicy = field(default_factory=BatchPolicy)
    default_timeout: float | None = 30.0
    cache_dir: str | None = None
    #: Compiled-artifact store root (``repro store``); neighbor tables
    #: and query lookup tables resolve store-first when set.
    store_dir: str | None = None
    #: Expand the full BLAST neighborhood table in every worker at
    #: startup (~0.6 s per worker once) so query compiles on the hot
    #: path degrade to memo lookups.  The CLI turns this on; tests
    #: constructing configs directly keep fast startup by default.
    precompute: bool = False
    #: Replica name for telemetry labelling (``repro cluster`` sets it
    #: per replica process so Prometheus series and aggregated
    #: snapshots stay distinguishable); ``None`` means standalone.
    replica: str | None = None
    #: Seconds a drain waits for in-flight requests before giving up.
    drain_grace: float = 30.0


class AlignmentService:
    """Batching, sharding search service over one experiment runtime."""

    def __init__(
        self,
        config: ServeConfig = ServeConfig(),
        telemetry: Telemetry | None = None,
    ) -> None:
        self.config = config
        if telemetry is None:
            labels = (
                {"replica": config.replica} if config.replica else None
            )
            telemetry = Telemetry(labels=labels)
        self.telemetry = telemetry
        self.runtime: ExperimentRuntime | None = None
        self.admission: AdmissionController | None = None
        self.backend: ShardSearchBackend | None = None
        self.batcher: DynamicBatcher | None = None
        self._batch_task: asyncio.Task | None = None
        self.draining = False
        self._inflight = 0
        self.request_latency = self.telemetry.histogram(
            "serve.request.latency",
            "seconds from admission to response",
        )
        self.requests_total = self.telemetry.counter(
            "serve.requests.total", "search requests received"
        )
        self.inflight = self.telemetry.gauge(
            "serve.requests.inflight",
            "admitted requests not yet answered",
        )

    async def start(self) -> None:
        """Bring up the runtime pool and the batching loop."""
        config = self.config
        self.runtime = ExperimentRuntime(
            jobs=config.jobs,
            cache_dir=config.cache_dir,
            store_dir=config.store_dir,
        )
        if config.database_path is not None:
            from repro.store.packdb import PackedDatabaseRef, open_packed

            # Cold start is a header read plus an mmap — no generation,
            # no per-replica heap copy of the residues.
            database_config = PackedDatabaseRef(config.database_path)
            database_name = open_packed(config.database_path).name
        else:
            database_config = config.database
            database_name = generate_database(config.database).name
        self.admission = AdmissionController(
            config.queue_capacity,
            self.telemetry,
            default_timeout=config.default_timeout,
        )
        self.backend = ShardSearchBackend(
            self.runtime,
            database_config,
            database_name,
            config.shard_count,
            self.telemetry,
        )
        self.batcher = DynamicBatcher(
            self.admission,
            self.backend.execute,
            config.policy,
            self.telemetry,
        )
        if config.precompute:
            # Run in a thread: the dispatch blocks on every worker
            # finishing its table expansion, and the loop stays free.
            await asyncio.get_running_loop().run_in_executor(
                None, self.runtime.precompute_words
            )
        self._batch_task = asyncio.get_running_loop().create_task(
            self.batcher.run()
        )

    async def stop(self) -> None:
        """Stop batching and shut the worker pool down."""
        if self._batch_task is not None:
            self._batch_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._batch_task
            self._batch_task = None
        if self.runtime is not None:
            self.runtime.close()
            self.runtime = None

    async def drain(self, grace: float | None = None) -> None:
        """Graceful drain: stop admitting, flush in-flight, shut down.

        New search submissions shed immediately (``reason=draining`` —
        the cluster router redispatches them to live replicas); batches
        already queued or executing run to completion.  Returns once
        every in-flight request has been answered or ``grace`` seconds
        elapsed, with the batching loop and worker pool stopped either
        way.  Idempotent: the SIGTERM handler and the cluster
        supervisor may both call it.
        """
        self.draining = True
        if grace is None:
            grace = self.config.drain_grace
        loop = asyncio.get_running_loop()
        deadline = loop.time() + max(0.0, grace)
        while self._inflight > 0 and loop.time() < deadline:
            await asyncio.sleep(0.005)
        await self.stop()

    async def __aenter__(self) -> "AlignmentService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- request handling ---------------------------------------------------

    async def handle_line(self, line: str) -> dict:
        """One wire line in, one response object out (never raises)."""
        try:
            data = decode_line(line)
        except ProtocolError as error:
            return error_response("", str(error))
        request_id = str(data.get("id", ""))
        operation = data.get("op", "search")
        if operation == "ping":
            return {"id": request_id, "status": "ok", "op": "ping"}
        if operation == "telemetry":
            return {
                "id": request_id,
                "status": "ok",
                "telemetry": self.telemetry.snapshot(
                    include_samples=bool(data.get("samples"))
                ),
            }
        if operation == "status":
            return {
                "id": request_id,
                "status": "ok",
                "serve": self.describe(),
            }
        if operation == "admin":
            return error_response(
                request_id,
                "admin operations need the cluster router, not a replica",
            )
        try:
            request = decode_search(data)
        except ProtocolError as error:
            return error_response(request_id, str(error))
        return await self.submit(request)

    async def submit(self, request) -> dict:
        """Admit one search request and await its response."""
        assert self.admission is not None, "service not started"
        self.requests_total.increment()
        if self.draining:
            # Drain semantics: refuse new work with a retryable signal
            # so a router can redispatch it, while in-flight requests
            # keep running to completion.
            return shed_response(request.request_id, reason="draining")
        loop = asyncio.get_running_loop()
        now = loop.time()
        try:
            pending = self.admission.submit(request, now)
        except QueueFull:
            return shed_response(request.request_id)
        self._inflight += 1
        self.inflight.set(self._inflight)
        expiry = None
        if pending.deadline is not None:
            # A timer handle is far cheaper than a wait_for task per
            # request; it resolves the future in place at the deadline
            # and the cancelled flag tells the pipeline to drop the
            # request wherever it is.
            expiry = loop.call_at(
                pending.deadline, _expire_pending, pending
            )
        try:
            response = await pending.future
        finally:
            if expiry is not None:
                expiry.cancel()
            self._inflight -= 1
            self.inflight.set(self._inflight)
        self.request_latency.observe(loop.time() - now)
        return response

    def describe(self) -> dict:
        """Liveness/load summary for the ``status`` op."""
        return {
            "replica": self.config.replica,
            "draining": self.draining,
            "inflight": self._inflight,
            "queue_depth": (
                self.admission.queue.qsize() if self.admission else 0
            ),
            "queue_capacity": self.config.queue_capacity,
            "shards": self.config.shard_count,
            "jobs": self.config.jobs,
        }


def _expire_pending(pending) -> None:
    """Deadline timer callback: answer ``timeout`` and mark cancelled."""
    if not pending.future.done():
        pending.cancelled = True
        pending.future.set_result(
            timeout_response(pending.request.request_id)
        )


# -- transports -------------------------------------------------------------


async def serve_tcp(
    service: AlignmentService, host: str, port: int
) -> asyncio.AbstractServer:
    """Start the TCP JSON-lines transport (caller owns the lifecycle)."""

    async def handle_connection(reader, writer):
        write_lock = asyncio.Lock()

        async def answer(line: str) -> None:
            response = await service.handle_line(line)
            payload = (encode_response(response) + "\n").encode()
            async with write_lock:
                writer.write(payload)
                with contextlib.suppress(ConnectionError):
                    await writer.drain()

        tasks = set()
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                line = raw.decode().strip()
                if not line:
                    continue
                # Per-line tasks: a pipelining client gets responses
                # as they finish (matched by id), not in lockstep.
                task = asyncio.get_running_loop().create_task(
                    answer(line)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except asyncio.CancelledError:
            # server.close() cancels connection handlers at shutdown;
            # fall through to flush in-flight answers and close the
            # socket instead of dying mid-teardown with a traceback.
            pass
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            with contextlib.suppress(ConnectionError):
                writer.close()
                await writer.wait_closed()

    return await asyncio.start_server(handle_connection, host, port)


async def serve_stdio(service: AlignmentService) -> None:
    """Serve JSON lines from stdin to stdout until EOF."""
    loop = asyncio.get_running_loop()
    while True:
        raw = await loop.run_in_executor(None, sys.stdin.readline)
        if not raw:
            break
        line = raw.strip()
        if not line:
            continue
        response = await service.handle_line(line)
        print(encode_response(response), flush=True)


# -- CLI --------------------------------------------------------------------


def build_config(args) -> ServeConfig:
    """Translate parsed CLI flags into a :class:`ServeConfig`."""
    database = SyntheticDatabaseConfig(
        sequence_count=args.db_sequences,
        family_count=DEFAULT_DATABASE.family_count,
        family_size=DEFAULT_DATABASE.family_size,
        seed=args.db_seed,
        mean_length=DEFAULT_DATABASE.mean_length,
    )
    return ServeConfig(
        database=database,
        database_path=getattr(args, "db_path", None),
        store_dir=getattr(args, "store_dir", None),
        shard_count=args.shards,
        jobs=args.jobs,
        queue_capacity=args.queue_capacity,
        policy=BatchPolicy(
            max_batch=args.batch_size, max_wait=args.max_wait
        ),
        default_timeout=args.timeout if args.timeout > 0 else None,
        cache_dir=args.cache_dir,
        precompute=args.precompute,
        replica=getattr(args, "replica_label", None),
        drain_grace=getattr(args, "drain_grace", 30.0),
    )


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """Service-shape flags shared by ``serve`` and ``loadgen``."""
    parser.add_argument(
        "--jobs", type=int, default=2,
        help="worker processes for the scan pool (default 2)",
    )
    parser.add_argument(
        "--shards", type=int, default=2,
        help="database shards per query (default 2)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=8,
        help="flush a batch at this many requests (default 8)",
    )
    parser.add_argument(
        "--max-wait", type=float, default=0.02,
        help="max seconds the first request waits for a batch (0.02)",
    )
    parser.add_argument(
        "--queue-capacity", type=int, default=64,
        help="admission queue bound; beyond it requests shed (64)",
    )
    parser.add_argument(
        "--timeout", type=float, default=30.0,
        help="default per-request deadline in seconds; 0 disables (30)",
    )
    parser.add_argument(
        "--db-sequences", type=int,
        default=DEFAULT_DATABASE.sequence_count,
        help="synthetic database size in sequences",
    )
    parser.add_argument(
        "--db-seed", type=int, default=DEFAULT_DATABASE.seed,
        help="synthetic database seed",
    )
    parser.add_argument(
        "--db-path", default=None, metavar="DIR",
        help="packed database directory (repro store pack-db); "
             "replaces --db-sequences/--db-seed and mmaps the "
             "snapshot instead of generating a private copy",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="persistent scan cache directory (default: ephemeral)",
    )
    parser.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="compiled-artifact store (repro store); BLAST tables "
             "load from it instead of recompiling per process",
    )
    parser.add_argument(
        "--precompute", action=argparse.BooleanOptionalAction,
        default=True,
        help="expand the full BLAST word table in each worker at "
             "startup (adds ~0.6s/worker, makes query compiles cheap)",
    )
    parser.add_argument(
        "--replica-label", default=None, metavar="NAME",
        help="label telemetry with replica=NAME (cluster replicas)",
    )
    parser.add_argument(
        "--drain-grace", type=float, default=30.0,
        help="seconds a graceful drain (SIGTERM) waits for in-flight "
             "requests before shutting down anyway (default 30)",
    )


def main_serve(argv: list[str] | None = None) -> int:
    """``repro serve``: run the service on TCP or stdio."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Alignment-search service (JSON lines).",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="TCP bind host"
    )
    parser.add_argument(
        "--port", type=int, default=None,
        help="TCP port (0 picks a free one); omit for stdin/stdout",
    )
    add_serve_arguments(parser)
    args = parser.parse_args(argv)

    async def run() -> int:
        async with AlignmentService(build_config(args)) as service:
            if args.port is None:
                await serve_stdio(service)
                return 0
            server = await serve_tcp(service, args.host, args.port)
            address = server.sockets[0].getsockname()
            print(
                f"serving on {address[0]}:{address[1]} "
                f"(jobs={args.jobs}, shards={args.shards}, "
                f"batch={args.batch_size})",
                flush=True,
            )
            # SIGTERM/SIGINT trigger a graceful drain, not loop
            # teardown: stop accepting, shed new submissions with a
            # retryable signal, flush in-flight batches, then exit.
            # The cluster's rolling restart and `repro cluster drain`
            # both depend on this path answering every admitted
            # request before the process dies.
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError):
                    loop.add_signal_handler(signum, stop.set)
            try:
                await stop.wait()
            finally:
                server.close()
                await server.wait_closed()
                await service.drain()
                for signum in (signal.SIGTERM, signal.SIGINT):
                    with contextlib.suppress(NotImplementedError):
                        loop.remove_signal_handler(signum)
            print("drained: in-flight flushed, exiting", flush=True)
            return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0
