"""Load generator for the alignment-search service.

Drives a service — in-process (``--loopback``) or over TCP
(``--connect host:port``) — with a deterministic query workload and
produces a latency/throughput report in the spirit of the benchmark
suite's ``BENCH_core.json`` artifact.

Two arrival disciplines:

* **closed loop** (default): ``--concurrency`` workers each keep one
  request in flight, back to back.  Throughput is limited by service
  capacity; this is what exercises dynamic batching hardest.
* **open loop** (``--rate R``): requests arrive on a seeded exponential
  schedule at R requests/second regardless of completions, the
  standard way to expose queueing delay and load shedding.

``--compare-batch-size N`` (loopback only) runs the same workload
twice — once with the configured batch size, once with batch size N —
and reports the throughput ratio; ``--require-speedup X`` turns that
ratio into an exit code for CI.

``--targets a:p,b:q`` opens one connection per address and deals the
workload round-robin (drive a whole cluster's replicas, or its router
plus a control server, with one deterministic schedule).
``--require-p99-ms D`` prints a p99-deadline-compliance line and turns
it into an exit code, so the cluster chaos gate is a one-liner:
open-loop rate, kill a replica mid-run, require zero failures
(``--fail-on-error``) and p99 within the deadline.

Latency percentiles use the same nearest-rank definition as the run
reports and the service telemetry
(:func:`repro.runtime.metrics.percentiles`).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import random
from dataclasses import replace
from pathlib import Path

from repro.bio.synthetic import SyntheticDatabaseConfig, generate_database
from repro.runtime.metrics import percentiles
from repro.serve.protocol import encode_response
from repro.serve.scheduler import BatchPolicy
from repro.serve.server import (
    AlignmentService,
    add_serve_arguments,
    build_config,
)

#: Statuses a response may carry (report buckets).
STATUSES = ("ok", "shed", "timeout", "error")


def make_workload(
    database: SyntheticDatabaseConfig,
    count: int,
    pool_size: int,
    length: int,
    algorithm: str,
    seed: int,
    threshold: int | None = None,
    tag: str = "q",
) -> list[dict]:
    """Deterministic request payloads: a query pool, cycled.

    Queries are slices of database sequences (so they produce real
    hits), drawn by a seeded RNG.  A small pool cycled over many
    requests models hot-query traffic (caches and worker-side engine
    memos absorb it); a pool as large as the run models all-distinct
    traffic, where every request pays a real scan and dynamic batching
    is what amortizes the shared database pass.
    """
    sequences = generate_database(database)
    rng = random.Random(seed)
    pool = []
    for index in range(pool_size):
        subject = sequences[rng.randrange(len(sequences))]
        start = rng.randrange(max(1, len(subject) - length))
        text = subject.text[start:start + length]
        pool.append((f"{tag}{index}", text))
    payloads = []
    for number in range(count):
        payload = {
            "op": "search",
            "id": str(number),
            "query_id": pool[number % pool_size][0],
            "query": pool[number % pool_size][1],
            "algorithm": algorithm,
        }
        if threshold is not None:
            payload["threshold"] = threshold
        payloads.append(payload)
    return payloads


class LoopbackClient:
    """Drives an in-process :class:`AlignmentService`."""

    def __init__(self, service: AlignmentService) -> None:
        self.service = service

    async def request(self, payload: dict) -> dict:
        line = encode_response(payload)
        return await self.service.handle_line(line)

    async def close(self) -> None:
        return None


class MultiTargetClient:
    """Round-robins requests across several connected clients.

    This is how a cluster acceptance run drives the topology: one
    connection per target (usually just the router; optionally each
    replica directly) with payloads dealt in arrival order, so every
    target sees an interleaved slice of the same deterministic
    workload.
    """

    def __init__(self, clients: list) -> None:
        if not clients:
            raise ValueError("need at least one target client")
        self.clients = clients
        self._next = 0

    async def request(self, payload: dict) -> dict:
        client = self.clients[self._next % len(self.clients)]
        self._next += 1
        return await client.request(payload)

    async def close(self) -> None:
        for client in self.clients:
            await client.close()


class TcpClient:
    """One TCP connection with id-matched response routing.

    All workers share the connection; requests pipeline and the reader
    task resolves each response future by its ``id``.
    """

    def __init__(self, reader, writer) -> None:
        self.reader = reader
        self.writer = writer
        self.pending: dict[str, asyncio.Future] = {}
        self.reader_task = asyncio.get_running_loop().create_task(
            self._read_responses()
        )

    @classmethod
    async def connect(cls, host: str, port: int) -> "TcpClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_responses(self) -> None:
        while True:
            raw = await self.reader.readline()
            if not raw:
                break
            response = json.loads(raw)
            future = self.pending.pop(str(response.get("id", "")), None)
            if future is not None and not future.done():
                future.set_result(response)
        for future in self.pending.values():
            if not future.done():
                future.set_exception(
                    ConnectionError("server closed the connection")
                )
        self.pending.clear()

    async def request(self, payload: dict) -> dict:
        future = asyncio.get_running_loop().create_future()
        self.pending[str(payload["id"])] = future
        self.writer.write((encode_response(payload) + "\n").encode())
        await self.writer.drain()
        return await future

    async def close(self) -> None:
        self.reader_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self.reader_task
        with contextlib.suppress(ConnectionError):
            self.writer.close()
            await self.writer.wait_closed()


async def drive(
    client,
    requests: list[dict],
    concurrency: int,
    rate: float | None,
    seed: int,
) -> dict:
    """Run the workload; returns latencies, statuses, wall time."""
    loop = asyncio.get_running_loop()
    latencies: list[float] = []
    statuses = {status: 0 for status in STATUSES}

    async def one(payload: dict) -> None:
        start = loop.time()
        response = await client.request(payload)
        latencies.append(loop.time() - start)
        status = response.get("status", "error")
        statuses[status] = statuses.get(status, 0) + 1

    began = loop.time()
    if rate is None:
        # Closed loop: workers drain a shared iterator back to back.
        iterator = iter(requests)

        async def worker() -> None:
            for payload in iterator:
                await one(payload)

        await asyncio.gather(
            *(worker() for _ in range(max(1, concurrency)))
        )
    else:
        # Open loop: seeded exponential arrivals, fire and collect.
        rng = random.Random(seed)
        tasks = []
        for payload in requests:
            tasks.append(loop.create_task(one(payload)))
            await asyncio.sleep(rng.expovariate(rate))
        await asyncio.gather(*tasks)
    wall_time = loop.time() - began
    return {
        "latencies": latencies,
        "statuses": statuses,
        "wall_time": wall_time,
    }


def summarize(outcome: dict, args, batch_size: int) -> dict:
    """Shape one drive outcome into the report dict."""
    latencies = outcome["latencies"]
    mean = sum(latencies) / len(latencies) if latencies else 0.0
    wall_time = outcome["wall_time"]
    report = {
        "mode": "open" if args.rate else "closed",
        "requests": len(latencies),
        "concurrency": args.concurrency,
        "rate": args.rate,
        "algorithm": args.algorithm,
        "batch_size": batch_size,
        "shards": args.shards,
        "jobs": args.jobs,
        "query_pool": (
            len(latencies)
            if getattr(args, "distinct_queries", False)
            else args.query_pool
        ),
        "distinct_queries": getattr(args, "distinct_queries", False),
        "threshold": args.threshold,
        "wall_time": round(wall_time, 6),
        "throughput_rps": round(
            len(latencies) / wall_time if wall_time else 0.0, 3
        ),
        "statuses": outcome["statuses"],
        "latency": {
            "mean": round(mean, 6),
            **{
                point: round(value, 6)
                for point, value in percentiles(latencies).items()
            },
        },
    }
    limit_ms = getattr(args, "require_p99_ms", None)
    if limit_ms is not None:
        report["deadline"] = deadline_compliance(
            report, latencies, limit_ms
        )
    return report


def deadline_compliance(report: dict, latencies: list[float], limit_ms: float) -> dict:
    """p99-vs-deadline summary: the cluster acceptance gate's shape.

    ``compliant`` is the gate (`--require-p99-ms`): nearest-rank p99
    latency at or under the deadline.  ``within_pct`` reports how much
    of the whole run met the deadline, which diagnoses *how* a miss
    happened (a fat tail vs a shifted distribution).
    """
    p99_ms = report["latency"].get("p99", 0.0) * 1e3
    within = sum(1 for value in latencies if value * 1e3 <= limit_ms)
    total = len(latencies)
    return {
        "limit_ms": limit_ms,
        "p99_ms": round(p99_ms, 3),
        "within_pct": round(100.0 * within / total if total else 0.0, 2),
        "compliant": p99_ms <= limit_ms,
    }


async def run_loopback(args, batch_size: int) -> dict:
    """One full loopback run at the given batch size."""
    config = build_config(args)
    config = replace(
        config,
        policy=BatchPolicy(
            max_batch=batch_size, max_wait=args.max_wait
        ),
    )
    distinct = getattr(args, "distinct_queries", False)
    pool_size = args.requests if distinct else args.query_pool
    requests = make_workload(
        config.database, args.requests, pool_size,
        args.query_length, args.algorithm, args.seed,
        threshold=args.threshold,
    )
    if distinct:
        # Distinct-query traffic: every request is a cache miss and
        # pays a real scan.  Warm with a *non-overlapping* pool so the
        # workers (spawn, imports, database generation, word tables)
        # are hot but the measured queries are not pre-cached.
        warmup = make_workload(
            config.database, 8, 8, args.query_length,
            args.algorithm, args.seed + 1009,
            threshold=args.threshold, tag="warm",
        )
    else:
        # Hot-pool traffic: one pass over the query pool pays engine
        # compiles and cold scans, so both sides of an A/B comparison
        # measure the same cached steady state.
        seen: dict[str, dict] = {}
        for payload in requests:
            seen.setdefault(payload["query_id"], payload)
        warmup = list(seen.values())
    async with AlignmentService(config) as service:
        client = LoopbackClient(service)
        if config.precompute and args.threshold is not None:
            # start() precomputed the default table; the benchmark
            # threshold needs its own.
            await asyncio.get_running_loop().run_in_executor(
                None, service.runtime.precompute_words, args.threshold
            )
        for payload in warmup:
            await client.request(dict(payload))
        outcome = await drive(
            client, requests, args.concurrency, args.rate, args.seed
        )
        report = summarize(outcome, args, batch_size)
        report["telemetry"] = service.telemetry.snapshot()
        return report


async def best_of(args, batch_size: int) -> dict:
    """Best-throughput loopback run over ``--trials`` attempts.

    Each trial is a fresh service (pool, caches, telemetry), so trials
    are independent samples of the same cold-ish configuration; taking
    the best damps OS-scheduler noise without mixing measurements.
    """
    best: dict | None = None
    for trial in range(max(1, getattr(args, "trials", 1))):
        report = await run_loopback(args, batch_size)
        if (
            best is None
            or report["throughput_rps"] > best["throughput_rps"]
        ):
            best = report
            best["trial"] = trial + 1
    assert best is not None
    best["trials"] = max(1, getattr(args, "trials", 1))
    return best


def parse_address(address: str) -> tuple[str, int]:
    """``host:port`` (host optional) into a connectable pair."""
    host, _, port = address.rpartition(":")
    return host or "127.0.0.1", int(port)


async def run_connect(args, addresses: list[tuple[str, int]]) -> dict:
    """Drive one or more remote servers over TCP (round-robin)."""
    database = SyntheticDatabaseConfig(
        sequence_count=args.db_sequences,
        seed=args.db_seed,
        family_count=2,
        family_size=3,
        mean_length=200.0,
    )
    distinct = getattr(args, "distinct_queries", False)
    pool_size = args.requests if distinct else args.query_pool
    requests = make_workload(
        database, args.requests, pool_size,
        args.query_length, args.algorithm, args.seed,
        threshold=args.threshold,
    )
    clients = [
        await TcpClient.connect(host, port) for host, port in addresses
    ]
    client = (
        clients[0] if len(clients) == 1 else MultiTargetClient(clients)
    )
    try:
        outcome = await drive(
            client, requests, args.concurrency, args.rate, args.seed
        )
        report = summarize(outcome, args, args.batch_size)
        if len(clients) == 1:
            telemetry = await clients[0].request(
                {"op": "telemetry", "id": "loadgen-telemetry"}
            )
            report["telemetry"] = telemetry.get("telemetry", {})
        else:
            report["targets"] = [
                f"{host}:{port}" for host, port in addresses
            ]
            report["telemetry"] = {}
            for (host, port), target in zip(addresses, clients):
                telemetry = await target.request(
                    {"op": "telemetry", "id": f"loadgen-{host}:{port}"}
                )
                report["telemetry"][f"{host}:{port}"] = telemetry.get(
                    "telemetry", {}
                )
    finally:
        if len(clients) == 1:
            await clients[0].close()
        else:
            await client.close()
    return report


def format_summary(report: dict) -> str:
    """Human-readable one-run summary."""
    latency = report["latency"]
    statuses = ", ".join(
        f"{status}={count}"
        for status, count in report["statuses"].items()
        if count
    )
    return (
        f"{report['mode']}-loop {report['requests']} requests "
        f"({report['algorithm']}, batch={report['batch_size']}, "
        f"shards={report['shards']}, jobs={report['jobs']}): "
        f"{report['throughput_rps']} req/s, "
        f"p50={latency.get('p50', 0) * 1e3:.1f}ms "
        f"p95={latency.get('p95', 0) * 1e3:.1f}ms "
        f"p99={latency.get('p99', 0) * 1e3:.1f}ms "
        f"[{statuses}]"
    )


def main_loadgen(argv: list[str] | None = None) -> int:
    """``repro loadgen``: benchmark a service, write a report."""
    parser = argparse.ArgumentParser(
        prog="repro loadgen",
        description="Latency/throughput benchmark for repro serve.",
    )
    parser.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="drive a running server instead of a loopback service",
    )
    parser.add_argument(
        "--targets", default=None, metavar="HOST:PORT[,HOST:PORT...]",
        help="drive several running servers round-robin (e.g. every "
             "replica of a cluster, or the router plus a control); "
             "supersedes --connect",
    )
    parser.add_argument(
        "--require-p99-ms", type=float, default=None, metavar="MS",
        help="deadline-compliance gate: report p99 vs this deadline "
             "and exit non-zero when p99 exceeds it",
    )
    parser.add_argument(
        "--requests", type=int, default=100,
        help="total requests to send (default 100)",
    )
    parser.add_argument(
        "--concurrency", type=int, default=16,
        help="closed-loop in-flight requests (default 16)",
    )
    parser.add_argument(
        "--rate", type=float, default=None,
        help="open-loop arrivals per second (default: closed loop)",
    )
    parser.add_argument(
        "--algorithm", default="blast",
        choices=("ssearch", "fasta", "blast"),
        help="search application to request (default blast)",
    )
    parser.add_argument(
        "--query-length", type=int, default=64,
        help="residues per query (default 64)",
    )
    parser.add_argument(
        "--query-pool", type=int, default=16,
        help="distinct queries cycled over the run (default 16)",
    )
    parser.add_argument(
        "--distinct-queries", action="store_true",
        help="give every request its own query (cache-miss traffic; "
             "overrides --query-pool)",
    )
    parser.add_argument(
        "--threshold", type=int, default=None,
        help="BLAST neighborhood threshold for the requests "
             "(blastp -f; higher is faster, less sensitive)",
    )
    parser.add_argument(
        "--seed", type=int, default=42,
        help="workload/arrival RNG seed (default 42)",
    )
    parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the JSON report artifact here",
    )
    parser.add_argument(
        "--compare-batch-size", type=int, default=None, metavar="N",
        help="loopback only: rerun with batch size N and report the "
             "throughput ratio (e.g. 1 for the unbatched baseline)",
    )
    parser.add_argument(
        "--trials", type=int, default=1, metavar="N",
        help="loopback only: run each configuration N times and keep "
             "the best-throughput run (best-of-N damps scheduler noise "
             "on shared machines; default 1)",
    )
    parser.add_argument(
        "--require-speedup", type=float, default=None, metavar="X",
        help="with --compare-batch-size: exit non-zero unless the "
             "configured batch beats the comparison by X times",
    )
    parser.add_argument(
        "--fail-on-error", action="store_true",
        help="exit non-zero if any request ended shed/timeout/error",
    )
    add_serve_arguments(parser)
    args = parser.parse_args(argv)

    async def run() -> tuple[dict, int]:
        if args.targets is not None or args.connect is not None:
            if args.compare_batch_size is not None:
                parser.error("--compare-batch-size needs --loopback mode")
            raw = args.targets if args.targets is not None else args.connect
            addresses = [
                parse_address(part)
                for part in raw.split(",") if part.strip()
            ]
            report = await run_connect(args, addresses)
        else:
            report = await best_of(args, args.batch_size)
            if args.compare_batch_size is not None:
                baseline = await best_of(args, args.compare_batch_size)
                ratio = (
                    report["throughput_rps"]
                    / baseline["throughput_rps"]
                    if baseline["throughput_rps"]
                    else 0.0
                )
                report["comparison"] = {
                    "batch_size": args.compare_batch_size,
                    "throughput_rps": baseline["throughput_rps"],
                    "latency": baseline["latency"],
                    "speedup": round(ratio, 3),
                }
        status = 0
        failures = sum(
            count for key, count in report["statuses"].items()
            if key != "ok"
        )
        if args.fail_on_error and failures:
            status = 1
        comparison = report.get("comparison")
        if (
            args.require_speedup is not None
            and comparison is not None
            and comparison["speedup"] < args.require_speedup
        ):
            status = 1
        deadline = report.get("deadline")
        if deadline is not None and not deadline["compliant"]:
            status = 1
        return report, status

    report, status = asyncio.run(run())
    print(format_summary(report))
    deadline = report.get("deadline")
    if deadline is not None:
        verdict = "OK" if deadline["compliant"] else "MISS"
        print(
            f"p99 deadline {deadline['limit_ms']:.0f}ms: {verdict} "
            f"(p99={deadline['p99_ms']:.1f}ms, "
            f"{deadline['within_pct']:.1f}% of requests within deadline)"
        )
    comparison = report.get("comparison")
    if comparison is not None:
        print(
            f"vs batch={comparison['batch_size']}: "
            f"{comparison['throughput_rps']} req/s -> "
            f"{comparison['speedup']}x speedup"
        )
    if args.report:
        path = Path(args.report)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"report written to {path}")
    return status
