"""Sharded database-scan backend for the serving path.

Takes one batch of live requests from the scheduler, fans each query
out over ``shard_count`` deterministic shards of the configured
database via :meth:`repro.runtime.engine.ExperimentRuntime.search_shards`
(cache-first, pool-parallel), and merges the per-shard raw scans into
the final ranked result — byte-identical to an unsharded scan by
construction (see :mod:`repro.align.batch`).

Cooperative cancellation: the batch is processed one parameter group at
a time, and each group's members are re-checked against their deadlines
immediately before its shard tasks are built.  A request that expired
while earlier groups ran gets a ``timeout`` response and its shard
scans are never dispatched.

The runtime call is synchronous (it blocks on the worker pool), so it
runs in a thread via ``run_in_executor`` behind an ``asyncio.Lock`` —
one batch in the pool at a time, with the event loop free to keep
accepting and batching requests meanwhile.
"""

from __future__ import annotations

import asyncio

from repro.align.batch import (
    SearchParams,
    make_finalizer,
    make_query,
    result_to_dict,
)
from repro.runtime.engine import ExperimentRuntime
from repro.serve.admission import PendingRequest
from repro.serve.protocol import (
    error_response,
    ok_response,
    timeout_response,
)
from repro.serve.telemetry import Telemetry


class ShardSearchBackend:
    """Executes request batches against the sharded database."""

    def __init__(
        self,
        runtime: ExperimentRuntime,
        database_config,
        database_name: str,
        shard_count: int,
        telemetry: Telemetry,
    ) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be positive")
        self.runtime = runtime
        self.database_config = database_config
        self.database_name = database_name
        self.shard_count = shard_count
        self.telemetry = telemetry
        self._pool_lock = asyncio.Lock()
        # Merge-side finalizer memo: finalizers are cheap to build
        # (no lookup-table compilation) but hot queries recur, so a
        # small memo keeps the per-response cost at a dict probe.
        self._engines: dict[tuple, object] = {}
        self._engine_cap = 256
        self.dispatched = telemetry.counter(
            "serve.shards.dispatched", "shard scans sent to the runtime"
        )
        self.skipped = telemetry.counter(
            "serve.shards.skipped",
            "shard scans cancelled before dispatch (deadline expired)",
        )
        self.completed = telemetry.counter(
            "serve.requests.completed", "requests answered with results"
        )
        self.errors = telemetry.counter(
            "serve.requests.error", "requests that failed in the backend"
        )
        self.timeouts = telemetry.counter(
            "serve.requests.timeout", "requests expired before execution"
        )
        self.scan_latency = telemetry.histogram(
            "serve.scan.latency", "seconds per pool scan call (whole group)"
        )

    async def execute(self, batch: list[PendingRequest]) -> None:
        """Run one batch, resolving every member's future."""
        groups: dict[tuple, list[PendingRequest]] = {}
        for pending in batch:
            groups.setdefault(pending.request.params.key(), []).append(
                pending
            )
        loop = asyncio.get_running_loop()
        for params_key, members in groups.items():
            # Deadline recheck at dispatch time: anything that expired
            # while earlier groups ran is cancelled cooperatively —
            # its shard scans never reach the pool.
            now = loop.time()
            live = []
            for pending in members:
                if pending.alive(now):
                    live.append(pending)
                elif not pending.future.done() and not pending.cancelled:
                    self.timeouts.increment()
                    self.skipped.increment(self.shard_count)
                    pending.resolve(
                        timeout_response(pending.request.request_id)
                    )
            if not live:
                continue
            await self._run_group(
                SearchParams.from_key(params_key), live, loop
            )

    async def _run_group(
        self,
        params: SearchParams,
        members: list[PendingRequest],
        loop: asyncio.AbstractEventLoop,
    ) -> None:
        """Scan + merge for one same-params group of requests."""
        queries = [
            make_query(
                pending.request.query_id, pending.request.query_text
            )
            for pending in members
        ]
        requests = [
            (params, query, self.database_config, shard, self.shard_count)
            for query in queries
            for shard in range(self.shard_count)
        ]
        self.dispatched.increment(len(requests))
        start = loop.time()
        try:
            async with self._pool_lock:
                scans = await loop.run_in_executor(
                    None, self.runtime.search_shards, requests
                )
        except Exception as error:  # noqa: BLE001 - answer, don't crash
            self.errors.increment(len(members))
            for pending in members:
                pending.resolve(error_response(
                    pending.request.request_id,
                    f"search failed: {error}",
                ))
            return
        self.scan_latency.observe(loop.time() - start)
        for position, (pending, query) in enumerate(zip(members, queries)):
            offset = position * self.shard_count
            engine = self._merge_engine(params, query)
            result = engine.finalize(
                list(scans[offset:offset + self.shard_count]),
                self.database_name,
            )
            self.completed.increment()
            pending.resolve(ok_response(
                pending.request.request_id,
                result_to_dict(result),
                shards=self.shard_count,
            ))

    def _merge_engine(self, params: SearchParams, query):
        """Memoized finalize-only engine for the merge step."""
        key = (params.key(), query.identifier, query.text)
        engine = self._engines.get(key)
        if engine is None:
            if len(self._engines) >= self._engine_cap:
                self._engines.clear()
            engine = make_finalizer(params, query)
            self._engines[key] = engine
        return engine
