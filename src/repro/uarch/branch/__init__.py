"""Branch prediction: direction predictors and the NFA/BTB."""

from repro.uarch.branch.btb import BranchTargetBuffer
from repro.uarch.branch.predictors import (
    BimodalPredictor,
    CombinedPredictor,
    DirectionPredictor,
    GsharePredictor,
    PerfectPredictor,
    create_predictor,
)

__all__ = [
    "BranchTargetBuffer",
    "BimodalPredictor",
    "CombinedPredictor",
    "DirectionPredictor",
    "GsharePredictor",
    "PerfectPredictor",
    "create_predictor",
]
