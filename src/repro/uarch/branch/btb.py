"""Next-fetch-address table (BTB/NFA).

Table VI gives a 4K-entry, 4-way associative NFA with a 2-cycle bubble
on a miss for a taken branch: the frontend cannot produce the target
address until the branch decodes, costing ``miss_penalty`` fetch
cycles (charged as the ``if_nfa`` trauma).
"""

from __future__ import annotations


class BranchTargetBuffer:
    """Set-associative pc -> target store with LRU replacement."""

    def __init__(self, entries: int, associativity: int, miss_penalty: int) -> None:
        if entries < associativity:
            raise ValueError("BTB needs at least one set")
        self.associativity = associativity
        self.miss_penalty = miss_penalty
        self.set_count = max(1, entries // associativity)
        self._sets: list[list[tuple[int, int]]] = [
            [] for _ in range(self.set_count)
        ]
        self.lookups = 0
        self.misses = 0

    def lookup(self, pc: int) -> int | None:
        """Return the stored target for ``pc`` or None on a miss."""
        self.lookups += 1
        ways = self._sets[(pc >> 2) % self.set_count]
        for position, (tag, target) in enumerate(ways):
            if tag == pc:
                if position:
                    del ways[position]
                    ways.insert(0, (tag, target))
                return target
        self.misses += 1
        return None

    def install(self, pc: int, target: int) -> None:
        """Record a taken branch's target."""
        ways = self._sets[(pc >> 2) % self.set_count]
        for position, (tag, _) in enumerate(ways):
            if tag == pc:
                del ways[position]
                break
        ways.insert(0, (pc, target))
        if len(ways) > self.associativity:
            ways.pop()

    @property
    def miss_rate(self) -> float:
        """Fraction of lookups that missed."""
        return self.misses / self.lookups if self.lookups else 0.0
