"""Direction predictors: bimodal, gshare, and the combined GP predictor.

Table VI describes a combined predictor that selects between a gshare
and a bimodal component with a chooser table (the classic McFarling
arrangement the paper labels "GP").  Figure 11 compares all three as a
function of table size, so each is available standalone.

All tables hold 2-bit saturating counters; sizes are powers of two
(non-powers are rounded down, matching hardware indexing).
"""

from __future__ import annotations

import abc


def _floor_pow2(value: int) -> int:
    if value < 1:
        raise ValueError("table size must be positive")
    return 1 << (value.bit_length() - 1)


class DirectionPredictor(abc.ABC):
    """Predict-then-update interface shared by all predictors."""

    def __init__(self) -> None:
        self.predictions = 0
        self.correct = 0

    @abc.abstractmethod
    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""

    @abc.abstractmethod
    def update(self, pc: int, taken: bool) -> None:
        """Train with the actual outcome."""

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Fused predict-then-train (the pipeline's per-branch pattern).

        Semantically identical to ``predict`` followed by ``update``;
        subclasses may override to share the table index computation.
        """
        predicted = self.predict(pc)
        self.update(pc, taken)
        return predicted

    def record(self, predicted: bool, taken: bool) -> bool:
        """Track accuracy; returns True when the prediction was right."""
        self.predictions += 1
        hit = predicted == taken
        if hit:
            self.correct += 1
        return hit

    @property
    def accuracy(self) -> float:
        """Fraction of correct predictions (1.0 before any prediction)."""
        return self.correct / self.predictions if self.predictions else 1.0


class PerfectPredictor(DirectionPredictor):
    """Oracle predictor used for Fig. 9's ideal configuration."""

    def predict(self, pc: int) -> bool:  # pragma: no cover - trivial
        raise NotImplementedError("perfect prediction is handled by the core")

    def update(self, pc: int, taken: bool) -> None:
        pass


class BimodalPredictor(DirectionPredictor):
    """Per-pc 2-bit saturating counters."""

    def __init__(self, entries: int) -> None:
        super().__init__()
        self.entries = _floor_pow2(entries)
        self._mask = self.entries - 1
        self._counters = bytearray([2] * self.entries)  # weakly taken

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> bool:
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            if counter < 3:
                self._counters[index] = counter + 1
        elif counter > 0:
            self._counters[index] = counter - 1


class GsharePredictor(DirectionPredictor):
    """Global-history-xor-pc indexed 2-bit counters."""

    def __init__(self, entries: int, history_bits: int | None = None) -> None:
        super().__init__()
        self.entries = _floor_pow2(entries)
        self._mask = self.entries - 1
        index_bits = self.entries.bit_length() - 1
        self.history_bits = (
            min(12, index_bits) if history_bits is None else history_bits
        )
        self._history = 0
        self._history_mask = (1 << self.history_bits) - 1
        self._counters = bytearray([2] * self.entries)

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            if counter < 3:
                self._counters[index] = counter + 1
        elif counter > 0:
            self._counters[index] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask


class CombinedPredictor(DirectionPredictor):
    """McFarling chooser between gshare and bimodal (the paper's GP).

    The entry budget is split: half to each component and a chooser
    array of the same size as a component.
    """

    def __init__(self, entries: int) -> None:
        super().__init__()
        component = max(2, _floor_pow2(entries) // 2)
        self.gshare = GsharePredictor(component)
        self.bimodal = BimodalPredictor(component)
        self._chooser = bytearray([2] * component)  # prefer gshare
        self._mask = component - 1

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> bool:
        if self._chooser[self._index(pc)] >= 2:
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        gshare_right = self.gshare.predict(pc) == taken
        bimodal_right = self.bimodal.predict(pc) == taken
        index = self._index(pc)
        if gshare_right != bimodal_right:
            counter = self._chooser[index]
            if gshare_right:
                if counter < 3:
                    self._chooser[index] = counter + 1
            elif counter > 0:
                self._chooser[index] = counter - 1
        self.gshare.update(pc, taken)
        self.bimodal.update(pc, taken)

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Fused path computing each component's table index only once.

        State transitions match ``predict`` + ``update`` exactly: both
        components predict with their pre-update state, the chooser
        trains only when they disagree, and the gshare history shifts
        after its counter update.
        """
        gshare = self.gshare
        bimodal = self.bimodal
        pc2 = pc >> 2
        g_index = (pc2 ^ gshare._history) & gshare._mask
        g_counters = gshare._counters
        g_pred = g_counters[g_index] >= 2
        b_index = pc2 & bimodal._mask
        b_counters = bimodal._counters
        b_pred = b_counters[b_index] >= 2
        index = pc2 & self._mask
        chooser = self._chooser
        predicted = g_pred if chooser[index] >= 2 else b_pred
        g_right = g_pred == taken
        if g_right != (b_pred == taken):
            counter = chooser[index]
            if g_right:
                if counter < 3:
                    chooser[index] = counter + 1
            elif counter > 0:
                chooser[index] = counter - 1
        counter = g_counters[g_index]
        if taken:
            if counter < 3:
                g_counters[g_index] = counter + 1
        elif counter > 0:
            g_counters[g_index] = counter - 1
        gshare._history = (
            (gshare._history << 1) | int(taken)
        ) & gshare._history_mask
        counter = b_counters[b_index]
        if taken:
            if counter < 3:
                b_counters[b_index] = counter + 1
        elif counter > 0:
            b_counters[b_index] = counter - 1
        return predicted


def create_predictor(kind: str, entries: int) -> DirectionPredictor:
    """Factory for Fig. 11's three strategies plus the oracle."""
    if kind == "bimodal":
        return BimodalPredictor(entries)
    if kind == "gshare":
        return GsharePredictor(entries)
    if kind in {"combined", "gp"}:
        return CombinedPredictor(entries)
    if kind == "perfect":
        return PerfectPredictor()
    raise ValueError(f"unknown predictor kind {kind!r}")
