"""Set-associative caches and the two-level hierarchy of Table V.

Caches are modelled at line granularity with true-LRU replacement.  An
access returns which level served it, from which the pipeline derives
both the latency and the trauma class (``mm_dl1`` for L1 misses served
by L2, ``mm_dl2`` for L2 misses served by memory).  Ideal levels
(``size_bytes=None``, the paper's "Inf" entries) always hit.

The hierarchy offers two equivalent query surfaces: the dataclass
returning :meth:`MemoryHierarchy.data_access` / ``inst_access`` for
analyses and tests, and the tuple-returning :meth:`access_data` /
``access_inst`` fast paths the cycle-level core calls tens of thousands
of times per simulated window (levels travel as plain ints matching
:class:`ServiceLevel` values, latency tables are precomputed).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.uarch.config import CacheConfig, MemoryConfig, TlbConfig


class ServiceLevel(IntEnum):
    """Which level of the hierarchy served an access."""

    L1 = 1
    L2 = 2
    MEMORY = 3


@dataclass
class CacheStats:
    """Access/miss counters for one cache."""

    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        """Miss ratio (0.0 when the cache saw no accesses)."""
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """One set-associative LRU cache level."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.accesses = 0
        self.misses = 0
        self._ideal = config.is_ideal
        self._assoc = config.associativity
        if config.is_ideal:
            self._sets: list[list[int]] = []
            self.set_count = 0
        else:
            self.set_count = config.size_bytes // (
                config.line_bytes * config.associativity
            )
            self._sets = [[] for _ in range(self.set_count)]
        self._line_shift = config.line_bytes.bit_length() - 1

    @property
    def stats(self) -> CacheStats:
        """Counters as a :class:`CacheStats` view."""
        return CacheStats(accesses=self.accesses, misses=self.misses)

    @stats.setter
    def stats(self, value: CacheStats) -> None:
        self.accesses = value.accesses
        self.misses = value.misses

    def reset_stats(self) -> None:
        """Zero the counters; cache contents stay warm."""
        self.accesses = 0
        self.misses = 0

    def line_of(self, address: int) -> int:
        """Line number containing ``address``."""
        return address >> self._line_shift

    def access(self, address: int, record_stats: bool = True) -> bool:
        """Access one line; returns True on hit.  Misses allocate.

        ``record_stats=False`` performs the access without counting it
        (prefetch fills, which would otherwise pollute demand-miss
        statistics).
        """
        if record_stats:
            self.accesses += 1
        if self._ideal:
            return True
        line = address >> self._line_shift
        ways = self._sets[line % self.set_count]
        if ways and ways[0] == line:  # MRU hit: no LRU reshuffle needed
            return True
        try:
            position = ways.index(line)
        except ValueError:
            if record_stats:
                self.misses += 1
            ways.insert(0, line)
            if len(ways) > self._assoc:
                ways.pop()
            return False
        if position:
            del ways[position]
            ways.insert(0, line)
        return True

    def probe(self, address: int) -> bool:
        """Check residency without updating LRU or statistics."""
        if self._ideal:
            return True
        line = address >> self._line_shift
        return line in self._sets[line % self.set_count]


class Tlb:
    """A translation lookaside buffer (set-associative over page numbers)."""

    def __init__(self, config: TlbConfig) -> None:
        self.config = config
        self.lookups = 0
        self.misses = 0
        self._ideal = config.is_ideal
        self._assoc = config.associativity
        self._page_shift = config.page_bytes.bit_length() - 1
        if config.is_ideal:
            self.set_count = 0
            self._sets: list[list[int]] = []
        else:
            self.set_count = max(1, config.entries // config.associativity)
            self._sets = [[] for _ in range(self.set_count)]

    def reset_stats(self) -> None:
        """Zero the counters; translations stay warm."""
        self.lookups = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Translate; returns True on a TLB hit.  Misses install."""
        self.lookups += 1
        if self._ideal:
            return True
        page = address >> self._page_shift
        ways = self._sets[page % self.set_count]
        if ways and ways[0] == page:  # MRU hit: no LRU reshuffle needed
            return True
        try:
            position = ways.index(page)
        except ValueError:
            self.misses += 1
            ways.insert(0, page)
            if len(ways) > self._assoc:
                ways.pop()
            return False
        if position:
            del ways[position]
            ways.insert(0, page)
        return True

    @property
    def miss_rate(self) -> float:
        """Fraction of lookups that missed."""
        return self.misses / self.lookups if self.lookups else 0.0


@dataclass(frozen=True)
class DataAccessResult:
    """Outcome of one data access through the hierarchy."""

    latency: int
    level: ServiceLevel
    tlb_missed: bool


class MemoryHierarchy:
    """TLBs + IL1 + DL1 + shared L2 + main memory (Table V arrangement)."""

    def __init__(self, config: MemoryConfig) -> None:
        self.config = config
        self.il1 = Cache(config.il1)
        self.dl1 = Cache(config.dl1)
        self.l2 = Cache(config.l2)
        self.itlb = Tlb(config.itlb)
        self.dtlb = Tlb(config.dtlb)
        # Latency of an access served at each ServiceLevel (index 0 unused).
        self._data_latency = (
            0,
            config.dl1.latency,
            config.dl1.latency + config.l2.latency,
            config.dl1.latency + config.l2.latency + config.memory_latency,
        )
        self._inst_latency = (
            0,
            config.il1.latency,
            config.il1.latency + config.l2.latency,
            config.il1.latency + config.l2.latency + config.memory_latency,
        )
        self._seq_prefetch = config.sequential_prefetch
        self._dtlb_penalty = config.dtlb.miss_penalty
        self._itlb_penalty = config.itlb.miss_penalty

    def reset_stats(self) -> None:
        """Zero all cache and TLB counters (functional-warmup boundary)."""
        for cache in (self.il1, self.dl1, self.l2):
            cache.reset_stats()
        for tlb in (self.itlb, self.dtlb):
            tlb.reset_stats()

    def _lines_touched(self, cache: Cache, address: int, size: int) -> range:
        first = cache.line_of(address)
        last = cache.line_of(address + max(size, 1) - 1)
        return range(first, last + 1)

    def _fill_line(
        self, line_address: int, record_stats: bool = True
    ) -> ServiceLevel:
        """Bring one line into DL1; returns where it was found."""
        if self.dl1.access(line_address, record_stats):
            return ServiceLevel.L1
        if self.l2.access(line_address, record_stats):
            return ServiceLevel.L2
        return ServiceLevel.MEMORY

    def access_data(self, address: int, size: int = 4) -> tuple[int, int, bool]:
        """Data access fast path: ``(latency, level, tlb_missed)``.

        Identical state transitions and statistics to
        :meth:`data_access`; ``level`` is the :class:`ServiceLevel`
        value as a plain int.  Multi-line accesses (vector loads
        crossing a boundary) probe every touched line; the worst line
        determines the service level.  With ``sequential_prefetch``
        every DL1 miss also pulls the next line into the hierarchy.

        The DTLB lookup and the single-line DL1 case are inlined here
        (state transitions copied verbatim from :meth:`Tlb.access` and
        :meth:`Cache.access`): the core calls this once per issued
        load/store, and the call overhead of the two-level delegation
        was a measurable slice of simulation time.
        """
        dtlb = self.dtlb
        dtlb.lookups += 1
        tlb_missed = False
        if not dtlb._ideal:
            page = address >> dtlb._page_shift
            ways = dtlb._sets[page % dtlb.set_count]
            if not ways or ways[0] != page:
                try:
                    position = ways.index(page)
                except ValueError:
                    dtlb.misses += 1
                    tlb_missed = True
                    ways.insert(0, page)
                    if len(ways) > dtlb._assoc:
                        ways.pop()
                else:
                    if position:
                        del ways[position]
                        ways.insert(0, page)
        dl1 = self.dl1
        shift = dl1._line_shift
        line = address >> shift
        last = (address + (size if size > 1 else 1) - 1) >> shift
        if line == last:
            dl1.accesses += 1
            hit = dl1._ideal
            if not hit:
                ways = dl1._sets[line % dl1.set_count]
                if ways and ways[0] == line:
                    hit = True
                else:
                    try:
                        position = ways.index(line)
                    except ValueError:
                        dl1.misses += 1
                        ways.insert(0, line)
                        if len(ways) > dl1._assoc:
                            ways.pop()
                    else:
                        hit = True
                        if position:
                            del ways[position]
                            ways.insert(0, line)
            if hit:
                latency = self._data_latency[1]
                if tlb_missed:
                    latency += self._dtlb_penalty
                return latency, 1, tlb_missed
            line_bytes = dl1.config.line_bytes
            line_address = line * line_bytes
            worst = 2 if self.l2.access(line_address) else 3
            if self._seq_prefetch:
                # Prefetch fills bypass the demand statistics.
                self._fill_line(line_address + line_bytes, record_stats=False)
            latency = self._data_latency[worst]
            if tlb_missed:
                latency += self._dtlb_penalty
            return latency, worst, tlb_missed
        line_bytes = dl1.config.line_bytes
        worst = 1
        while line <= last:
            line_address = line * line_bytes
            if dl1.access(line_address):
                level = 1
            elif self.l2.access(line_address):
                level = 2
            else:
                level = 3
            if level != 1:
                if level > worst:
                    worst = level
                if self._seq_prefetch:
                    # Prefetch fills bypass the demand statistics.
                    self._fill_line(
                        line_address + line_bytes, record_stats=False
                    )
            line += 1
        latency = self._data_latency[worst]
        if tlb_missed:
            latency += self._dtlb_penalty
        return latency, worst, tlb_missed

    def access_inst(self, address: int) -> tuple[int, int, bool]:
        """Instruction fetch fast path: ``(latency, level, tlb_missed)``."""
        tlb_missed = not self.itlb.access(address)
        il1 = self.il1
        line_address = (address >> il1._line_shift) * il1.config.line_bytes
        if il1.access(line_address):
            level = 1
        elif self.l2.access(line_address):
            level = 2
        else:
            level = 3
        latency = self._inst_latency[level]
        if tlb_missed:
            latency += self._itlb_penalty
        return latency, level, tlb_missed

    def data_access(self, address: int, size: int = 4) -> DataAccessResult:
        """Access data; reports the deepest serving level and TLB outcome."""
        latency, level, tlb_missed = self.access_data(address, size)
        return DataAccessResult(
            latency=latency, level=ServiceLevel(level), tlb_missed=tlb_missed
        )

    def inst_access(self, address: int) -> DataAccessResult:
        """Fetch one instruction line."""
        latency, level, tlb_missed = self.access_inst(address)
        return DataAccessResult(
            latency=latency, level=ServiceLevel(level), tlb_missed=tlb_missed
        )

    def data_latency(self, level: ServiceLevel) -> int:
        """Latency of a data access served at ``level``."""
        return self._data_latency[level]
