"""Set-associative caches and the two-level hierarchy of Table V.

Caches are modelled at line granularity with true-LRU replacement.  An
access returns which level served it, from which the pipeline derives
both the latency and the trauma class (``mm_dl1`` for L1 misses served
by L2, ``mm_dl2`` for L2 misses served by memory).  Ideal levels
(``size_bytes=None``, the paper's "Inf" entries) always hit.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.uarch.config import CacheConfig, MemoryConfig, TlbConfig


class ServiceLevel(IntEnum):
    """Which level of the hierarchy served an access."""

    L1 = 1
    L2 = 2
    MEMORY = 3


@dataclass
class CacheStats:
    """Access/miss counters for one cache."""

    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        """Miss ratio (0.0 when the cache saw no accesses)."""
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """One set-associative LRU cache level."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        if config.is_ideal:
            self._sets: list[list[int]] = []
            self.set_count = 0
        else:
            self.set_count = config.size_bytes // (
                config.line_bytes * config.associativity
            )
            self._sets = [[] for _ in range(self.set_count)]
        self._line_shift = config.line_bytes.bit_length() - 1

    def line_of(self, address: int) -> int:
        """Line number containing ``address``."""
        return address >> self._line_shift

    def access(self, address: int, record_stats: bool = True) -> bool:
        """Access one line; returns True on hit.  Misses allocate.

        ``record_stats=False`` performs the access without counting it
        (prefetch fills, which would otherwise pollute demand-miss
        statistics).
        """
        if record_stats:
            self.stats.accesses += 1
        if self.config.is_ideal:
            return True
        line = address >> self._line_shift
        index = line % self.set_count
        ways = self._sets[index]
        try:
            position = ways.index(line)
        except ValueError:
            if record_stats:
                self.stats.misses += 1
            ways.insert(0, line)
            if len(ways) > self.config.associativity:
                ways.pop()
            return False
        if position:
            del ways[position]
            ways.insert(0, line)
        return True

    def probe(self, address: int) -> bool:
        """Check residency without updating LRU or statistics."""
        if self.config.is_ideal:
            return True
        line = address >> self._line_shift
        return line in self._sets[line % self.set_count]


class Tlb:
    """A translation lookaside buffer (set-associative over page numbers)."""

    def __init__(self, config: TlbConfig) -> None:
        self.config = config
        self.lookups = 0
        self.misses = 0
        self._page_shift = config.page_bytes.bit_length() - 1
        if config.is_ideal:
            self.set_count = 0
            self._sets: list[list[int]] = []
        else:
            self.set_count = max(1, config.entries // config.associativity)
            self._sets = [[] for _ in range(self.set_count)]

    def access(self, address: int) -> bool:
        """Translate; returns True on a TLB hit.  Misses install."""
        self.lookups += 1
        if self.config.is_ideal:
            return True
        page = address >> self._page_shift
        ways = self._sets[page % self.set_count]
        try:
            position = ways.index(page)
        except ValueError:
            self.misses += 1
            ways.insert(0, page)
            if len(ways) > self.config.associativity:
                ways.pop()
            return False
        if position:
            del ways[position]
            ways.insert(0, page)
        return True

    @property
    def miss_rate(self) -> float:
        """Fraction of lookups that missed."""
        return self.misses / self.lookups if self.lookups else 0.0


@dataclass(frozen=True)
class DataAccessResult:
    """Outcome of one data access through the hierarchy."""

    latency: int
    level: ServiceLevel
    tlb_missed: bool


class MemoryHierarchy:
    """TLBs + IL1 + DL1 + shared L2 + main memory (Table V arrangement)."""

    def __init__(self, config: MemoryConfig) -> None:
        self.config = config
        self.il1 = Cache(config.il1)
        self.dl1 = Cache(config.dl1)
        self.l2 = Cache(config.l2)
        self.itlb = Tlb(config.itlb)
        self.dtlb = Tlb(config.dtlb)

    def _lines_touched(self, cache: Cache, address: int, size: int) -> range:
        first = cache.line_of(address)
        last = cache.line_of(address + max(size, 1) - 1)
        return range(first, last + 1)

    def _fill_line(
        self, line_address: int, record_stats: bool = True
    ) -> ServiceLevel:
        """Bring one line into DL1; returns where it was found."""
        if self.dl1.access(line_address, record_stats):
            return ServiceLevel.L1
        if self.l2.access(line_address, record_stats):
            return ServiceLevel.L2
        return ServiceLevel.MEMORY

    def data_access(self, address: int, size: int = 4) -> DataAccessResult:
        """Access data; reports the deepest serving level and TLB outcome.

        Multi-line accesses (vector loads crossing a boundary) probe
        every touched line; the worst line determines the service
        level.  With ``sequential_prefetch`` every DL1 miss also pulls
        the next line into the hierarchy.
        """
        tlb_missed = not self.dtlb.access(address)
        worst = ServiceLevel.L1
        for line in self._lines_touched(self.dl1, address, size):
            line_address = line * self.dl1.config.line_bytes
            level = self._fill_line(line_address)
            if level != ServiceLevel.L1:
                worst = max(worst, level)
                if self.config.sequential_prefetch:
                    # Prefetch fills bypass the demand statistics.
                    self._fill_line(
                        line_address + self.dl1.config.line_bytes,
                        record_stats=False,
                    )
        latency = self.data_latency(worst)
        if tlb_missed:
            latency += self.config.dtlb.miss_penalty
        return DataAccessResult(latency=latency, level=worst,
                                tlb_missed=tlb_missed)

    def inst_access(self, address: int) -> DataAccessResult:
        """Fetch one instruction line."""
        tlb_missed = not self.itlb.access(address)
        line_address = self.il1.line_of(address) * self.il1.config.line_bytes
        if self.il1.access(line_address):
            latency = self.config.il1.latency
            level = ServiceLevel.L1
        elif self.l2.access(line_address):
            latency = self.config.il1.latency + self.config.l2.latency
            level = ServiceLevel.L2
        else:
            latency = (
                self.config.il1.latency
                + self.config.l2.latency
                + self.config.memory_latency
            )
            level = ServiceLevel.MEMORY
        if tlb_missed:
            latency += self.config.itlb.miss_penalty
        return DataAccessResult(latency=latency, level=level,
                                tlb_missed=tlb_missed)

    def data_latency(self, level: ServiceLevel) -> int:
        """Latency of a data access served at ``level``."""
        if level == ServiceLevel.L1:
            return self.config.dl1.latency
        if level == ServiceLevel.L2:
            return self.config.dl1.latency + self.config.l2.latency
        return (
            self.config.dl1.latency
            + self.config.l2.latency
            + self.config.memory_latency
        )
