"""Processor, memory, and branch-predictor configurations.

Encodes the paper's Tables IV (processor widths), V (memory
hierarchies), and VI (branch predictor), plus constructors for the
swept variants used by Figures 5-9.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.isa.opcodes import FunctionalUnit

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class CacheConfig:
    """One cache level.  ``size_bytes=None`` means ideal (always hits)."""

    size_bytes: int | None
    associativity: int
    line_bytes: int
    latency: int

    def __post_init__(self) -> None:
        if self.size_bytes is not None:
            if self.size_bytes <= 0:
                raise ValueError("cache size must be positive")
            if self.size_bytes % (self.line_bytes * self.associativity):
                raise ValueError("size must be a multiple of line * assoc")
        if self.associativity < 1 or self.line_bytes < 1 or self.latency < 0:
            raise ValueError("invalid cache parameters")

    @property
    def is_ideal(self) -> bool:
        """True for the paper's 'Inf' entries (perfect cache)."""
        return self.size_bytes is None


@dataclass(frozen=True)
class TlbConfig:
    """One translation lookaside buffer.  ``entries=None`` is ideal."""

    entries: int | None = 128
    associativity: int = 2
    page_bytes: int = 4096
    miss_penalty: int = 30

    def __post_init__(self) -> None:
        if self.entries is not None and self.entries < self.associativity:
            raise ValueError("TLB needs at least one set")
        if self.page_bytes & (self.page_bytes - 1):
            raise ValueError("page size must be a power of two")

    @property
    def is_ideal(self) -> bool:
        """True when translation never misses."""
        return self.entries is None


@dataclass(frozen=True)
class MemoryConfig:
    """Table V column: IL1 + DL1 + shared L2 + main memory."""

    name: str
    il1: CacheConfig
    dl1: CacheConfig
    l2: CacheConfig
    memory_latency: int = 300
    itlb: TlbConfig = TlbConfig()
    dtlb: TlbConfig = TlbConfig()
    #: Next-line prefetch on DL1 misses (a design-exploration option;
    #: the paper's configurations do not prefetch).
    sequential_prefetch: bool = False


def _memory(
    name: str,
    l1_kb: int | None,
    l2_mb: int | None,
    l1_latency: int = 1,
    dl1_assoc: int = 2,
) -> MemoryConfig:
    l1_bytes = None if l1_kb is None else l1_kb * KB
    l2_bytes = None if l2_mb is None else l2_mb * MB
    # Ideal-L1 configurations model ideal translation as well.
    tlb = TlbConfig(entries=None) if l1_kb is None else TlbConfig()
    return MemoryConfig(
        name=name,
        il1=CacheConfig(l1_bytes, 1, 128, l1_latency),
        dl1=CacheConfig(l1_bytes, dl1_assoc, 128, l1_latency),
        l2=CacheConfig(l2_bytes, 8, 128, 12),
        itlb=tlb,
        dtlb=tlb,
    )


#: Table V presets.
ME1 = _memory("me1", 32, 1)
ME2 = _memory("me2", 64, 2)
ME3 = _memory("me3", 128, 4)
ME4 = _memory("me4", 128, None)
MEINF = _memory("meinf", None, None)
MEMORY_PRESETS: tuple[MemoryConfig, ...] = (ME1, ME2, ME3, ME4, MEINF)


def memory_with_dl1(
    size_bytes: int | None,
    associativity: int = 2,
    latency: int = 1,
    l2_mb: int | None = 2,
) -> MemoryConfig:
    """Fig 5/6/7 variants: custom DL1 over a 2M L2 (4-way processor)."""
    size_kb = "inf" if size_bytes is None else size_bytes // KB
    base = _memory(f"dl1-{size_kb}k-a{associativity}-l{latency}", 32, l2_mb)
    dl1 = CacheConfig(size_bytes, associativity, 128, latency)
    il1 = CacheConfig(32 * KB, 1, 128, latency)
    return replace(base, dl1=dl1, il1=il1)


@dataclass(frozen=True)
class BranchPredictorConfig:
    """Table VI: combined gshare+bimodal with an NFA/BTB."""

    kind: str = "combined"      # combined | gshare | bimodal | perfect
    table_entries: int = 16 * 1024
    btb_entries: int = 4 * 1024
    btb_associativity: int = 4
    btb_miss_penalty: int = 2
    max_predicted_branches: int = 12
    mispredict_recovery: int = 3

    def __post_init__(self) -> None:
        if self.kind not in {"combined", "gshare", "bimodal", "perfect"}:
            raise ValueError(f"unknown predictor kind {self.kind!r}")
        if self.table_entries < 1 or self.btb_entries < 1:
            raise ValueError("predictor tables must be non-empty")


#: Table VI preset and its ideal counterpart.
BP_REAL = BranchPredictorConfig()
BP_PERFECT = BranchPredictorConfig(kind="perfect")


@dataclass(frozen=True)
class ProcessorConfig:
    """Table IV column: widths, registers, units, queues."""

    name: str
    fetch_width: int
    dispatch_width: int
    retire_width: int
    inflight: int
    gpr: int
    vpr: int
    fpr: int
    units: dict[FunctionalUnit, int]
    issue_queue_size: int
    ibuffer_size: int
    retire_queue: int
    dcache_read_ports: int
    dcache_write_ports: int
    max_outstanding_misses: int
    store_queue_size: int = 20
    memory: MemoryConfig = ME1
    branch: BranchPredictorConfig = BP_REAL
    #: Extra cycles added to every vector load's latency *and* port
    #: occupancy — the Fig 8 "+1 lat" scenario where double-width loads
    #: are pipelined over the same 128-bit memory path.
    wide_load_extra_latency: int = 0

    def with_memory(self, memory: MemoryConfig) -> "ProcessorConfig":
        """Copy with a different memory hierarchy."""
        return replace(self, memory=memory)

    def with_branch(self, branch: BranchPredictorConfig) -> "ProcessorConfig":
        """Copy with a different branch predictor."""
        return replace(self, branch=branch)


def _units(ldst, fx, fp, br, vi, vper, vcmplx, vfp) -> dict[FunctionalUnit, int]:
    return {
        FunctionalUnit.LDST: ldst,
        FunctionalUnit.FX: fx,
        FunctionalUnit.FP: fp,
        FunctionalUnit.BR: br,
        FunctionalUnit.VI: vi,
        FunctionalUnit.VPER: vper,
        FunctionalUnit.VCMPLX: vcmplx,
        FunctionalUnit.VFP: vfp,
    }


#: Table IV presets (PowerPC 970 class, aggressive, and limit designs).
PROC_4WAY = ProcessorConfig(
    name="4-way", fetch_width=4, dispatch_width=4, retire_width=6,
    inflight=160, gpr=96, vpr=96, fpr=96,
    units=_units(2, 3, 2, 2, 1, 1, 1, 1),
    issue_queue_size=20, ibuffer_size=18, retire_queue=128,
    dcache_read_ports=2, dcache_write_ports=1, max_outstanding_misses=4,
    store_queue_size=20,
)
PROC_8WAY = ProcessorConfig(
    name="8-way", fetch_width=8, dispatch_width=8, retire_width=12,
    inflight=255, gpr=128, vpr=128, fpr=128,
    units=_units(4, 6, 4, 3, 2, 2, 2, 2),
    issue_queue_size=40, ibuffer_size=36, retire_queue=180,
    dcache_read_ports=3, dcache_write_ports=2, max_outstanding_misses=8,
    store_queue_size=40,
)
PROC_12WAY = ProcessorConfig(
    name="12-way", fetch_width=12, dispatch_width=12, retire_width=16,
    inflight=255, gpr=128, vpr=128, fpr=128,
    units=_units(6, 8, 6, 5, 4, 3, 3, 3),
    issue_queue_size=60, ibuffer_size=54, retire_queue=180,
    dcache_read_ports=5, dcache_write_ports=3, max_outstanding_misses=12,
    store_queue_size=60,
)
PROC_16WAY = ProcessorConfig(
    name="16-way", fetch_width=16, dispatch_width=16, retire_width=20,
    inflight=255, gpr=128, vpr=128, fpr=128,
    units=_units(8, 10, 8, 7, 6, 4, 4, 4),
    issue_queue_size=80, ibuffer_size=72, retire_queue=180,
    dcache_read_ports=7, dcache_write_ports=4, max_outstanding_misses=16,
    store_queue_size=80,
)

WIDTH_PRESETS: tuple[ProcessorConfig, ...] = (PROC_4WAY, PROC_8WAY, PROC_16WAY)
