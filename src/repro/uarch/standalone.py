"""Fast standalone trace analyses: cache-only and predictor-only runs.

Figure 5/6's miss-rate curves and Figure 11's prediction-rate curves do
not need the full pipeline — only the memory reference stream or the
branch outcome stream.  These helpers replay just that stream straight
from the trace's decode plane (no per-instruction objects), which is
one to two orders of magnitude faster than the cycle-level model, so
wide parameter sweeps stay cheap.
"""

from __future__ import annotations

from repro.isa.trace import Trace
from repro.uarch.caches import MemoryHierarchy
from repro.uarch.config import MemoryConfig
from repro.uarch.branch.predictors import DirectionPredictor, create_predictor
from repro.uarch.pipeline.decode import decode_trace
from repro.uarch.results import BranchResult, CacheResult


def run_cache_only(trace: Trace, memory: MemoryConfig) -> tuple[CacheResult, CacheResult]:
    """Replay the data reference stream; returns (DL1, L2) statistics."""
    return run_cache_only_batch(trace, [memory])[0]


def run_cache_only_batch(
    trace: Trace, memories: list[MemoryConfig]
) -> list[tuple[CacheResult, CacheResult]]:
    """Replay the data reference stream under many memory configurations.

    The lockstep counterpart for standalone analyses (the Figure 5/6
    parameter sweeps replay one trace under dozens of hierarchies):
    the memory-op index list is extracted from the decode plane once
    and every hierarchy replays against it, so per-configuration cost
    is the cache model alone.  Results are identical to calling
    :func:`run_cache_only` per configuration.
    """
    plane = decode_trace(trace)
    addresses = plane.address
    sizes = plane.size
    indices = [
        i for i, memory_op in enumerate(plane.is_memory) if memory_op
    ]
    results: list[tuple[CacheResult, CacheResult]] = []
    for memory in memories:
        hierarchy = MemoryHierarchy(memory)
        access_data = hierarchy.access_data
        for index in indices:
            access_data(addresses[index], sizes[index])
        results.append((
            CacheResult(hierarchy.dl1.accesses, hierarchy.dl1.misses),
            CacheResult(hierarchy.l2.accesses, hierarchy.l2.misses),
        ))
    return results


def run_predictor_only(
    trace: Trace, kind: str, entries: int
) -> tuple[BranchResult, DirectionPredictor]:
    """Replay the branch stream through one direction predictor."""
    return run_predictor_only_batch(trace, [(kind, entries)])[0]


def run_predictor_only_batch(
    trace: Trace, predictors: list[tuple[str, int]]
) -> list[tuple[BranchResult, DirectionPredictor]]:
    """Replay the branch stream through many direction predictors.

    ``predictors`` is a list of ``(kind, entries)`` pairs; the branch
    index list is shared across all of them (the Figure 11 study walks
    strategies x table sizes over one trace).  Results are identical
    to calling :func:`run_predictor_only` per pair.
    """
    plane = decode_trace(trace)
    pcs = plane.pc
    takens = plane.taken
    indices = [
        i for i, branch_op in enumerate(plane.is_branch) if branch_op
    ]
    results: list[tuple[BranchResult, DirectionPredictor]] = []
    for kind, entries in predictors:
        predictor = create_predictor(kind, entries)
        record = predictor.record
        predict_and_update = predictor.predict_and_update
        for index in indices:
            record(
                predict_and_update(pcs[index], takens[index]), takens[index]
            )
        results.append((
            BranchResult(
                predictions=predictor.predictions, correct=predictor.correct
            ),
            predictor,
        ))
    return results
