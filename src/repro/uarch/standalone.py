"""Fast standalone trace analyses: cache-only and predictor-only runs.

Figure 5/6's miss-rate curves and Figure 11's prediction-rate curves do
not need the full pipeline — only the memory reference stream or the
branch outcome stream.  These helpers replay just that stream, which is
one to two orders of magnitude faster than the cycle-level model, so
wide parameter sweeps stay cheap.
"""

from __future__ import annotations

from repro.isa.trace import Trace
from repro.uarch.caches import MemoryHierarchy
from repro.uarch.config import MemoryConfig
from repro.uarch.branch.predictors import DirectionPredictor, create_predictor
from repro.uarch.results import BranchResult, CacheResult


def run_cache_only(trace: Trace, memory: MemoryConfig) -> tuple[CacheResult, CacheResult]:
    """Replay the data reference stream; returns (DL1, L2) statistics."""
    hierarchy = MemoryHierarchy(memory)
    for instruction in trace.instructions:
        if instruction.is_memory:
            hierarchy.data_access(instruction.address, instruction.size)
    return (
        CacheResult(hierarchy.dl1.stats.accesses, hierarchy.dl1.stats.misses),
        CacheResult(hierarchy.l2.stats.accesses, hierarchy.l2.stats.misses),
    )


def run_predictor_only(
    trace: Trace, kind: str, entries: int
) -> tuple[BranchResult, DirectionPredictor]:
    """Replay the branch stream through one direction predictor."""
    predictor = create_predictor(kind, entries)
    for instruction in trace.instructions:
        if instruction.is_branch:
            predicted = predictor.predict(instruction.pc)
            predictor.record(predicted, instruction.taken)
            predictor.update(instruction.pc, instruction.taken)
    return (
        BranchResult(
            predictions=predictor.predictions, correct=predictor.correct
        ),
        predictor,
    )
