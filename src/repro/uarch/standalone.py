"""Fast standalone trace analyses: cache-only and predictor-only runs.

Figure 5/6's miss-rate curves and Figure 11's prediction-rate curves do
not need the full pipeline — only the memory reference stream or the
branch outcome stream.  These helpers replay just that stream straight
from the trace's decode plane (no per-instruction objects), which is
one to two orders of magnitude faster than the cycle-level model, so
wide parameter sweeps stay cheap.
"""

from __future__ import annotations

from repro.isa.trace import Trace
from repro.uarch.caches import MemoryHierarchy
from repro.uarch.config import MemoryConfig
from repro.uarch.branch.predictors import DirectionPredictor, create_predictor
from repro.uarch.pipeline.decode import decode_trace
from repro.uarch.results import BranchResult, CacheResult


def run_cache_only(trace: Trace, memory: MemoryConfig) -> tuple[CacheResult, CacheResult]:
    """Replay the data reference stream; returns (DL1, L2) statistics."""
    hierarchy = MemoryHierarchy(memory)
    access_data = hierarchy.access_data
    plane = decode_trace(trace)
    addresses = plane.address
    sizes = plane.size
    for index in [
        i for i, memory_op in enumerate(plane.is_memory) if memory_op
    ]:
        access_data(addresses[index], sizes[index])
    return (
        CacheResult(hierarchy.dl1.accesses, hierarchy.dl1.misses),
        CacheResult(hierarchy.l2.accesses, hierarchy.l2.misses),
    )


def run_predictor_only(
    trace: Trace, kind: str, entries: int
) -> tuple[BranchResult, DirectionPredictor]:
    """Replay the branch stream through one direction predictor."""
    predictor = create_predictor(kind, entries)
    plane = decode_trace(trace)
    pcs = plane.pc
    takens = plane.taken
    record = predictor.record
    predict_and_update = predictor.predict_and_update
    for index in [
        i for i, branch_op in enumerate(plane.is_branch) if branch_op
    ]:
        record(predict_and_update(pcs[index], takens[index]), takens[index])
    return (
        BranchResult(
            predictions=predictor.predictions, correct=predictor.correct
        ),
        predictor,
    )
