"""Trace-driven out-of-order superscalar core (Turandot-style).

One :class:`OutOfOrderCore` simulates one trace on one configuration.
The pipeline models the structures Tables IV-VI parameterize:

* frontend: I-cache, direction predictor + NFA/BTB, instruction buffer,
  fetch-group breaks on taken branches, a cap on in-flight predicted
  branches, and fetch stall on unresolved mispredictions;
* dispatch: physical-register (GPR/VPR/FPR) allocation, per-unit issue
  queues, in-flight and reorder-queue capacity;
* issue/execute: per-class unit pools (fully pipelined), wakeup lists
  driven by producer completion, D-cache read/write ports, MSHR-limited
  outstanding misses, two-level data cache with memory behind it;
* retire: in-order, bounded width.

Wrong-path execution is not replayed (the trace has no wrong path);
mispredictions stall fetch until the branch resolves plus the recovery
time, which is the trace-driven Turandot approach.

Stall accounting: each cycle dispatch moves fewer instructions than its
width, one trauma is charged for the blocking reason, with blame
forwarded to the head of whichever structure is stuck (see
:mod:`repro.uarch.traumas`).
"""

from __future__ import annotations

from collections import deque

from repro.isa.opcodes import FU_OF_OPCLASS, LATENCY_OF_OPCLASS, FunctionalUnit, OpClass
from repro.isa.trace import Trace
from repro.uarch.branch.btb import BranchTargetBuffer
from repro.uarch.branch.predictors import create_predictor
from repro.uarch.caches import MemoryHierarchy, ServiceLevel
from repro.uarch.config import ProcessorConfig
from repro.uarch.results import BranchResult, CacheResult, SimulationResult
from repro.uarch.traumas import (
    Trauma,
    TraumaAccount,
    diq_trauma,
    ful_trauma,
    rg_trauma,
)

#: Register file classes.
_GPR, _VPR, _FPR = 0, 1, 2

_REGFILE_OF_OP: dict[OpClass, int] = {
    OpClass.IALU: _GPR,
    OpClass.ILOAD: _GPR,
    OpClass.OTHER: _GPR,
    OpClass.VLOAD: _VPR,
    OpClass.VSIMPLE: _VPR,
    OpClass.VPERM: _VPR,
    OpClass.VCMPLX: _VPR,
    OpClass.FPU: _FPR,
}

#: Queues tracked for Fig. 10 occupancy histograms.
_TRACKED_QUEUES: tuple[tuple[str, FunctionalUnit], ...] = (
    ("FIX-Q", FunctionalUnit.FX),
    ("MEM-Q", FunctionalUnit.LDST),
    ("BR-Q", FunctionalUnit.BR),
    ("VI-Q", FunctionalUnit.VI),
    ("VPER-Q", FunctionalUnit.VPER),
)


def _claim_port(port_free: list[int], cycle: int, occupancy: int) -> int | None:
    """Claim a cache port for ``occupancy`` cycles; None if all busy."""
    for port, free_at in enumerate(port_free):
        if free_at <= cycle:
            port_free[port] = cycle + occupancy
            return port
    return None


def _words_of(instruction) -> range:
    """8-byte word numbers touched by a memory instruction."""
    first = instruction.address >> 3
    last = (instruction.address + max(instruction.size, 1) - 1) >> 3
    return range(first, last + 1)


class OutOfOrderCore:
    """One simulation instance (single use: build, ``run()``, read result)."""

    def __init__(
        self,
        trace: Trace,
        config: ProcessorConfig,
        track_occupancy: bool = False,
        warmup: Trace | None = None,
    ) -> None:
        self.trace = trace
        self.config = config
        self.track_occupancy = track_occupancy
        self.warmup = warmup
        self.hierarchy = MemoryHierarchy(config.memory)
        self.traumas = TraumaAccount()
        branch = config.branch
        self.perfect_bp = branch.kind == "perfect"
        self.predictor = (
            None if self.perfect_bp else create_predictor(
                branch.kind, branch.table_entries
            )
        )
        self.btb = BranchTargetBuffer(
            branch.btb_entries, branch.btb_associativity, branch.btb_miss_penalty
        )
        self.branch_predictions = 0
        self.branch_correct = 0

    # ------------------------------------------------------------------
    def _functional_warmup(self) -> None:
        """Replay a warmup trace through the long-lived structures.

        Caches, TLBs, the direction predictor, and the BTB see the
        warmup stream (SMARTS-style functional warming); statistics are
        reset afterwards so results reflect only the measured trace.
        """
        hierarchy = self.hierarchy
        last_line = -1
        for instruction in self.warmup.instructions:
            line = instruction.pc >> 7
            if line != last_line:
                hierarchy.inst_access(instruction.pc)
                last_line = line
            if instruction.is_memory:
                hierarchy.data_access(instruction.address, instruction.size)
            elif instruction.is_branch:
                if not self.perfect_bp:
                    self.predictor.update(instruction.pc, instruction.taken)
                if instruction.taken:
                    self.btb.install(instruction.pc, instruction.target)
        # Reset statistics; state stays warm.
        from repro.uarch.caches import CacheStats

        for cache in (hierarchy.il1, hierarchy.dl1, hierarchy.l2):
            cache.stats = CacheStats()
        for tlb in (hierarchy.itlb, hierarchy.dtlb):
            tlb.lookups = 0
            tlb.misses = 0
        self.btb.lookups = 0
        self.btb.misses = 0

    def run(self, max_cycles: int | None = None) -> SimulationResult:
        """Simulate to completion; returns the aggregated result."""
        if self.warmup is not None:
            self._functional_warmup()
        instrs = self.trace.instructions
        n = len(instrs)
        config = self.config
        branch_config = config.branch
        units = config.units
        iq_capacity = config.issue_queue_size
        hierarchy = self.hierarchy
        memory_is_ideal = (
            config.memory.dl1.is_ideal and config.memory.l2.is_ideal
        )

        # Per-instruction state.
        done = bytearray(n)
        issued = bytearray(n)
        pending_sources = [0] * n
        waiters: dict[int, list[int]] = {}
        #: in-flight memory stall: index -> (trauma, uses an MSHR).
        miss_info: dict[int, tuple[Trauma, bool]] = {}
        #: 8-byte word -> youngest in-flight store writing it.
        pending_store_words: dict[int, int] = {}
        store_queue_used = 0

        # Structures.
        ibuffer: deque[int] = deque()
        rob: deque[int] = deque()
        iq: dict[FunctionalUnit, deque[int]] = {fu: deque() for fu in units}
        iq_count: dict[FunctionalUnit, int] = {fu: 0 for fu in units}
        ready: dict[FunctionalUnit, deque[int]] = {fu: deque() for fu in units}
        complete_at: dict[int, list[int]] = {}
        free_regs = [config.gpr, config.vpr, config.fpr]
        outstanding_misses = 0
        inflight = 0
        predicted_branches = 0

        # D-cache ports: each access occupies a port for the L1 access
        # time (the array is not pipelined), so raising the hit latency
        # also cuts load/store bandwidth — the effect behind Fig. 7's
        # sensitivity of load-heavy SIMD code.
        dl1_latency = max(1, config.memory.dl1.latency)
        read_port_free = [0] * config.dcache_read_ports
        write_port_free = [0] * config.dcache_write_ports

        # Frontend state.
        fetch_index = 0
        fetch_stall_until = 0
        fetch_reason = Trauma.DECODE
        wait_branch = -1           # unresolved mispredicted branch index
        last_fetch_line = -1

        # Statistics.
        occupancy: dict[str, dict[int, int]] = {
            name: {} for name, _ in _TRACKED_QUEUES
        }
        occupancy["INFLIGHT"] = {}
        occupancy["RETIREQ"] = {}

        retired = 0
        cycle = 0
        recovery = branch_config.mispredict_recovery
        wide_extra = config.wide_load_extra_latency

        while retired < n:
            cycle += 1
            if max_cycles is not None and cycle > max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles "
                    f"({retired}/{n} retired)"
                )

            # ---------------- completion ----------------------------
            finishing = complete_at.pop(cycle, None)
            if finishing:
                for index in finishing:
                    done[index] = 1
                    inflight -= 1
                    instruction = instrs[index]
                    info = miss_info.pop(index, None)
                    if info is not None and info[1]:
                        outstanding_misses -= 1
                    if instruction.is_store:
                        for word in _words_of(instruction):
                            if pending_store_words.get(word) == index:
                                del pending_store_words[word]
                    if instruction.is_branch:
                        predicted_branches -= 1
                        if index == wait_branch:
                            wait_branch = -1
                            fetch_stall_until = max(
                                fetch_stall_until, cycle + recovery
                            )
                            fetch_reason = Trauma.IF_PRED
                    for waiter in waiters.pop(index, ()):
                        pending_sources[waiter] -= 1
                        if pending_sources[waiter] == 0 and not issued[waiter]:
                            ready[FU_OF_OPCLASS[instrs[waiter].op]].append(waiter)

            # ---------------- retire --------------------------------
            retire_budget = config.retire_width
            while rob and retire_budget and done[rob[0]]:
                index = rob.popleft()
                regfile = _REGFILE_OF_OP.get(instrs[index].op)
                if regfile is not None:
                    free_regs[regfile] += 1
                if instrs[index].is_store:
                    # The store-queue slot drains at retire.
                    store_queue_used -= 1
                retired += 1
                retire_budget -= 1
            if retired >= n:
                if self.track_occupancy:
                    self._record_occupancy(
                        occupancy, iq_count, inflight, len(rob)
                    )
                break

            # ---------------- issue / execute -----------------------
            lsu_block: Trauma | None = None
            for fu, ready_queue in ready.items():
                capacity = units[fu]
                issued_here = 0
                deferred: list[int] = []
                while ready_queue and issued_here < capacity:
                    index = ready_queue.popleft()
                    instruction = instrs[index]
                    op = instruction.op
                    latency = LATENCY_OF_OPCLASS[op]
                    if instruction.is_load:
                        # An older in-flight store to the same word
                        # blocks the load (no speculative bypass).
                        alias = -1
                        for word in _words_of(instruction):
                            store = pending_store_words.get(word, -1)
                            if store >= 0 and store < index and not done[store]:
                                alias = store
                                break
                        if alias >= 0:
                            lsu_block = Trauma.ST_DATA
                            deferred.append(index)
                            continue
                        is_wide = (
                            wide_extra and instruction.op == OpClass.VLOAD
                        )
                        port_busy = dl1_latency + (wide_extra if is_wide else 0)
                        port = _claim_port(read_port_free, cycle, port_busy)
                        if port is None:
                            deferred.append(index)
                            break
                        if (
                            not memory_is_ideal
                            and outstanding_misses >= config.max_outstanding_misses
                            and not hierarchy.dl1.probe(instruction.address)
                        ):
                            lsu_block = Trauma.MM_DMQF
                            read_port_free[port] = cycle  # release
                            deferred.append(index)
                            continue
                        access = hierarchy.data_access(
                            instruction.address, instruction.size
                        )
                        if access.level != ServiceLevel.L1:
                            trauma = (
                                Trauma.MM_DL1
                                if access.level == ServiceLevel.L2
                                else Trauma.MM_DL2
                            )
                            miss_info[index] = (trauma, True)
                            outstanding_misses += 1
                        elif access.tlb_missed:
                            miss_info[index] = (Trauma.MM_TLB1, False)
                        latency = 1 + access.latency
                        if is_wide:
                            latency += wide_extra
                    elif instruction.is_store:
                        port = _claim_port(write_port_free, cycle, dl1_latency)
                        if port is None:
                            deferred.append(index)
                            break
                        hierarchy.data_access(
                            instruction.address, instruction.size
                        )
                        for word in _words_of(instruction):
                            pending_store_words[word] = index
                    issued[index] = 1
                    iq_count[fu] -= 1
                    issued_here += 1
                    complete_at.setdefault(cycle + latency, []).append(index)
                for index in reversed(deferred):
                    ready_queue.appendleft(index)

            # ---------------- dispatch ------------------------------
            dispatch_budget = config.dispatch_width
            dispatched = 0
            block_reason: Trauma | None = None
            while dispatched < dispatch_budget and ibuffer:
                index = ibuffer[0]
                instruction = instrs[index]
                fu = FU_OF_OPCLASS[instruction.op]
                if iq_count[fu] >= iq_capacity:
                    block_reason = self._blame_queue(
                        fu, iq[fu], instrs, issued, pending_sources,
                        done, lsu_block,
                    )
                    break
                regfile = _REGFILE_OF_OP.get(instruction.op)
                if regfile is not None and free_regs[regfile] == 0:
                    # Physical registers free at retire, so exhaustion
                    # means the window is clogged: blame its head.
                    block_reason = self._blame_rob(
                        rob, instrs, issued, pending_sources, done, miss_info
                    )
                    if block_reason == Trauma.OTHER:
                        block_reason = Trauma.RENAME
                    break
                if len(rob) >= config.retire_queue or inflight >= config.inflight:
                    block_reason = self._blame_rob(
                        rob, instrs, issued, pending_sources, done, miss_info
                    )
                    break
                if instruction.is_store:
                    # Store-queue slots are allocated in program order
                    # at dispatch and drain at retire.
                    if store_queue_used >= config.store_queue_size:
                        block_reason = Trauma.MM_STQF
                        break
                    store_queue_used += 1
                # All resources available: dispatch.
                ibuffer.popleft()
                if regfile is not None:
                    free_regs[regfile] -= 1
                rob.append(index)
                inflight += 1
                iq_count[fu] += 1
                iq[fu].append(index)
                pending = 0
                for source in instruction.sources:
                    if not done[source]:
                        pending += 1
                        waiters.setdefault(source, []).append(index)
                pending_sources[index] = pending
                if pending == 0:
                    ready[fu].append(index)
                dispatched += 1

            if dispatched < dispatch_budget:
                if block_reason is None:
                    # Instruction buffer ran dry: frontend's fault.
                    block_reason = fetch_reason
                self.traumas.charge(block_reason)

            # ---------------- fetch ---------------------------------
            if (
                wait_branch < 0
                and cycle >= fetch_stall_until
                and fetch_index < n
            ):
                fetch_budget = config.fetch_width
                while fetch_budget and fetch_index < n:
                    if len(ibuffer) >= config.ibuffer_size:
                        fetch_reason = Trauma.IF_FULL
                        break
                    instruction = instrs[fetch_index]
                    line = instruction.pc >> 7
                    if line != last_fetch_line:
                        fetch = hierarchy.inst_access(instruction.pc)
                        last_fetch_line = line
                        if fetch.level != ServiceLevel.L1 or fetch.tlb_missed:
                            fetch_stall_until = cycle + fetch.latency
                            if fetch.level == ServiceLevel.L1:
                                fetch_reason = Trauma.IF_TLB1
                            elif fetch.level == ServiceLevel.L2:
                                fetch_reason = Trauma.IF_L1
                            else:
                                fetch_reason = Trauma.IF_L2
                            break
                    if instruction.is_branch:
                        if predicted_branches >= branch_config.max_predicted_branches:
                            fetch_reason = Trauma.IF_BRCH
                            break
                        taken = instruction.taken
                        self.branch_predictions += 1
                        if self.perfect_bp:
                            predicted = taken
                        else:
                            predicted = self.predictor.predict(instruction.pc)
                            self.predictor.update(instruction.pc, taken)
                        correct = predicted == taken
                        if correct:
                            self.branch_correct += 1
                        predicted_branches += 1
                        ibuffer.append(fetch_index)
                        fetch_index += 1
                        fetch_budget -= 1
                        if not correct:
                            wait_branch = fetch_index - 1
                            fetch_reason = Trauma.IF_PRED
                            break
                        if taken:
                            # Fetch group breaks at taken branches; the
                            # NFA provides (or misses) the target.
                            target = self.btb.lookup(instruction.pc)
                            if target is None:
                                self.btb.install(
                                    instruction.pc, instruction.target
                                )
                                fetch_stall_until = (
                                    cycle + branch_config.btb_miss_penalty
                                )
                                fetch_reason = Trauma.IF_NFA
                            break
                        continue
                    ibuffer.append(fetch_index)
                    fetch_index += 1
                    fetch_budget -= 1

            # ---------------- statistics ----------------------------
            if self.track_occupancy:
                self._record_occupancy(occupancy, iq_count, inflight, len(rob))

        return SimulationResult(
            trace_name=self.trace.name,
            config_name=config.name,
            memory_name=config.memory.name,
            instructions=n,
            cycles=cycle,
            traumas=self.traumas.as_histogram(),
            branch=BranchResult(
                predictions=self.branch_predictions,
                correct=self.branch_correct,
                btb_lookups=self.btb.lookups,
                btb_misses=self.btb.misses,
            ),
            il1=CacheResult(
                hierarchy.il1.stats.accesses, hierarchy.il1.stats.misses
            ),
            dl1=CacheResult(
                hierarchy.dl1.stats.accesses, hierarchy.dl1.stats.misses
            ),
            l2=CacheResult(
                hierarchy.l2.stats.accesses, hierarchy.l2.stats.misses
            ),
            itlb=CacheResult(hierarchy.itlb.lookups, hierarchy.itlb.misses),
            dtlb=CacheResult(hierarchy.dtlb.lookups, hierarchy.dtlb.misses),
            queue_occupancy=occupancy if self.track_occupancy else {},
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _record_occupancy(
        occupancy: dict[str, dict[int, int]],
        iq_count: dict[FunctionalUnit, int],
        inflight: int,
        rob_size: int,
    ) -> None:
        """Add one cycle's structure occupancies to the histograms."""
        for name, fu in _TRACKED_QUEUES:
            histogram = occupancy[name]
            value = iq_count[fu]
            histogram[value] = histogram.get(value, 0) + 1
        histogram = occupancy["INFLIGHT"]
        histogram[inflight] = histogram.get(inflight, 0) + 1
        histogram = occupancy["RETIREQ"]
        histogram[rob_size] = histogram.get(rob_size, 0) + 1

    def _blame_queue(
        self,
        fu: FunctionalUnit,
        queue: deque[int],
        instrs,
        issued: bytearray,
        pending_sources,
        done: bytearray,
        lsu_block: Trauma | None,
    ) -> Trauma:
        """Why is this issue queue full?  Blame its oldest pending entry."""
        while queue and issued[queue[0]]:
            queue.popleft()
        if not queue:
            return diq_trauma(fu)
        # Look at the oldest few pending entries: a dependence stall
        # anywhere at the head means the queue is full because results
        # are late (rg_*), not because the units are undersized.
        examined = 0
        for index in queue:
            if issued[index]:
                continue
            if pending_sources[index] > 0:
                return self._blame_sources(index, instrs, done)
            examined += 1
            if examined >= 4:
                break
        if fu == FunctionalUnit.LDST and lsu_block is not None:
            return lsu_block
        return ful_trauma(fu)

    def _blame_rob(
        self,
        rob: deque[int],
        instrs,
        issued: bytearray,
        pending_sources,
        done: bytearray,
        miss_info: dict[int, tuple[Trauma, bool]],
    ) -> Trauma:
        """Why is the reorder/in-flight window full?  Blame its head."""
        if not rob:
            return Trauma.MM_ROQF
        head = rob[0]
        if done[head]:
            return Trauma.OTHER
        info = miss_info.get(head)
        if info is not None:
            return info[0]
        if issued[head]:
            return rg_trauma(FU_OF_OPCLASS[instrs[head].op])
        if pending_sources[head] > 0:
            return self._blame_sources(head, instrs, done)
        return ful_trauma(FU_OF_OPCLASS[instrs[head].op])

    def _blame_sources(self, index: int, instrs, done: bytearray) -> Trauma:
        """Blame the first unready producer of ``index``."""
        for source in instrs[index].sources:
            if not done[source]:
                return rg_trauma(FU_OF_OPCLASS[instrs[source].op])
        return Trauma.OTHER
