"""Trace-driven out-of-order superscalar core (Turandot-style).

One :class:`OutOfOrderCore` simulates one trace on one configuration.
The pipeline models the structures Tables IV-VI parameterize:

* frontend: I-cache, direction predictor + NFA/BTB, instruction buffer,
  fetch-group breaks on taken branches, a cap on in-flight predicted
  branches, and fetch stall on unresolved mispredictions;
* dispatch: physical-register (GPR/VPR/FPR) allocation, per-unit issue
  queues, in-flight and reorder-queue capacity;
* issue/execute: per-class unit pools (fully pipelined), wakeup lists
  driven by producer completion, D-cache read/write ports, MSHR-limited
  outstanding misses, two-level data cache with memory behind it;
* retire: in-order, bounded width.

Wrong-path execution is not replayed (the trace has no wrong path);
mispredictions stall fetch until the branch resolves plus the recovery
time, which is the trace-driven Turandot approach.

Stall accounting: each cycle dispatch moves fewer instructions than its
width, one trauma is charged for the blocking reason, with blame
forwarded to the head of whichever structure is stuck (see
:mod:`repro.uarch.traumas`).

The hot loop runs against the trace's decode plane
(:mod:`repro.uarch.pipeline.decode`): per-instruction facts live in
plain Python lists indexed by trace position, completion events sit in
a timing wheel (a calendar queue sized to the worst-case latency
instead of a dict keyed by cycle), and wakeup lists are preallocated
per producer.  All of this is pure mechanism — cycle-for-cycle results
are identical to the original object-per-instruction implementation,
which the golden-snapshot tests pin down.
"""

from __future__ import annotations

from collections import deque

from repro.isa.opcodes import FunctionalUnit, OpClass
from repro.isa.trace import Trace
from repro.uarch.branch.btb import BranchTargetBuffer
from repro.uarch.branch.predictors import CombinedPredictor, create_predictor
from repro.uarch.caches import MemoryHierarchy
from repro.uarch.config import ProcessorConfig
from repro.uarch.pipeline.decode import REGFILE_OF_OPCLASS, decode_trace
from repro.uarch.results import BranchResult, CacheResult, SimulationResult
from repro.uarch.traumas import (
    Trauma,
    TraumaAccount,
    diq_trauma,
    ful_trauma,
    rg_trauma,
)

#: Register file classes (kept for compatibility; see decode module).
_GPR, _VPR, _FPR = 0, 1, 2

#: OpClass -> register file (re-exported; the core reads the decode plane).
_REGFILE_OF_OP: dict[OpClass, int] = {
    op: regfile for op, regfile in REGFILE_OF_OPCLASS.items()
}

#: Unit-indexed trauma lookup tuples (FunctionalUnit values are 0..7).
_RG_OF = tuple(rg_trauma(fu) for fu in FunctionalUnit)
_FUL_OF = tuple(ful_trauma(fu) for fu in FunctionalUnit)
_DIQ_OF = tuple(diq_trauma(fu) for fu in FunctionalUnit)

_N_UNITS = len(FunctionalUnit)
_LDST = int(FunctionalUnit.LDST)

#: Queues tracked for Fig. 10 occupancy histograms.
_TRACKED_QUEUES: tuple[tuple[str, int], ...] = (
    ("FIX-Q", int(FunctionalUnit.FX)),
    ("MEM-Q", _LDST),
    ("BR-Q", int(FunctionalUnit.BR)),
    ("VI-Q", int(FunctionalUnit.VI)),
    ("VPER-Q", int(FunctionalUnit.VPER)),
)


class OutOfOrderCore:
    """One simulation instance (single use: build, ``run()``, read result)."""

    def __init__(
        self,
        trace: Trace,
        config: ProcessorConfig,
        track_occupancy: bool = False,
        warmup: Trace | None = None,
    ) -> None:
        self.trace = trace
        self.config = config
        self.track_occupancy = track_occupancy
        self.warmup = warmup
        self.hierarchy = MemoryHierarchy(config.memory)
        self.traumas = TraumaAccount()
        branch = config.branch
        self.perfect_bp = branch.kind == "perfect"
        self.predictor = (
            None if self.perfect_bp else create_predictor(
                branch.kind, branch.table_entries
            )
        )
        self.btb = BranchTargetBuffer(
            branch.btb_entries, branch.btb_associativity, branch.btb_miss_penalty
        )
        self.branch_predictions = 0
        self.branch_correct = 0
        self._plane = None

    # ------------------------------------------------------------------
    def _functional_warmup(self) -> None:
        """Replay a warmup trace through the long-lived structures.

        Caches, TLBs, the direction predictor, and the BTB see the
        warmup stream (SMARTS-style functional warming); statistics are
        reset afterwards so results reflect only the measured trace.
        """
        warm = decode_trace(self.warmup)
        hierarchy = self.hierarchy
        access_inst = hierarchy.access_inst
        access_data = hierarchy.access_data
        predictor = self.predictor
        btb_install = self.btb.install
        perfect_bp = self.perfect_bp
        lines = warm.line
        pcs = warm.pc
        addresses = warm.address
        sizes = warm.size
        takens = warm.taken
        targets = warm.target
        is_memory = warm.is_memory
        is_branch = warm.is_branch
        last_line = -1
        for index in range(warm.n):
            line = lines[index]
            if line != last_line:
                access_inst(pcs[index])
                last_line = line
            if is_memory[index]:
                access_data(addresses[index], sizes[index])
            elif is_branch[index]:
                if not perfect_bp:
                    predictor.update(pcs[index], takens[index])
                if takens[index]:
                    btb_install(pcs[index], targets[index])
        # Reset statistics; state stays warm.
        hierarchy.reset_stats()
        self.btb.lookups = 0
        self.btb.misses = 0

    def run(self, max_cycles: int | None = None) -> SimulationResult:
        """Simulate to completion; returns the aggregated result."""
        if self.warmup is not None:
            self._functional_warmup()
        plane = decode_trace(self.trace)
        self._plane = plane
        n = plane.n
        config = self.config
        branch_config = config.branch
        memory = config.memory
        iq_capacity = config.issue_queue_size
        hierarchy = self.hierarchy
        memory_is_ideal = memory.dl1.is_ideal and memory.l2.is_ideal

        # Decode-plane columns (plain lists: fastest interpreter indexing).
        fu_of = plane.fu
        base_latency = plane.latency
        regfile_of = plane.regfile
        is_load = plane.is_load
        is_store = plane.is_store
        is_branch = plane.is_branch
        is_vload = plane.is_vload
        lines = plane.line
        pcs = plane.pc
        addresses = plane.address
        sizes = plane.size
        takens = plane.taken
        targets = plane.target
        words_of = plane.words
        sources_of = plane.sources

        # Per-instruction state.
        done = bytearray(n)
        issued = bytearray(n)
        pending_sources = [0] * n
        #: producer index -> list of dispatched consumers awaiting it.
        waiters: list[list[int] | None] = [None] * n
        #: in-flight memory stall: index -> (trauma, uses an MSHR).
        miss_info: dict[int, tuple[Trauma, bool]] = {}
        miss_info_pop = miss_info.pop
        miss_info_get = miss_info.get
        #: 8-byte word -> youngest in-flight store writing it.
        pending_store_words: dict[int, int] = {}
        store_word_get = pending_store_words.get
        store_queue_used = 0

        # Structures.  Fetch, dispatch, and retire all advance in trace
        # order, so the instruction buffer and the reorder queue are
        # always contiguous index ranges — two integer cursors each
        # replace the deques the original implementation carried.
        ibuf_head = 0      # oldest ibuffer entry; tail is fetch_index
        rob_head = 0       # oldest in-flight instruction
        rob_next = 0       # one past the youngest dispatched
        iq: list[deque[int]] = [deque() for _ in range(_N_UNITS)]
        iq_count: list[int] = [0] * _N_UNITS
        iq_append = [queue.append for queue in iq]
        ready: list[deque[int]] = [deque() for _ in range(_N_UNITS)]
        ready_append = [queue.append for queue in ready]
        ready_total = 0     # entries across all eight ready queues
        capacity_of: list[int] = [
            config.units.get(fu, 0) for fu in FunctionalUnit
        ]
        free_regs = [config.gpr, config.vpr, config.fpr]
        outstanding_misses = 0
        max_misses = config.max_outstanding_misses
        inflight = 0
        predicted_branches = 0

        # D-cache ports: each access occupies a port for the L1 access
        # time (the array is not pipelined), so raising the hit latency
        # also cuts load/store bandwidth — the effect behind Fig. 7's
        # sensitivity of load-heavy SIMD code.
        dl1_latency = max(1, memory.dl1.latency)
        read_port_free = [0] * config.dcache_read_ports
        write_port_free = [0] * config.dcache_write_ports
        read_ports = len(read_port_free)
        write_ports = len(write_port_free)

        # Completion events live in a timing wheel: slot = cycle mod
        # wheel size.  Sized past the worst-case scheduled latency
        # (memory round trip + TLB walk + wide-load extra + pipeline
        # latencies), no event can ever wrap onto an occupied slot.
        recovery = branch_config.mispredict_recovery
        wide_extra = config.wide_load_extra_latency
        horizon = (
            8
            + memory.dl1.latency
            + memory.l2.latency
            + memory.memory_latency
            + memory.dtlb.miss_penalty
            + wide_extra
        )
        wheel_mask = (1 << horizon.bit_length()) - 1
        wheel: list[list[int]] = [[] for _ in range(wheel_mask + 1)]

        # Frontend state.
        fetch_index = 0
        fetch_stall_until = 0
        fetch_reason = Trauma.DECODE
        wait_branch = -1           # unresolved mispredicted branch index
        last_fetch_line = -1
        max_predicted = branch_config.max_predicted_branches
        btb_miss_penalty = branch_config.btb_miss_penalty
        ibuffer_cap = config.ibuffer_size

        # Hot callables and widths bound once.
        access_data = hierarchy.access_data
        access_inst = hierarchy.access_inst
        dl1_probe = hierarchy.dl1.probe
        btb_lookup = self.btb.lookup
        btb_install = self.btb.install
        perfect_bp = self.perfect_bp
        predictor = None if perfect_bp else self.predictor
        predict_and_update = (
            None if predictor is None else predictor.predict_and_update
        )
        # The combined (GP) predictor is the default configuration, so
        # its fused predict-and-train step is inlined into the fetch
        # loop below; state transitions mirror
        # CombinedPredictor.predict_and_update exactly.  Only the
        # gshare history register is kept in a local (written back in
        # the ``finally``); the counter tables are mutated in place.
        inline_gp = type(predictor) is CombinedPredictor
        if inline_gp:
            gp_gshare = predictor.gshare
            gp_bimodal = predictor.bimodal
            g_counters = gp_gshare._counters
            g_mask = gp_gshare._mask
            g_history = gp_gshare._history
            g_history_mask = gp_gshare._history_mask
            b_counters = gp_bimodal._counters
            b_mask = gp_bimodal._mask
            gp_chooser = predictor._chooser
            gp_mask = predictor._mask
        trauma_cycles = self.traumas.cycles
        trauma_cycles_get = trauma_cycles.get
        track_occupancy = self.track_occupancy
        fetch_width = config.fetch_width
        dispatch_width = config.dispatch_width
        retire_width = config.retire_width
        retire_queue = config.retire_queue
        inflight_cap = config.inflight
        store_queue_size = config.store_queue_size
        branch_predictions = self.branch_predictions
        branch_correct = self.branch_correct

        # Statistics.
        occupancy: dict[str, dict[int, int]] = {
            name: {} for name, _ in _TRACKED_QUEUES
        }
        occupancy["INFLIGHT"] = {}
        occupancy["RETIREQ"] = {}

        retired = 0
        cycle = 0
        cycle_limit = float("inf") if max_cycles is None else max_cycles

        try:
            while retired < n:
                cycle += 1
                if cycle > cycle_limit:
                    raise RuntimeError(
                        f"simulation exceeded {max_cycles} cycles "
                        f"({retired}/{n} retired)"
                    )

                # ---------------- completion ----------------------------
                slot = cycle & wheel_mask
                finishing = wheel[slot]
                if finishing:
                    # Swap-don't-clear keeps `finishing` valid while the
                    # slot is reopened; one small list per event-bearing
                    # cycle only.
                    wheel[slot] = []  # repolint: disable=REP008
                    for index in finishing:
                        done[index] = 1
                        inflight -= 1
                        if is_load[index]:
                            info = miss_info_pop(index, None)
                            if info is not None and info[1]:
                                outstanding_misses -= 1
                        elif is_store[index]:
                            for word in words_of[index]:
                                if store_word_get(word) == index:
                                    del pending_store_words[word]
                        if is_branch[index]:
                            predicted_branches -= 1
                            if index == wait_branch:
                                wait_branch = -1
                                resume = cycle + recovery
                                if resume > fetch_stall_until:
                                    fetch_stall_until = resume
                                fetch_reason = Trauma.IF_PRED
                        wakeup = waiters[index]
                        if wakeup is not None:
                            waiters[index] = None
                            for waiter in wakeup:
                                pending = pending_sources[waiter] - 1
                                pending_sources[waiter] = pending
                                if pending == 0 and not issued[waiter]:
                                    ready_append[fu_of[waiter]](waiter)
                                    ready_total += 1

                # ---------------- retire --------------------------------
                retire_budget = retire_width
                while rob_head < rob_next and retire_budget and done[rob_head]:
                    regfile = regfile_of[rob_head]
                    if regfile >= 0:
                        free_regs[regfile] += 1
                    if is_store[rob_head]:
                        # The store-queue slot drains at retire.
                        store_queue_used -= 1
                    rob_head += 1
                    retired += 1
                    retire_budget -= 1
                if retired >= n:
                    if track_occupancy:
                        self._record_occupancy(
                            occupancy, iq_count, inflight,
                            rob_next - rob_head,
                        )
                    break

                # ---------------- issue / execute -----------------------
                lsu_block: Trauma | None = None
                for fu in range(_N_UNITS) if ready_total else ():
                    ready_queue = ready[fu]
                    if not ready_queue:
                        continue
                    capacity = capacity_of[fu]
                    issued_here = 0
                    # Small (bounded by issue width) and only on cycles
                    # where this FU has ready work.
                    deferred: list[int] = []  # repolint: disable=REP008
                    while ready_queue and issued_here < capacity:
                        index = ready_queue.popleft()
                        ready_total -= 1
                        latency = base_latency[index]
                        if is_load[index]:
                            # An older in-flight store to the same word
                            # blocks the load (no speculative bypass).
                            alias = -1
                            for word in words_of[index]:
                                store = store_word_get(word, -1)
                                if (
                                    store >= 0
                                    and store < index
                                    and not done[store]
                                ):
                                    alias = store
                                    break
                            if alias >= 0:
                                lsu_block = Trauma.ST_DATA
                                deferred.append(index)
                                continue
                            is_wide = wide_extra and is_vload[index]
                            port_busy = dl1_latency + (
                                wide_extra if is_wide else 0
                            )
                            port = -1
                            for candidate in range(read_ports):
                                if read_port_free[candidate] <= cycle:
                                    read_port_free[candidate] = (
                                        cycle + port_busy
                                    )
                                    port = candidate
                                    break
                            if port < 0:
                                deferred.append(index)
                                break
                            if (
                                not memory_is_ideal
                                and outstanding_misses >= max_misses
                                and not dl1_probe(addresses[index])
                            ):
                                lsu_block = Trauma.MM_DMQF
                                read_port_free[port] = cycle  # release
                                deferred.append(index)
                                continue
                            access_latency, level, tlb_missed = access_data(
                                addresses[index], sizes[index]
                            )
                            if level != 1:
                                trauma = (
                                    Trauma.MM_DL1
                                    if level == 2
                                    else Trauma.MM_DL2
                                )
                                miss_info[index] = (trauma, True)
                                outstanding_misses += 1
                            elif tlb_missed:
                                miss_info[index] = (Trauma.MM_TLB1, False)
                            latency = 1 + access_latency
                            if is_wide:
                                latency += wide_extra
                        elif is_store[index]:
                            port = -1
                            for candidate in range(write_ports):
                                if write_port_free[candidate] <= cycle:
                                    write_port_free[candidate] = (
                                        cycle + dl1_latency
                                    )
                                    port = candidate
                                    break
                            if port < 0:
                                deferred.append(index)
                                break
                            access_data(addresses[index], sizes[index])
                            for word in words_of[index]:
                                pending_store_words[word] = index
                        issued[index] = 1
                        iq_count[fu] -= 1
                        issued_here += 1
                        wheel[(cycle + latency) & wheel_mask].append(index)
                    for index in reversed(deferred):
                        ready_queue.appendleft(index)
                    ready_total += len(deferred)

                # ---------------- dispatch ------------------------------
                dispatched = 0
                block_reason: Trauma | None = None
                while dispatched < dispatch_width and ibuf_head < fetch_index:
                    index = ibuf_head
                    fu = fu_of[index]
                    if iq_count[fu] >= iq_capacity:
                        block_reason = self._blame_queue(
                            fu, iq[fu], issued, pending_sources, done,
                            lsu_block,
                        )
                        break
                    regfile = regfile_of[index]
                    if regfile >= 0 and free_regs[regfile] == 0:
                        # Physical registers free at retire, so exhaustion
                        # means the window is clogged: blame its head.
                        block_reason = self._blame_rob(
                            rob_head, rob_next, issued, pending_sources,
                            done, miss_info,
                        )
                        if block_reason == Trauma.OTHER:
                            block_reason = Trauma.RENAME
                        break
                    if (
                        rob_next - rob_head >= retire_queue
                        or inflight >= inflight_cap
                    ):
                        block_reason = self._blame_rob(
                            rob_head, rob_next, issued, pending_sources,
                            done, miss_info,
                        )
                        break
                    if is_store[index]:
                        # Store-queue slots are allocated in program order
                        # at dispatch and drain at retire.
                        if store_queue_used >= store_queue_size:
                            block_reason = Trauma.MM_STQF
                            break
                        store_queue_used += 1
                    # All resources available: dispatch.
                    ibuf_head += 1
                    if regfile >= 0:
                        free_regs[regfile] -= 1
                    rob_next += 1
                    inflight += 1
                    iq_count[fu] += 1
                    iq_append[fu](index)
                    pending = 0
                    for source in sources_of[index]:
                        if not done[source]:
                            pending += 1
                            wakeup = waiters[source]
                            if wakeup is None:
                                # First waiter on a producer: the list is
                                # reused for every later waiter.
                                waiters[source] = [index]  # repolint: disable=REP008
                            else:
                                wakeup.append(index)
                    pending_sources[index] = pending
                    if pending == 0:
                        ready_append[fu](index)
                        ready_total += 1
                    dispatched += 1

                if dispatched < dispatch_width:
                    if block_reason is None:
                        # Instruction buffer ran dry: frontend's fault.
                        block_reason = fetch_reason
                    trauma_cycles[block_reason] = (
                        trauma_cycles_get(block_reason, 0) + 1
                    )

                # ---------------- fetch ---------------------------------
                if (
                    wait_branch < 0
                    and cycle >= fetch_stall_until
                    and fetch_index < n
                ):
                    fetch_budget = fetch_width
                    while fetch_budget and fetch_index < n:
                        if fetch_index - ibuf_head >= ibuffer_cap:
                            fetch_reason = Trauma.IF_FULL
                            break
                        line = lines[fetch_index]
                        if line != last_fetch_line:
                            fetch_latency, level, tlb_missed = access_inst(
                                pcs[fetch_index]
                            )
                            last_fetch_line = line
                            if level != 1 or tlb_missed:
                                fetch_stall_until = cycle + fetch_latency
                                if level == 1:
                                    fetch_reason = Trauma.IF_TLB1
                                elif level == 2:
                                    fetch_reason = Trauma.IF_L1
                                else:
                                    fetch_reason = Trauma.IF_L2
                                break
                        if is_branch[fetch_index]:
                            if predicted_branches >= max_predicted:
                                fetch_reason = Trauma.IF_BRCH
                                break
                            taken = takens[fetch_index]
                            branch_predictions += 1
                            if perfect_bp:
                                correct = True
                            elif inline_gp:
                                pc2 = pcs[fetch_index] >> 2
                                g_index = (pc2 ^ g_history) & g_mask
                                g_pred = g_counters[g_index] >= 2
                                b_index = pc2 & b_mask
                                b_pred = b_counters[b_index] >= 2
                                c_index = pc2 & gp_mask
                                predicted = (
                                    g_pred
                                    if gp_chooser[c_index] >= 2
                                    else b_pred
                                )
                                g_right = g_pred == taken
                                if g_right != (b_pred == taken):
                                    counter = gp_chooser[c_index]
                                    if g_right:
                                        if counter < 3:
                                            gp_chooser[c_index] = counter + 1
                                    elif counter > 0:
                                        gp_chooser[c_index] = counter - 1
                                counter = g_counters[g_index]
                                if taken:
                                    if counter < 3:
                                        g_counters[g_index] = counter + 1
                                elif counter > 0:
                                    g_counters[g_index] = counter - 1
                                g_history = (
                                    (g_history << 1) | taken
                                ) & g_history_mask
                                counter = b_counters[b_index]
                                if taken:
                                    if counter < 3:
                                        b_counters[b_index] = counter + 1
                                elif counter > 0:
                                    b_counters[b_index] = counter - 1
                                correct = predicted == taken
                            else:
                                correct = (
                                    predict_and_update(
                                        pcs[fetch_index], taken
                                    )
                                    == taken
                                )
                            if correct:
                                branch_correct += 1
                            predicted_branches += 1
                            fetch_index += 1
                            fetch_budget -= 1
                            if not correct:
                                wait_branch = fetch_index - 1
                                fetch_reason = Trauma.IF_PRED
                                break
                            if taken:
                                # Fetch group breaks at taken branches; the
                                # NFA provides (or misses) the target.
                                branch = fetch_index - 1
                                target = btb_lookup(pcs[branch])
                                if target is None:
                                    btb_install(pcs[branch], targets[branch])
                                    fetch_stall_until = (
                                        cycle + btb_miss_penalty
                                    )
                                    fetch_reason = Trauma.IF_NFA
                                break
                            continue
                        fetch_index += 1
                        fetch_budget -= 1

                # ---------------- statistics ----------------------------
                if track_occupancy:
                    self._record_occupancy(
                        occupancy, iq_count, inflight, rob_next - rob_head
                    )

                # ---------------- stall fast-forward --------------------
                # When the machine is provably idle — nothing ready to
                # issue, retire blocked on an unfinished head, dispatch
                # blocked (or starved) by conditions only a completion
                # can clear, and fetch unable to run — every cycle until
                # the next timing-wheel event (or fetch resume) repeats
                # the exact same bookkeeping: charge one trauma.  Batch
                # those cycles instead of walking the pipeline for each.
                if (
                    dispatched < dispatch_width
                    and not ready_total
                    and (rob_head == rob_next or not done[rob_head])
                ):
                    if ibuf_head < fetch_index:
                        # Would dispatch still be blocked next cycle?
                        # Mirror the dispatch checks exactly (with no
                        # issue activity, lsu_block is None).
                        index = ibuf_head
                        fu = fu_of[index]
                        regfile = regfile_of[index]
                        if iq_count[fu] >= iq_capacity:
                            skip_reason = self._blame_queue(
                                fu, iq[fu], issued, pending_sources,
                                done, None,
                            )
                        elif regfile >= 0 and free_regs[regfile] == 0:
                            skip_reason = self._blame_rob(
                                rob_head, rob_next, issued,
                                pending_sources, done, miss_info,
                            )
                            if skip_reason == Trauma.OTHER:
                                skip_reason = Trauma.RENAME
                        elif (
                            rob_next - rob_head >= retire_queue
                            or inflight >= inflight_cap
                        ):
                            skip_reason = self._blame_rob(
                                rob_head, rob_next, issued,
                                pending_sources, done, miss_info,
                            )
                        elif (
                            is_store[index]
                            and store_queue_used >= store_queue_size
                        ):
                            skip_reason = Trauma.MM_STQF
                        else:
                            skip_reason = None
                    else:
                        skip_reason = fetch_reason
                    if skip_reason is not None:
                        fetch_live = (
                            wait_branch < 0
                            and fetch_index < n
                            and fetch_index - ibuf_head < ibuffer_cap
                        )
                        if fetch_live:
                            bound = fetch_stall_until
                        else:
                            bound = cycle + wheel_mask + 1
                        if cycle_limit < bound:
                            bound = cycle_limit + 1
                        scan = bound - cycle - 1
                        if scan > wheel_mask:
                            scan = wheel_mask
                        skip_to = bound
                        for ahead in range(1, scan + 1):
                            if wheel[(cycle + ahead) & wheel_mask]:
                                skip_to = cycle + ahead
                                break
                        skipped = skip_to - cycle - 1
                        if skipped > 0:
                            trauma_cycles[skip_reason] = (
                                trauma_cycles_get(skip_reason, 0) + skipped
                            )
                            if track_occupancy:
                                self._record_occupancy(
                                    occupancy, iq_count, inflight,
                                    rob_next - rob_head, skipped,
                                )
                            if (
                                fetch_index - ibuf_head >= ibuffer_cap
                                and wait_branch < 0
                                and fetch_index < n
                                and fetch_stall_until <= skip_to - 1
                            ):
                                # Real execution would have re-marked
                                # the full buffer on each skipped cycle.
                                fetch_reason = Trauma.IF_FULL
                            cycle += skipped
        finally:
            self.branch_predictions = branch_predictions
            self.branch_correct = branch_correct
            if inline_gp:
                gp_gshare._history = g_history

        return SimulationResult(
            trace_name=self.trace.name,
            config_name=config.name,
            memory_name=config.memory.name,
            instructions=n,
            cycles=cycle,
            traumas=self.traumas.as_histogram(),
            branch=BranchResult(
                predictions=self.branch_predictions,
                correct=self.branch_correct,
                btb_lookups=self.btb.lookups,
                btb_misses=self.btb.misses,
            ),
            il1=CacheResult(hierarchy.il1.accesses, hierarchy.il1.misses),
            dl1=CacheResult(hierarchy.dl1.accesses, hierarchy.dl1.misses),
            l2=CacheResult(hierarchy.l2.accesses, hierarchy.l2.misses),
            itlb=CacheResult(hierarchy.itlb.lookups, hierarchy.itlb.misses),
            dtlb=CacheResult(hierarchy.dtlb.lookups, hierarchy.dtlb.misses),
            queue_occupancy=occupancy if self.track_occupancy else {},
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _record_occupancy(
        occupancy: dict[str, dict[int, int]],
        iq_count: list[int],
        inflight: int,
        rob_size: int,
        cycles: int = 1,
    ) -> None:
        """Add ``cycles`` cycles' structure occupancies to the histograms."""
        for name, fu in _TRACKED_QUEUES:
            histogram = occupancy[name]
            value = iq_count[fu]
            histogram[value] = histogram.get(value, 0) + cycles
        histogram = occupancy["INFLIGHT"]
        histogram[inflight] = histogram.get(inflight, 0) + cycles
        histogram = occupancy["RETIREQ"]
        histogram[rob_size] = histogram.get(rob_size, 0) + cycles

    def _blame_queue(
        self,
        fu: int,
        queue: deque[int],
        issued: bytearray,
        pending_sources: list[int],
        done: bytearray,
        lsu_block: Trauma | None,
    ) -> Trauma:
        """Why is this issue queue full?  Blame its oldest pending entry."""
        while queue and issued[queue[0]]:
            queue.popleft()
        if not queue:
            return _DIQ_OF[fu]
        # Look at the oldest few pending entries: a dependence stall
        # anywhere at the head means the queue is full because results
        # are late (rg_*), not because the units are undersized.
        examined = 0
        for index in queue:
            if issued[index]:
                continue
            if pending_sources[index] > 0:
                return self._blame_sources(index, done)
            examined += 1
            if examined >= 4:
                break
        if fu == _LDST and lsu_block is not None:
            return lsu_block
        return _FUL_OF[fu]

    def _blame_rob(
        self,
        rob_head: int,
        rob_next: int,
        issued: bytearray,
        pending_sources: list[int],
        done: bytearray,
        miss_info: dict[int, tuple[Trauma, bool]],
    ) -> Trauma:
        """Why is the reorder/in-flight window full?  Blame its head."""
        if rob_head == rob_next:
            return Trauma.MM_ROQF
        head = rob_head
        if done[head]:
            return Trauma.OTHER
        info = miss_info.get(head)
        if info is not None:
            return info[0]
        plane = self._plane
        if issued[head]:
            return _RG_OF[plane.fu[head]]
        if pending_sources[head] > 0:
            return self._blame_sources(head, done)
        return _FUL_OF[plane.fu[head]]

    def _blame_sources(self, index: int, done: bytearray) -> Trauma:
        """Blame the first unready producer of ``index``."""
        plane = self._plane
        for source in plane.sources[index]:
            if not done[source]:
                return _RG_OF[plane.fu[source]]
        return Trauma.OTHER
