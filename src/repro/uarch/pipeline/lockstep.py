"""Lockstep multi-config simulation: one trace under N configurations.

The paper's Tables IV-VI and Figures 5/9 all re-simulate the *same*
trace under many processor configurations.  The scalar
:class:`~repro.uarch.pipeline.core.OutOfOrderCore` already shares the
config-independent decode plane across runs, but each run still pays
the full per-instruction frontend walk (I-cache lookup, direction
prediction, BTB), the per-instruction retire walk, and a wakeup-list
allocation per dispatched instruction — all of which are *identical or
precomputable* across the sweep axis.

:class:`LockstepCore` batches that work.  A batch over one trace splits
into two layers:

* **Shared planes** (:class:`SharedPlanes`), built once per trace and
  cached on the decode plane: consumer (wakeup) lists per producer,
  per-regfile retire prefix sums, branch/fetch-line event positions and
  ranks.  Per *branch* configuration, the entire predictor + BTB
  outcome stream is replayed once into a code array
  (:class:`_BranchPlane`) — legal because the branch substream reaches
  the predictor in strict trace order under every configuration, and
  the BTB is touched only by correctly-predicted taken branches, also
  in trace order.  Per *(IL1, ITLB)* configuration the frontend
  stall-event stream is replayed once (:class:`_FrontPlane`); only the
  L2 lookup on an IL1 miss stays live per lane, because L2 contents
  interleave with config-dependent data accesses.

* **A per-lane engine** (:func:`_run_lane`) that advances one
  configuration over the planes: fetch jumps over whole spans between
  precomputed break positions instead of walking instructions,
  retirement frees registers via prefix-sum differences in O(1) per
  cycle, wakeup uses the shared consumer lists with per-lane
  undone-source counters (no per-dispatch allocation), and the ready
  queues carry an occupancy bitmask so issue touches only non-empty
  unit queues.  Dispatch, issue, and the quiescent-cycle fast-forward
  replicate the scalar core's state transitions exactly.

Cycle-exactness is the gate: for every configuration in a batch the
returned :class:`SimulationResult` is *byte-identical* to the scalar
core's (tests/test_lockstep_core.py pins the full golden matrix and a
hypothesis fuzz).  The scalar core stays untouched as the reference
implementation.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.isa.opcodes import FunctionalUnit
from repro.isa.trace import Trace
from repro.uarch.branch.btb import BranchTargetBuffer
from repro.uarch.branch.predictors import create_predictor
from repro.uarch.caches import Cache, MemoryHierarchy, Tlb
from repro.uarch.config import (
    BranchPredictorConfig,
    MemoryConfig,
    ProcessorConfig,
)
from repro.uarch.pipeline.decode import DecodedTrace, decode_trace
from repro.uarch.results import BranchResult, CacheResult, SimulationResult
from repro.uarch.traumas import (
    FIG2_ORDER,
    Trauma,
    diq_trauma,
    ful_trauma,
    rg_trauma,
)

#: Unit-indexed trauma lookup tuples (FunctionalUnit values are 0..7).
_RG_OF = tuple(rg_trauma(fu) for fu in FunctionalUnit)
_FUL_OF = tuple(ful_trauma(fu) for fu in FunctionalUnit)
_DIQ_OF = tuple(diq_trauma(fu) for fu in FunctionalUnit)

_N_UNITS = len(FunctionalUnit)
_LDST = int(FunctionalUnit.LDST)

#: Preferred batch width: the sweep planner groups points over the same
#: trace into batches of this many configurations, keeping the runtime
#: pool's tasks coarse without serializing a whole sweep axis into one.
LOCKSTEP_WIDTH = 8

#: Branch outcome codes in :attr:`_BranchPlane.code`.
_BR_NOT_TAKEN = 0       # correctly predicted, not taken: fetch continues
_BR_TAKEN_HIT = 1       # correct + taken, BTB hit: group break only
_BR_TAKEN_MISS = 2      # correct + taken, BTB miss: NFA penalty stall
_BR_MISPREDICT = 3      # mispredicted: fetch waits for resolution


def _prefix(flags: np.ndarray) -> list[int]:
    """Inclusive-scan prefix counts as a plain list (length ``n + 1``)."""
    counts = np.zeros(len(flags) + 1, dtype=np.int64)
    np.cumsum(flags, dtype=np.int64, out=counts[1:])
    return counts.tolist()


class _BranchPlane:
    """Predictor + BTB outcome stream for one branch configuration.

    Under every processor configuration the direction predictor sees
    the same branches in the same (trace) order: fetch consults it once
    per branch, in program order, and a capacity-limited fetch group
    breaks *before* touching predictor state.  Likewise the BTB is
    looked up (and on a miss, filled) only by correctly-predicted taken
    branches, again in trace order.  Both streams are therefore pure
    functions of the branch configuration and can be replayed once per
    batch; lanes index the result by branch ordinal.
    """

    __slots__ = (
        "code", "correct_prefix", "btb_lookup_prefix", "btb_miss_prefix",
    )

    def __init__(
        self,
        plane: DecodedTrace,
        positions: list[int],
        branch: BranchPredictorConfig,
    ) -> None:
        pcs = plane.pc
        takens = plane.taken
        targets = plane.target
        perfect = branch.kind == "perfect"
        predict_and_update = (
            None if perfect
            else create_predictor(
                branch.kind, branch.table_entries
            ).predict_and_update
        )
        btb = BranchTargetBuffer(
            branch.btb_entries, branch.btb_associativity,
            branch.btb_miss_penalty,
        )
        btb_lookup = btb.lookup
        btb_install = btb.install
        code = bytearray(len(positions))
        correct_prefix = [0]
        lookup_prefix = [0]
        miss_prefix = [0]
        correct_count = 0
        lookup_count = 0
        miss_count = 0
        for ordinal, position in enumerate(positions):
            taken = takens[position]
            pc = pcs[position]
            right = perfect or predict_and_update(pc, taken) == taken
            if not right:
                code[ordinal] = _BR_MISPREDICT
            elif taken:
                lookup_count += 1
                if btb_lookup(pc) is None:
                    btb_install(pc, targets[position])
                    miss_count += 1
                    code[ordinal] = _BR_TAKEN_MISS
                else:
                    code[ordinal] = _BR_TAKEN_HIT
            if right:
                correct_count += 1
            correct_prefix.append(correct_count)
            lookup_prefix.append(lookup_count)
            miss_prefix.append(miss_count)
        self.code = code
        self.correct_prefix = correct_prefix
        self.btb_lookup_prefix = lookup_prefix
        self.btb_miss_prefix = miss_prefix


class _FrontPlane:
    """IL1/ITLB outcome stream for one (IL1, ITLB) configuration.

    Fetch accesses the I-cache once per fetch-line transition (an
    *event*), in trace order, under every configuration — so the IL1
    hit/miss and ITLB hit/miss streams replay once per batch.  Only the
    L2 lookup behind an IL1 miss must stay live per lane (L2 contents
    depend on the interleaving with config-dependent data accesses);
    lanes perform it at the precomputed stall positions.
    """

    __slots__ = (
        "next_stall", "il1_missed", "itlb_missed",
        "il1_miss_prefix", "itlb_miss_prefix",
    )

    def __init__(
        self,
        plane: DecodedTrace,
        positions: list[int],
        memory: MemoryConfig,
    ) -> None:
        il1 = Cache(memory.il1)
        itlb = Tlb(memory.itlb)
        il1_access = il1.access
        itlb_access = itlb.access
        shift = memory.il1.line_bytes.bit_length() - 1
        line_bytes = memory.il1.line_bytes
        pcs = plane.pc
        il1_missed = []
        itlb_missed = []
        stalls = []
        for position in positions:
            pc = pcs[position]
            tlb_miss = not itlb_access(pc)
            il1_miss = not il1_access((pc >> shift) * line_bytes)
            il1_missed.append(il1_miss)
            itlb_missed.append(tlb_miss)
            if il1_miss or tlb_miss:
                stalls.append(position)
        self.il1_missed = il1_missed
        self.itlb_missed = itlb_missed
        self.il1_miss_prefix = _prefix(np.array(il1_missed, dtype=bool))
        self.itlb_miss_prefix = _prefix(np.array(itlb_missed, dtype=bool))
        # next_stall[i] = smallest stalling event position >= i (n if
        # none): the fetch loop advances in one jump between stalls.
        n = plane.n
        marks = np.full(n + 1, n, dtype=np.int64)
        if stalls:
            stall_positions = np.array(stalls, dtype=np.int64)
            marks[stall_positions] = stall_positions
        self.next_stall = np.minimum.accumulate(marks[::-1])[::-1].tolist()


class SharedPlanes:
    """Config-independent batch planes, built once per trace.

    Cached on the decode plane (``plane.batch``), so batches over the
    same trace — successive sweep batches, bench repetitions — reuse
    them.  Per-branch-config and per-frontend-config planes are cached
    in dictionaries keyed by the (hashable, frozen) config dataclasses.
    """

    __slots__ = (
        "consumers", "n_sources", "meta", "gpr_prefix", "vpr_prefix",
        "fpr_prefix", "store_prefix", "branch_next", "branch_rank",
        "branch_positions", "event_rank", "event_positions",
        "_branch_planes", "_front_planes",
    )

    def __init__(self, plane: DecodedTrace) -> None:
        n = plane.n
        # Wakeup inversion: consumers[p] lists the instructions reading
        # producer p, in ascending (= dispatch) order.  Shared by every
        # lane; per-lane undone-source counters replace the scalar
        # core's per-dispatch waiter-list allocations.
        consumers: list[list[int] | None] = [None] * n
        for index, row in enumerate(plane.sources):
            for source in row:
                bucket = consumers[source]
                if bucket is None:
                    consumers[source] = [index]
                else:
                    bucket.append(index)
        self.consumers = consumers
        self.n_sources = [len(row) for row in plane.sources]

        # Packed per-instruction metadata: one list lookup feeds the
        # completion/issue/dispatch hot paths instead of four.
        # bit 0: load, bit 1: store, bit 2: branch, bit 3: wide vload,
        # bits 4-6: functional unit, bits 7-8: regfile + 1.
        fu = np.array(plane.fu, dtype=np.int64)
        regfile = np.array(plane.regfile, dtype=np.int64)
        self.meta = (
            np.array(plane.is_load, dtype=np.int64)
            | (np.array(plane.is_store, dtype=np.int64) << 1)
            | (np.array(plane.is_branch, dtype=np.int64) << 2)
            | (np.array(plane.is_vload, dtype=np.int64) << 3)
            | (fu << 4)
            | ((regfile + 1) << 7)
        ).tolist()

        # Retire-side prefix sums: registers freed and store-queue slots
        # drained over any contiguous retired range in O(1).
        self.gpr_prefix = _prefix(regfile == 0)
        self.vpr_prefix = _prefix(regfile == 1)
        self.fpr_prefix = _prefix(regfile == 2)
        self.store_prefix = _prefix(np.array(plane.is_store, dtype=bool))

        # Branch geometry: next branch at-or-after each position, branch
        # ordinal (rank) of each position, and the positions themselves.
        is_branch = np.array(plane.is_branch, dtype=bool)
        marks = np.full(n + 1, n, dtype=np.int64)
        if n:
            branch_positions = np.flatnonzero(is_branch)
            marks[branch_positions] = branch_positions
            self.branch_positions = branch_positions.tolist()
        else:
            self.branch_positions = []
        self.branch_next = np.minimum.accumulate(marks[::-1])[::-1].tolist()
        self.branch_rank = _prefix(is_branch)

        # Fetch-line events: positions where the I-cache line changes
        # from the previous instruction (the frontend accesses the
        # I-cache exactly once per such transition).
        lines = np.array(plane.line, dtype=np.int64)
        boundary = np.zeros(n, dtype=bool)
        if n:
            boundary[0] = True
            np.not_equal(lines[1:], lines[:-1], out=boundary[1:])
        self.event_rank = _prefix(boundary)
        self.event_positions = np.flatnonzero(boundary).tolist()

        self._branch_planes: dict[BranchPredictorConfig, _BranchPlane] = {}
        self._front_planes: dict[tuple, _FrontPlane] = {}

    def branch_plane(
        self, plane: DecodedTrace, branch: BranchPredictorConfig
    ) -> _BranchPlane:
        cached = self._branch_planes.get(branch)
        if cached is None:
            cached = _BranchPlane(plane, self.branch_positions, branch)
            self._branch_planes[branch] = cached
        return cached

    def front_plane(
        self, plane: DecodedTrace, memory: MemoryConfig
    ) -> _FrontPlane:
        key = (memory.il1, memory.itlb)
        cached = self._front_planes.get(key)
        if cached is None:
            cached = _FrontPlane(plane, self.event_positions, memory)
            self._front_planes[key] = cached
        return cached


def shared_planes(plane: DecodedTrace) -> SharedPlanes:
    """The trace's batch planes, built once and cached on the plane."""
    shared = plane.batch
    if shared is None:
        shared = SharedPlanes(plane)
        # Idempotent memo fill: post-fork callers rebuild an identical
        # worker-local plane, never observe another lane's write.
        plane.batch = shared  # flowlint: disable=FL003
    return shared


class LockstepCore:
    """Simulate one trace under N configurations as one batch.

    Results are returned in the order of ``configs`` and are
    byte-identical to ``OutOfOrderCore(trace, config).run()`` for each.
    Occupancy tracking and functional warmup are scalar-only features;
    :func:`repro.uarch.simulator.simulate_batch` routes those requests
    to the scalar core.
    """

    def __init__(
        self,
        trace: Trace,
        configs: Sequence[ProcessorConfig],
        max_cycles: int | None = None,
    ) -> None:
        self.trace = trace
        self.configs = list(configs)
        self.max_cycles = max_cycles

    def run(self) -> list[SimulationResult]:
        """Simulate every configuration; returns results in input order."""
        plane = decode_trace(self.trace)
        shared = shared_planes(plane)
        name = self.trace.name
        results = []
        for config in self.configs:
            results.append(_run_lane(
                name,
                plane,
                shared,
                config,
                shared.branch_plane(plane, config.branch),
                shared.front_plane(plane, config.memory),
                self.max_cycles,
            ))
        return results


# ----------------------------------------------------------------------
# Forked batch execution: lanes are independent once the shared planes
# exist, so on fork platforms a batch can fan out over worker processes
# that inherit the warm planes copy-on-write (no pickling, no rebuild).

#: Parent-side state inherited by forked workers (set around the fork).
_fork_state: tuple | None = None


def _run_fork_chunk(indices: list[int]) -> list[SimulationResult]:
    trace, configs, max_cycles = _fork_state
    return LockstepCore(
        trace, [configs[index] for index in indices], max_cycles=max_cycles
    ).run()


def run_batch_forked(
    trace: Trace,
    configs: Sequence[ProcessorConfig],
    max_cycles: int | None,
    jobs: int,
) -> list[SimulationResult] | None:
    """Run a lockstep batch across forked workers; ``None`` if unavailable.

    Unavailable means: no ``fork`` start method on this platform, a
    daemonic caller (a process pool worker cannot fork children), or a
    batch/worker count too small to split.  Callers fall back to the
    in-process engine.
    """
    import multiprocessing

    configs = list(configs)
    jobs = min(jobs, len(configs))
    if jobs < 2:
        return None
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    if multiprocessing.current_process().daemon:
        return None

    # Warm every shared plane in the parent before forking so workers
    # inherit them (and the decode plane) copy-on-write.
    plane = decode_trace(trace)
    shared = shared_planes(plane)
    for config in configs:
        shared.branch_plane(plane, config.branch)
        shared.front_plane(plane, config.memory)

    # Strided chunks: neighbouring configs (often a width or memory
    # ladder with similar lane cost) spread across workers.
    chunks = [
        list(range(start, len(configs), jobs)) for start in range(jobs)
    ]
    global _fork_state
    _fork_state = (trace, configs, max_cycles)
    try:
        context = multiprocessing.get_context("fork")
        with context.Pool(jobs) as pool:
            parts = pool.map(_run_fork_chunk, chunks)
    finally:
        _fork_state = None
    results: list[SimulationResult | None] = [None] * len(configs)
    for indices, part in zip(chunks, parts):
        for index, result in zip(indices, part):
            results[index] = result
    return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Blame helpers: identical decision trees to the scalar core's, with the
# per-lane undone-source counters standing in for pending_sources (they
# agree on every dispatched instruction, the only ones blame examines).


def _blame_sources(index, done, fu_of, sources_of):
    """Blame the first unready producer of ``index``."""
    for source in sources_of[index]:
        if not done[source]:
            return _RG_OF[fu_of[source]]
    return Trauma.OTHER


def _blame_queue(fu, queue, issued, n_undone, done, lsu_block, fu_of,
                 sources_of):
    """Why is this issue queue full?  Blame its oldest pending entry."""
    while queue and issued[queue[0]]:
        queue.popleft()
    if not queue:
        return _DIQ_OF[fu]
    examined = 0
    for index in queue:
        if issued[index]:
            continue
        if n_undone[index] > 0:
            return _blame_sources(index, done, fu_of, sources_of)
        examined += 1
        if examined >= 4:
            break
    if fu == _LDST and lsu_block is not None:
        return lsu_block
    return _FUL_OF[fu]


def _blame_rob(rob_head, rob_next, issued, n_undone, done, miss_info,
               fu_of, sources_of):
    """Why is the reorder/in-flight window full?  Blame its head."""
    if rob_head == rob_next:
        return Trauma.MM_ROQF
    if done[rob_head]:
        return Trauma.OTHER
    info = miss_info.get(rob_head)
    if info is not None:
        return info[0]
    if issued[rob_head]:
        return _RG_OF[fu_of[rob_head]]
    if n_undone[rob_head] > 0:
        return _blame_sources(rob_head, done, fu_of, sources_of)
    return _FUL_OF[fu_of[rob_head]]


def _run_lane(
    trace_name: str,
    plane: DecodedTrace,
    shared: SharedPlanes,
    config: ProcessorConfig,
    bplane: _BranchPlane,
    fplane: _FrontPlane,
    max_cycles: int | None,
) -> SimulationResult:
    """One configuration's pass over the shared planes.

    Stage order, state transitions, and trauma accounting mirror
    ``OutOfOrderCore.run`` cycle for cycle; only the bookkeeping
    differs (plane lookups instead of recomputation, batched retire,
    counter-based wakeup).
    """
    n = plane.n
    branch_config = config.branch
    memory = config.memory
    iq_capacity = config.issue_queue_size
    hierarchy = MemoryHierarchy(memory)
    memory_is_ideal = memory.dl1.is_ideal and memory.l2.is_ideal

    # Decode-plane columns.
    fu_of = plane.fu
    base_latency = plane.latency
    regfile_of = plane.regfile
    is_store = plane.is_store
    addresses = plane.address
    sizes = plane.size
    words_of = plane.words
    sources_of = plane.sources
    pcs = plane.pc

    # Shared batch planes.  meta packs load/store/branch/vload flags,
    # the functional unit, and the regfile into one int per index.
    meta = shared.meta
    consumers = shared.consumers
    gpr_prefix = shared.gpr_prefix
    vpr_prefix = shared.vpr_prefix
    fpr_prefix = shared.fpr_prefix
    store_prefix = shared.store_prefix
    branch_next = shared.branch_next
    branch_rank = shared.branch_rank
    event_rank = shared.event_rank
    next_stall = fplane.next_stall
    ev_il1_missed = fplane.il1_missed
    ev_itlb_missed = fplane.itlb_missed
    bp_code = bplane.code

    # Per-instruction lane state.
    done = bytearray(n)
    done_find = done.find
    issued = bytearray(n)
    n_undone = shared.n_sources[:]
    miss_info: dict[int, tuple[Trauma, bool]] = {}
    miss_info_pop = miss_info.pop
    pending_store_words: dict[int, int] = {}
    store_word_get = pending_store_words.get
    store_queue_used = 0

    # Structures (contiguous index ranges, as in the scalar core).
    ibuf_head = 0
    rob_head = 0
    rob_next = 0
    iq: list[deque[int]] = [deque() for _ in range(_N_UNITS)]
    iq_count: list[int] = [0] * _N_UNITS
    iq_append = [queue.append for queue in iq]
    ready: list[deque[int]] = [deque() for _ in range(_N_UNITS)]
    ready_append = [queue.append for queue in ready]
    ready_mask = 0      # bit fu set <=> ready[fu] non-empty
    capacity_of: list[int] = [config.units.get(fu, 0) for fu in FunctionalUnit]
    free_regs = [config.gpr, config.vpr, config.fpr]
    outstanding_misses = 0
    max_misses = config.max_outstanding_misses
    inflight = 0
    predicted_branches = 0

    dl1_latency = max(1, memory.dl1.latency)
    read_port_free = [0] * config.dcache_read_ports
    write_port_free = [0] * config.dcache_write_ports
    read_ports = len(read_port_free)
    write_ports = len(write_port_free)

    recovery = branch_config.mispredict_recovery
    wide_extra = config.wide_load_extra_latency
    horizon = (
        8
        + memory.dl1.latency
        + memory.l2.latency
        + memory.memory_latency
        + memory.dtlb.miss_penalty
        + wide_extra
    )
    wheel_mask = (1 << horizon.bit_length()) - 1
    wheel: list[list[int]] = [[] for _ in range(wheel_mask + 1)]
    wheel_count = 0    # in-flight completion events across all slots

    # Frontend state.  stall_done_at marks a fetch-line stall event that
    # has been processed without its instruction being fetched yet (the
    # scalar core's last_fetch_line guard): on resume the event must not
    # replay.
    fetch_index = 0
    fetch_stall_until = 0
    fetch_reason = Trauma.DECODE
    wait_branch = -1
    stall_done_at = -1
    max_predicted = branch_config.max_predicted_branches
    btb_miss_penalty = branch_config.btb_miss_penalty
    ibuffer_cap = config.ibuffer_size

    # Hot callables and widths bound once.
    access_data = hierarchy.access_data
    dl1_probe = hierarchy.dl1.probe
    l2_access = hierarchy.l2.access
    inst_latency = hierarchy._inst_latency
    itlb_penalty = memory.itlb.miss_penalty
    il1_shift = memory.il1.line_bytes.bit_length() - 1
    il1_line_bytes = memory.il1.line_bytes
    trauma_cycles: dict[Trauma, int] = {}
    trauma_cycles_get = trauma_cycles.get
    fetch_width = config.fetch_width
    dispatch_width = config.dispatch_width
    retire_width = config.retire_width
    retire_queue = config.retire_queue
    inflight_cap = config.inflight
    store_queue_size = config.store_queue_size

    # Reused issue scratch list (cleared in place each use).
    deferred: list[int] = []

    # Trauma charges come in long same-reason runs; accumulate the
    # current run in locals and flush to the dict on reason change.
    last_reason = None
    last_count = 0

    retired = 0
    cycle = 0
    cycle_limit = float("inf") if max_cycles is None else max_cycles

    while retired < n:
        cycle += 1
        if cycle > cycle_limit:
            raise RuntimeError(
                f"simulation exceeded {max_cycles} cycles "
                f"({retired}/{n} retired)"
            )

        # ---------------- completion ----------------------------
        finishing = wheel[cycle & wheel_mask]
        if finishing:
            wheel_count -= len(finishing)
            for index in finishing:
                done[index] = 1
                inflight -= 1
                m = meta[index]
                if m & 7:   # load / store / branch (mutually exclusive)
                    if m & 1:
                        info = miss_info_pop(index, None)
                        if info is not None and info[1]:
                            outstanding_misses -= 1
                    elif m & 2:
                        for word in words_of[index]:
                            if store_word_get(word) == index:
                                del pending_store_words[word]
                    else:
                        predicted_branches -= 1
                        if index == wait_branch:
                            wait_branch = -1
                            resume = cycle + recovery
                            if resume > fetch_stall_until:
                                fetch_stall_until = resume
                            fetch_reason = Trauma.IF_PRED
                wakeup = consumers[index]
                if wakeup is not None:
                    for waiter in wakeup:
                        undone = n_undone[waiter] - 1
                        n_undone[waiter] = undone
                        if (
                            not undone
                            and waiter < rob_next
                            and not issued[waiter]
                        ):
                            fu = fu_of[waiter]
                            ready_append[fu](waiter)
                            ready_mask |= 1 << fu
            # No completion ever schedules onto the current slot
            # (latencies are >= 1 and below the wheel size), so the
            # slot list is safely reused after an in-place clear.
            del finishing[:]

        # ---------------- retire --------------------------------
        # The retired range is contiguous and bounded by the first
        # not-done entry: find it and free resources by prefix sums.
        if rob_head < rob_next and done[rob_head]:
            limit = rob_head + retire_width
            if rob_next < limit:
                limit = rob_next
            stop = done_find(0, rob_head, limit)
            if stop < 0:
                stop = limit
            free_regs[0] += gpr_prefix[stop] - gpr_prefix[rob_head]
            free_regs[1] += vpr_prefix[stop] - vpr_prefix[rob_head]
            free_regs[2] += fpr_prefix[stop] - fpr_prefix[rob_head]
            store_queue_used -= store_prefix[stop] - store_prefix[rob_head]
            retired += stop - rob_head
            rob_head = stop
            if retired >= n:
                break

        # ---------------- issue / execute -----------------------
        lsu_block = None
        mask = ready_mask
        while mask:
            low = mask & -mask
            mask -= low
            fu = low.bit_length() - 1
            ready_queue = ready[fu]
            capacity = capacity_of[fu]
            issued_here = 0
            ready_popleft = ready_queue.popleft
            while ready_queue and issued_here < capacity:
                index = ready_popleft()
                latency = base_latency[index]
                m = meta[index]
                if m & 3:
                    if m & 1:   # load
                        alias = -1
                        for word in words_of[index]:
                            store = store_word_get(word, -1)
                            if (
                                store >= 0
                                and store < index
                                and not done[store]
                            ):
                                alias = store
                                break
                        if alias >= 0:
                            lsu_block = Trauma.ST_DATA
                            deferred.append(index)
                            continue
                        is_wide = wide_extra and m & 8
                        port_busy = (
                            dl1_latency + (wide_extra if is_wide else 0)
                        )
                        port = -1
                        for candidate in range(read_ports):
                            if read_port_free[candidate] <= cycle:
                                read_port_free[candidate] = cycle + port_busy
                                port = candidate
                                break
                        if port < 0:
                            deferred.append(index)
                            break
                        if (
                            not memory_is_ideal
                            and outstanding_misses >= max_misses
                            and not dl1_probe(addresses[index])
                        ):
                            lsu_block = Trauma.MM_DMQF
                            read_port_free[port] = cycle  # release
                            deferred.append(index)
                            continue
                        access_latency, level, tlb_missed = access_data(
                            addresses[index], sizes[index]
                        )
                        if level != 1:
                            miss_info[index] = (
                                Trauma.MM_DL1 if level == 2
                                else Trauma.MM_DL2,
                                True,
                            )
                            outstanding_misses += 1
                        elif tlb_missed:
                            miss_info[index] = (Trauma.MM_TLB1, False)
                        latency = 1 + access_latency
                        if is_wide:
                            latency += wide_extra
                    else:       # store
                        port = -1
                        for candidate in range(write_ports):
                            if write_port_free[candidate] <= cycle:
                                write_port_free[candidate] = (
                                    cycle + dl1_latency
                                )
                                port = candidate
                                break
                        if port < 0:
                            deferred.append(index)
                            break
                        access_data(addresses[index], sizes[index])
                        for word in words_of[index]:
                            pending_store_words[word] = index
                issued[index] = 1
                iq_count[fu] -= 1
                issued_here += 1
                wheel[(cycle + latency) & wheel_mask].append(index)
                wheel_count += 1
            if deferred:
                for index in reversed(deferred):
                    ready_queue.appendleft(index)
                del deferred[:]
            if not ready_queue:
                ready_mask &= ~low

        # ---------------- dispatch ------------------------------
        dispatched = 0
        block_reason = None
        # The ROB-window and in-flight caps both shrink by one per
        # dispatch and blame identically; track the tighter headroom.
        win_room = retire_queue - (rob_next - rob_head)
        other_room = inflight_cap - inflight
        if other_room < win_room:
            win_room = other_room
        while dispatched < dispatch_width and ibuf_head < fetch_index:
            index = ibuf_head
            m = meta[index]
            fu = (m >> 4) & 7
            if iq_count[fu] >= iq_capacity:
                block_reason = _blame_queue(
                    fu, iq[fu], issued, n_undone, done, lsu_block,
                    fu_of, sources_of,
                )
                break
            regfile = ((m >> 7) & 3) - 1
            if regfile >= 0 and free_regs[regfile] == 0:
                block_reason = _blame_rob(
                    rob_head, rob_next, issued, n_undone, done,
                    miss_info, fu_of, sources_of,
                )
                if block_reason == Trauma.OTHER:
                    block_reason = Trauma.RENAME
                break
            if win_room <= 0:
                block_reason = _blame_rob(
                    rob_head, rob_next, issued, n_undone, done,
                    miss_info, fu_of, sources_of,
                )
                break
            if m & 2:
                if store_queue_used >= store_queue_size:
                    block_reason = Trauma.MM_STQF
                    break
                store_queue_used += 1
            ibuf_head += 1
            if regfile >= 0:
                free_regs[regfile] -= 1
            rob_next += 1
            inflight += 1
            win_room -= 1
            iq_count[fu] += 1
            iq_append[fu](index)
            if not n_undone[index]:
                ready_append[fu](index)
                ready_mask |= 1 << fu
            dispatched += 1

        if dispatched < dispatch_width:
            if block_reason is None:
                block_reason = fetch_reason
            if block_reason is last_reason:
                last_count += 1
            else:
                if last_count:
                    trauma_cycles[last_reason] = (
                        trauma_cycles_get(last_reason, 0) + last_count
                    )
                last_reason = block_reason
                last_count = 1

        # ---------------- fetch ---------------------------------
        # Spans between break positions (branches, frontend stall
        # events, buffer/budget bounds) advance in one jump; only the
        # breaks themselves are handled instruction by instruction.
        if wait_branch < 0 and cycle >= fetch_stall_until and fetch_index < n:
            budget = fetch_width
            while budget and fetch_index < n:
                position = fetch_index
                if position - ibuf_head >= ibuffer_cap:
                    fetch_reason = Trauma.IF_FULL
                    break
                stall = next_stall[position]
                if stall == position:
                    if stall_done_at != position:
                        ordinal = event_rank[position]
                        if ev_il1_missed[ordinal]:
                            line_address = (
                                pcs[position] >> il1_shift
                            ) * il1_line_bytes
                            if l2_access(line_address):
                                level = 2
                                fetch_reason = Trauma.IF_L1
                            else:
                                level = 3
                                fetch_reason = Trauma.IF_L2
                            latency = inst_latency[level]
                            if ev_itlb_missed[ordinal]:
                                latency += itlb_penalty
                        else:
                            latency = inst_latency[1] + itlb_penalty
                            fetch_reason = Trauma.IF_TLB1
                        fetch_stall_until = cycle + latency
                        stall_done_at = position
                        break
                    # Event already processed on a prior attempt; the
                    # next unprocessed stall is strictly later.
                    stall = next_stall[position + 1]
                if branch_next[position] == position:
                    if predicted_branches >= max_predicted:
                        fetch_reason = Trauma.IF_BRCH
                        break
                    code = bp_code[branch_rank[position]]
                    predicted_branches += 1
                    fetch_index = position + 1
                    budget -= 1
                    if code == _BR_NOT_TAKEN:
                        continue
                    if code == _BR_TAKEN_MISS:
                        fetch_stall_until = cycle + btb_miss_penalty
                        fetch_reason = Trauma.IF_NFA
                    elif code == _BR_MISPREDICT:
                        wait_branch = position
                        fetch_reason = Trauma.IF_PRED
                    break
                # Plain span: jump to the nearest break position.
                limit = position + budget
                room_end = ibuf_head + ibuffer_cap
                if room_end < limit:
                    limit = room_end
                branch_at = branch_next[position]
                if branch_at < limit:
                    limit = branch_at
                if stall < limit:
                    limit = stall
                if n < limit:
                    limit = n
                budget -= limit - position
                fetch_index = limit

        # ---------------- stall fast-forward --------------------
        if (
            dispatched < dispatch_width
            and not ready_mask
            and (rob_head == rob_next or not done[rob_head])
        ):
            if ibuf_head < fetch_index:
                index = ibuf_head
                fu = fu_of[index]
                regfile = regfile_of[index]
                if iq_count[fu] >= iq_capacity:
                    skip_reason = _blame_queue(
                        fu, iq[fu], issued, n_undone, done, None,
                        fu_of, sources_of,
                    )
                elif regfile >= 0 and free_regs[regfile] == 0:
                    skip_reason = _blame_rob(
                        rob_head, rob_next, issued, n_undone, done,
                        miss_info, fu_of, sources_of,
                    )
                    if skip_reason == Trauma.OTHER:
                        skip_reason = Trauma.RENAME
                elif (
                    rob_next - rob_head >= retire_queue
                    or inflight >= inflight_cap
                ):
                    skip_reason = _blame_rob(
                        rob_head, rob_next, issued, n_undone, done,
                        miss_info, fu_of, sources_of,
                    )
                elif is_store[index] and store_queue_used >= store_queue_size:
                    skip_reason = Trauma.MM_STQF
                else:
                    skip_reason = None
            else:
                skip_reason = fetch_reason
            if skip_reason is not None:
                fetch_live = (
                    wait_branch < 0
                    and fetch_index < n
                    and fetch_index - ibuf_head < ibuffer_cap
                )
                if fetch_live:
                    bound = fetch_stall_until
                else:
                    bound = cycle + wheel_mask + 1
                if cycle_limit < bound:
                    bound = cycle_limit + 1
                skip_to = bound
                if wheel_count:
                    scan = bound - cycle - 1
                    if scan > wheel_mask:
                        scan = wheel_mask
                    for ahead in range(1, scan + 1):
                        if wheel[(cycle + ahead) & wheel_mask]:
                            skip_to = cycle + ahead
                            break
                skipped = skip_to - cycle - 1
                if skipped > 0:
                    if skip_reason is last_reason:
                        last_count += skipped
                    else:
                        if last_count:
                            trauma_cycles[last_reason] = (
                                trauma_cycles_get(last_reason, 0)
                                + last_count
                            )
                        last_reason = skip_reason
                        last_count = skipped
                    if (
                        fetch_index - ibuf_head >= ibuffer_cap
                        and wait_branch < 0
                        and fetch_index < n
                        and fetch_stall_until <= skip_to - 1
                    ):
                        fetch_reason = Trauma.IF_FULL
                    cycle += skipped

    if last_count:
        trauma_cycles[last_reason] = (
            trauma_cycles_get(last_reason, 0) + last_count
        )

    # ---------------- result assembly ---------------------------
    # Frontend statistics derive from the planes at the final fetch
    # cursor: a branch is predicted iff fetched, an I-cache/ITLB event
    # is accessed iff fetch crossed it (plus a processed-but-unfetched
    # stall event at the cursor itself).
    branches_done = branch_rank[fetch_index]
    events_done = event_rank[fetch_index]
    if stall_done_at == fetch_index:
        events_done += 1
    return SimulationResult(
        trace_name=trace_name,
        config_name=config.name,
        memory_name=memory.name,
        instructions=n,
        cycles=cycle,
        traumas={
            trauma.value: trauma_cycles.get(trauma, 0)
            for trauma in FIG2_ORDER
        },
        branch=BranchResult(
            predictions=branches_done,
            correct=bplane.correct_prefix[branches_done],
            btb_lookups=bplane.btb_lookup_prefix[branches_done],
            btb_misses=bplane.btb_miss_prefix[branches_done],
        ),
        il1=CacheResult(events_done, fplane.il1_miss_prefix[events_done]),
        dl1=CacheResult(hierarchy.dl1.accesses, hierarchy.dl1.misses),
        l2=CacheResult(hierarchy.l2.accesses, hierarchy.l2.misses),
        itlb=CacheResult(events_done, fplane.itlb_miss_prefix[events_done]),
        dtlb=CacheResult(hierarchy.dtlb.lookups, hierarchy.dtlb.misses),
        queue_occupancy={},
    )
