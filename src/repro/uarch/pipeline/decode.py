"""Config-independent per-trace decode plane.

The out-of-order core consults a handful of derived, per-instruction
facts on every simulated cycle: which functional unit an op uses, its
base latency, which register file its result lives in, whether it is a
load/store/branch, which I-cache line its pc maps to, and which 8-byte
words a memory access touches.  None of these depend on the processor
or memory configuration, so a Figure 5-style sweep (one trace simulated
under many configurations) kept recomputing identical values.

:func:`decode_trace` derives them all once, in vectorized passes over
the trace's native columns, and caches the result on the trace
(``trace._decoded``).  The fields are plain Python lists — indexing a
list with an ``int`` is considerably faster inside the interpreter's
cycle loop than indexing a NumPy array, which would box a fresh scalar
object on every read.
"""

from __future__ import annotations

import numpy as np

from repro.isa.opcodes import (
    FU_OF_OPCLASS,
    LATENCY_OF_OPCLASS,
    MEMORY_OPS,
    OpClass,
)
from repro.isa.trace import Trace

#: Register file classes (indexes into the core's free-register table).
GPR, VPR, FPR = 0, 1, 2

#: OpClass -> register file of the result; -1 for destination-less ops.
REGFILE_OF_OPCLASS: dict[OpClass, int] = {
    OpClass.IALU: GPR,
    OpClass.ILOAD: GPR,
    OpClass.OTHER: GPR,
    OpClass.VLOAD: VPR,
    OpClass.VSIMPLE: VPR,
    OpClass.VPERM: VPR,
    OpClass.VCMPLX: VPR,
    OpClass.FPU: FPR,
}

_N_OPS = len(OpClass)
_FU_TABLE = np.array(
    [int(FU_OF_OPCLASS[OpClass(v)]) for v in range(_N_OPS)], dtype=np.int64
)
_LATENCY_TABLE = np.array(
    [LATENCY_OF_OPCLASS[OpClass(v)] for v in range(_N_OPS)], dtype=np.int64
)
_REGFILE_TABLE = np.array(
    [REGFILE_OF_OPCLASS.get(OpClass(v), -1) for v in range(_N_OPS)],
    dtype=np.int64,
)
_IS_LOAD = np.zeros(_N_OPS, dtype=bool)
_IS_LOAD[[OpClass.ILOAD, OpClass.VLOAD]] = True
_IS_STORE = np.zeros(_N_OPS, dtype=bool)
_IS_STORE[[OpClass.ISTORE, OpClass.VSTORE]] = True
_IS_MEMORY = np.zeros(_N_OPS, dtype=bool)
_IS_MEMORY[[int(op) for op in MEMORY_OPS]] = True

#: I-cache line granularity assumed by the frontend (128-byte lines).
FETCH_LINE_SHIFT = 7


class DecodedTrace:
    """Derived per-instruction facts, shared by every configuration.

    All sequence fields are Python lists of length ``n`` indexed by
    trace position.  ``words`` holds a tuple of touched 8-byte word
    numbers for memory instructions and ``None`` elsewhere; ``sources``
    holds the (possibly empty) tuple of producer indices.
    """

    __slots__ = (
        "n", "op", "fu", "latency", "regfile", "is_load", "is_store",
        "is_branch", "is_memory", "is_vload", "has_dest", "line", "pc",
        "address", "size", "taken", "target", "words", "sources",
        "batch",
    )

    def __init__(self, trace: Trace) -> None:
        columns = trace.columns
        ops = columns["ops"]
        n = len(ops)
        self.n = n
        self.op = ops.tolist()
        self.fu = _FU_TABLE[ops].tolist()
        self.latency = _LATENCY_TABLE[ops].tolist()
        self.regfile = _REGFILE_TABLE[ops].tolist()
        is_load = _IS_LOAD[ops]
        is_store = _IS_STORE[ops]
        is_memory = _IS_MEMORY[ops]
        self.is_load = is_load.tolist()
        self.is_store = is_store.tolist()
        self.is_branch = (ops == OpClass.CTRL).tolist()
        self.is_memory = is_memory.tolist()
        self.is_vload = (ops == OpClass.VLOAD).tolist()
        self.has_dest = columns["dests"].astype(bool).tolist()
        pcs = columns["pcs"]
        self.line = (pcs >> FETCH_LINE_SHIFT).tolist()
        self.pc = pcs.tolist()
        addresses = columns["addresses"]
        sizes = columns["sizes"]
        self.address = addresses.tolist()
        self.size = sizes.tolist()
        self.taken = columns["takens"].astype(bool).tolist()
        self.target = columns["targets"].tolist()

        # 8-byte word spans of memory accesses (store-to-load aliasing).
        first_words = (addresses >> 3).tolist()
        last_words = (
            (addresses + np.maximum(sizes, 1).astype(np.int64) - 1) >> 3
        ).tolist()
        words: list[tuple[int, ...] | None] = [None] * n
        for index in np.flatnonzero(is_memory).tolist():
            first = first_words[index]
            last = last_words[index]
            words[index] = (
                (first,) if first == last
                else tuple(range(first, last + 1))
            )
        self.words = words

        # Producer tuples with the -1 padding stripped.
        source_rows = columns["sources"].tolist()
        self.sources = [
            tuple(source for source in row if source >= 0)
            for row in source_rows
        ]

        #: Lazily-built batch planes for lockstep multi-config simulation
        #: (:mod:`repro.uarch.pipeline.lockstep`); config-independent, so
        #: they share the decode plane's lifetime and caching.
        self.batch = None


def decode_trace(trace: Trace) -> DecodedTrace:
    """The trace's decode plane, built once and cached on the trace."""
    decoded = trace._decoded
    if decoded is None:
        decoded = DecodedTrace(trace)
        trace._decoded = decoded
    return decoded
