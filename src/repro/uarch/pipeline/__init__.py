"""Out-of-order pipeline model."""

from repro.uarch.pipeline.core import OutOfOrderCore
from repro.uarch.pipeline.lockstep import LOCKSTEP_WIDTH, LockstepCore

__all__ = ["OutOfOrderCore", "LockstepCore", "LOCKSTEP_WIDTH"]
