"""Out-of-order pipeline model."""

from repro.uarch.pipeline.core import OutOfOrderCore

__all__ = ["OutOfOrderCore"]
