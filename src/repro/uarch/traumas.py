"""Trauma (pipeline stall reason) taxonomy and accounting.

Turandot records, for every operation that cannot make forward
progress, a *trauma* class; the paper's Figure 2 histograms group them
into 56 classes (Table VII documents the important ones).  This module
defines the same class names and the accounting helper the pipeline
model uses.

Blame model: every cycle in which the dispatch stage moves fewer
instructions than its width, one trauma is charged describing why the
*oldest blocked* instruction (or the frontend) could not proceed —
forwarding blame through full queues to the stall at their head, which
is how dependence stalls (``rg_*``) rather than queue-full symptoms
surface as the dominant classes.
"""

from __future__ import annotations

from enum import Enum

from repro.isa.opcodes import FunctionalUnit


class Trauma(str, Enum):
    """Stall reason classes (Fig. 2 x-axis, left to right)."""

    ST_DATA = "st_data"
    # Register dependency on a result from unit X.
    RG_VFPU = "rg_vfpu"
    RG_VCMPLX = "rg_vcmplx"
    RG_VPER = "rg_vper"
    RG_VI = "rg_vi"
    RG_CMPLX = "rg_cmplx"
    RG_LOG = "rg_log"
    RG_BR = "rg_br"
    RG_MEM = "rg_mem"
    RG_FPU = "rg_fpu"
    RG_FIX = "rg_fix"
    # Memory subsystem.
    MM_DL1 = "mm_dl1"
    MM_DL2 = "mm_dl2"
    MM_TLB2 = "mm_tlb2"
    MM_TLB1 = "mm_tlb1"
    MM_STND = "mm_stnd"
    MM_DCQF = "mm_dcqf"
    MM_DMQF = "mm_dmqf"
    MM_ROQF = "mm_roqf"
    MM_STQC = "mm_stqc"
    MM_STQF = "mm_stqf"
    # All units of a class busy.
    FUL_VFPU = "ful_vfpu"
    FUL_VCMPLX = "ful_vcmplx"
    FUL_VPER = "ful_vper"
    FUL_VI = "ful_vi"
    FUL_CMPLX = "ful_cmplx"
    FUL_LOG = "ful_log"
    FUL_BR = "ful_br"
    FUL_MEM = "ful_mem"
    FUL_FPU = "ful_fpu"
    FUL_FIX = "ful_fix"
    # Dispatch/issue queue full.
    DIQ_VFPU = "diq_vfpu"
    DIQ_VCMPLX = "diq_vcmplx"
    DIQ_VPER = "diq_vper"
    DIQ_VI = "diq_vi"
    DIQ_CMPLX = "diq_cmplx"
    DIQ_LOG = "diq_log"
    DIQ_BR = "diq_br"
    DIQ_MEM = "diq_mem"
    DIQ_FPU = "diq_fpu"
    DIQ_FIX = "diq_fix"
    # Rename/decode.
    RENAME = "rename"
    DECODE = "decode"
    # Frontend.
    IF_LDST = "if_ldst"
    IF_BRCH = "if_brch"
    IF_FLIT = "if_flit"
    IF_FULL = "if_full"
    IF_PRED = "if_pred"
    IF_PREF = "if_pref"
    IF_L1 = "if_l1"
    IF_L15 = "if_l15"
    IF_L2 = "if_l2"
    IF_TLB2 = "if_tlb2"
    IF_TLB1 = "if_tlb1"
    IF_NFA = "if_nfa"
    OTHER = "other"


#: Figure 2 x-axis order.
FIG2_ORDER: tuple[Trauma, ...] = tuple(Trauma)

_RG_BY_UNIT: dict[FunctionalUnit, Trauma] = {
    FunctionalUnit.LDST: Trauma.RG_MEM,
    FunctionalUnit.FX: Trauma.RG_FIX,
    FunctionalUnit.FP: Trauma.RG_FPU,
    FunctionalUnit.BR: Trauma.RG_BR,
    FunctionalUnit.VI: Trauma.RG_VI,
    FunctionalUnit.VPER: Trauma.RG_VPER,
    FunctionalUnit.VCMPLX: Trauma.RG_VCMPLX,
    FunctionalUnit.VFP: Trauma.RG_VFPU,
}

_FUL_BY_UNIT: dict[FunctionalUnit, Trauma] = {
    FunctionalUnit.LDST: Trauma.FUL_MEM,
    FunctionalUnit.FX: Trauma.FUL_FIX,
    FunctionalUnit.FP: Trauma.FUL_FPU,
    FunctionalUnit.BR: Trauma.FUL_BR,
    FunctionalUnit.VI: Trauma.FUL_VI,
    FunctionalUnit.VPER: Trauma.FUL_VPER,
    FunctionalUnit.VCMPLX: Trauma.FUL_VCMPLX,
    FunctionalUnit.VFP: Trauma.FUL_VFPU,
}

_DIQ_BY_UNIT: dict[FunctionalUnit, Trauma] = {
    FunctionalUnit.LDST: Trauma.DIQ_MEM,
    FunctionalUnit.FX: Trauma.DIQ_FIX,
    FunctionalUnit.FP: Trauma.DIQ_FPU,
    FunctionalUnit.BR: Trauma.DIQ_BR,
    FunctionalUnit.VI: Trauma.DIQ_VI,
    FunctionalUnit.VPER: Trauma.DIQ_VPER,
    FunctionalUnit.VCMPLX: Trauma.DIQ_VCMPLX,
    FunctionalUnit.VFP: Trauma.DIQ_VFPU,
}


def rg_trauma(unit: FunctionalUnit) -> Trauma:
    """Register-dependency trauma for a producer executed on ``unit``."""
    return _RG_BY_UNIT[unit]


def ful_trauma(unit: FunctionalUnit) -> Trauma:
    """All-units-busy trauma for ``unit``."""
    return _FUL_BY_UNIT[unit]


def diq_trauma(unit: FunctionalUnit) -> Trauma:
    """Issue-queue-full trauma for ``unit``."""
    return _DIQ_BY_UNIT[unit]


class TraumaAccount:
    """Cycle counts per trauma class."""

    def __init__(self) -> None:
        self.cycles: dict[Trauma, int] = {}

    def charge(self, trauma: Trauma, cycles: int = 1) -> None:
        """Add stall cycles to one class."""
        self.cycles[trauma] = self.cycles.get(trauma, 0) + cycles

    def total(self) -> int:
        """Total charged stall cycles."""
        return sum(self.cycles.values())

    def top(self, count: int = 8) -> list[tuple[Trauma, int]]:
        """The ``count`` largest classes, descending."""
        ranked = sorted(self.cycles.items(), key=lambda item: -item[1])
        return ranked[:count]

    def as_histogram(self) -> dict[str, int]:
        """Full Fig. 2 histogram (zeros included), in axis order."""
        return {trauma.value: self.cycles.get(trauma, 0) for trauma in FIG2_ORDER}
