"""Simulation result containers."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheResult:
    """Access/miss counts for one cache level."""

    accesses: int
    misses: int

    @property
    def miss_rate(self) -> float:
        """Miss ratio (0.0 with no accesses)."""
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass(frozen=True)
class BranchResult:
    """Direction-prediction outcome counts."""

    predictions: int
    correct: int
    btb_lookups: int = 0
    btb_misses: int = 0

    @property
    def accuracy(self) -> float:
        """Prediction rate (1.0 with no branches)."""
        return self.correct / self.predictions if self.predictions else 1.0

    @property
    def mispredictions(self) -> int:
        """Number of wrong direction predictions."""
        return self.predictions - self.correct


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one trace-driven pipeline simulation."""

    trace_name: str
    config_name: str
    memory_name: str
    instructions: int
    cycles: int
    traumas: dict[str, int]
    branch: BranchResult
    il1: CacheResult
    dl1: CacheResult
    l2: CacheResult
    itlb: CacheResult = CacheResult(0, 0)
    dtlb: CacheResult = CacheResult(0, 0)
    #: queue name -> occupancy value -> cycles observed at that value.
    queue_occupancy: dict[str, dict[int, int]] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def trauma_top(self, count: int = 8) -> list[tuple[str, int]]:
        """Largest stall classes, descending."""
        ranked = sorted(self.traumas.items(), key=lambda item: -item[1])
        return [(name, cycles) for name, cycles in ranked[:count] if cycles][:count]

    def occupancy_mean(self, queue: str) -> float:
        """Mean occupancy of one tracked queue."""
        histogram = self.queue_occupancy.get(queue, {})
        total = sum(histogram.values())
        if not total:
            return 0.0
        return sum(value * cycles for value, cycles in histogram.items()) / total
