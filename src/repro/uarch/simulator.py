"""Top-level simulation entry points.

:func:`simulate` runs one (trace, config) pair through the scalar
out-of-order core.  :func:`simulate_batch` runs one trace under *many*
configurations — the shape of the paper's Tables IV-VI and Figures 5/9
— through the lockstep engine
(:class:`~repro.uarch.pipeline.lockstep.LockstepCore`), which shares
the config-independent decode, branch-predictor, and frontend planes
across the batch.  Results are byte-identical either way; the batch
path is just faster per configuration.
"""

from __future__ import annotations

from typing import Sequence

from repro.isa.trace import Trace
from repro.uarch.config import ProcessorConfig
from repro.uarch.pipeline.core import OutOfOrderCore
from repro.uarch.results import SimulationResult


def simulate(
    trace: Trace,
    config: ProcessorConfig,
    track_occupancy: bool = False,
    max_cycles: int | None = None,
    warmup: Trace | None = None,
) -> SimulationResult:
    """Run ``trace`` through one processor configuration.

    ``track_occupancy`` additionally records per-cycle issue-queue,
    in-flight, and reorder-queue occupancy histograms (Fig. 10) at some
    simulation-speed cost.  ``max_cycles`` guards against runaway
    simulations in tests.  ``warmup`` functionally warms the caches,
    TLBs, and predictors with another trace before timing begins
    (used by window sampling).
    """
    core = OutOfOrderCore(
        trace, config, track_occupancy=track_occupancy, warmup=warmup
    )
    return core.run(max_cycles=max_cycles)


def simulate_batch(
    trace: Trace,
    configs: Sequence[ProcessorConfig],
    *,
    track_occupancy: bool = False,
    max_cycles: int | None = None,
    warmup: Trace | None = None,
    jobs: int | None = None,
) -> list[SimulationResult]:
    """Run one trace under many configurations; results in input order.

    Batches of two or more plain simulations (no occupancy tracking, no
    functional warmup) go through the lockstep engine, which shares the
    config-independent planes across the batch; each returned
    :class:`~repro.uarch.results.SimulationResult` is byte-identical to
    the corresponding :func:`simulate` call.  Occupancy/warmup requests
    and singleton batches fall back to the scalar core.

    ``jobs`` > 1 additionally forks worker processes over the batch on
    platforms with ``fork`` (the warm planes are inherited
    copy-on-write, so workers start hot); elsewhere, or inside a
    daemonic pool worker, the batch runs in-process.
    """
    configs = list(configs)
    if track_occupancy or warmup is not None or len(configs) < 2:
        return [
            simulate(
                trace, config,
                track_occupancy=track_occupancy,
                max_cycles=max_cycles,
                warmup=warmup,
            )
            for config in configs
        ]
    from repro.uarch.pipeline.lockstep import LockstepCore, run_batch_forked

    if jobs is not None and jobs > 1:
        forked = run_batch_forked(trace, configs, max_cycles, jobs)
        if forked is not None:
            return forked
    return LockstepCore(trace, configs, max_cycles=max_cycles).run()
