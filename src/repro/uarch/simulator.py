"""Top-level simulation entry point."""

from __future__ import annotations

from repro.isa.trace import Trace
from repro.uarch.config import ProcessorConfig
from repro.uarch.pipeline.core import OutOfOrderCore
from repro.uarch.results import SimulationResult


def simulate(
    trace: Trace,
    config: ProcessorConfig,
    track_occupancy: bool = False,
    max_cycles: int | None = None,
    warmup: Trace | None = None,
) -> SimulationResult:
    """Run ``trace`` through one processor configuration.

    ``track_occupancy`` additionally records per-cycle issue-queue,
    in-flight, and reorder-queue occupancy histograms (Fig. 10) at some
    simulation-speed cost.  ``max_cycles`` guards against runaway
    simulations in tests.  ``warmup`` functionally warms the caches,
    TLBs, and predictors with another trace before timing begins
    (used by window sampling).
    """
    core = OutOfOrderCore(
        trace, config, track_occupancy=track_occupancy, warmup=warmup
    )
    return core.run(max_cycles=max_cycles)
