"""Sweep reports: tables, CPI stacks, and knee detection.

Reports render entirely from the persistent manifest
(:mod:`repro.sweep.manifest`) — producing one never touches the worker
pool or re-opens cached simulation results.  Three formats share one
:func:`report_data` extraction:

``text``
    Fixed-width tables (one row per grid point) in the style of the
    paper's Tables IV-VI, plus a knee summary.
``json``
    The full extraction, serialized with sorted keys — byte-stable, so
    a report reached by interrupt-plus-resume is byte-identical to one
    from an uninterrupted run.
``html``
    A single self-contained page: the point table, per-point CPI-stack
    bars, and the knee summary.  No external assets, suitable as a CI
    artifact.

Knee detection uses the max-distance-from-chord construction (the core
of the Kneedle method): normalize a metric series along one numeric
axis to the unit square and pick the interior point farthest from the
straight line joining the endpoints.  That is where the paper's
cache-size and latency sweeps (Figs. 5-7) visibly change regime.
"""

from __future__ import annotations

import html as _html
import json
from pathlib import Path

from repro.analysis.cpi_stack import FAMILIES
from repro.analysis.reporting import render_table
from repro.sweep.manifest import SweepManifest
from repro.sweep.plan import expand_spec
from repro.sweep.spec import SweepSpec

#: Supported ``render_report`` formats.
REPORT_FORMATS = ("text", "json", "html")

#: A knee must bow at least this far (in unit-square distance) from the
#: chord to count; straight-line series have no knee.
KNEE_MIN_DISTANCE = 0.02


def detect_knee(
    xs: list[float], ys: list[float]
) -> float | None:
    """Knee x-value of a series, or ``None`` when the series is straight.

    Max-distance-from-chord over the series normalized to the unit
    square: endpoints anchor the chord, and the interior point with the
    largest perpendicular distance is the knee.  Needs at least three
    points and non-degenerate spans.
    """
    if len(xs) < 3 or len(xs) != len(ys):
        return None
    x_span = xs[-1] - xs[0]
    y_span = max(ys) - min(ys)
    if x_span == 0 or y_span == 0:
        return None
    unit_x = [(x - xs[0]) / x_span for x in xs]
    unit_y = [(y - min(ys)) / y_span for y in ys]
    # Distance from the chord through (x0,y0)-(x1,y1), up to the
    # constant chord length: |dy*x - dx*y + c|.
    delta_x = unit_x[-1] - unit_x[0]
    delta_y = unit_y[-1] - unit_y[0]
    constant = unit_x[-1] * unit_y[0] - unit_y[-1] * unit_x[0]
    best_index, best_distance = None, KNEE_MIN_DISTANCE
    scale = (delta_x * delta_x + delta_y * delta_y) ** 0.5
    for index in range(1, len(xs) - 1):
        distance = abs(
            delta_y * unit_x[index] - delta_x * unit_y[index] + constant
        ) / scale
        if distance > best_distance:
            best_index, best_distance = index, distance
    return None if best_index is None else xs[best_index]


def _numeric(value) -> float | None:
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    return None


def _knee_entries(spec: SweepSpec, points: list[dict]) -> list[dict]:
    """One knee verdict per (axis, series, metric) with enough points."""
    entries: list[dict] = []
    for axis in spec.knee_axes:
        # Group points into series along ``axis``: same workload and
        # same values on every *other* axis.
        series: dict[tuple, list] = {}
        for point in points:
            coords = dict(point["coords"])
            if axis not in coords or point["metrics"] is None:
                continue
            x = _numeric(coords[axis])
            if x is None:  # "inf" and friends cannot anchor a knee
                continue
            key = (point["workload"],) + tuple(
                (name, value) for name, value in sorted(coords.items())
                if name != axis
            )
            series.setdefault(key, []).append((x, point["metrics"]))
        for key in sorted(series):
            samples = sorted(series[key], key=lambda pair: pair[0])
            xs = [x for x, _ in samples]
            for metric in spec.metrics:
                ys = [metrics.get(metric) for _, metrics in samples]
                if any(y is None for y in ys):
                    continue
                knee = detect_knee(xs, [float(y) for y in ys])
                if knee is None:
                    continue
                entries.append({
                    "axis": axis,
                    "workload": key[0],
                    "fixed": {name: value for name, value in key[1:]},
                    "metric": metric,
                    "knee": knee,
                })
    return entries


def report_data(
    spec: SweepSpec, state_dir: str | Path
) -> dict:
    """Full report extraction from a spec's manifest.

    Every grid point appears, complete or not; incomplete points carry
    ``"metrics": None`` and are listed under ``"missing"``.
    """
    manifest = SweepManifest.open(state_dir, spec)
    points = []
    missing = []
    for point in expand_spec(spec):
        metrics = manifest.metrics(point.point_id)
        if metrics is None:
            missing.append(point.point_id)
        points.append({
            "point_id": point.point_id,
            "workload": point.workload,
            "coords": [[axis, value] for axis, value in point.coords],
            "metrics": metrics,
        })
    return {
        "sweep": spec.name,
        "description": spec.description,
        "spec_digest": spec.digest(),
        "axes": {name: list(values) for name, values in spec.axes},
        "workloads": list(spec.workloads),
        "metrics": list(spec.metrics),
        "points": points,
        "missing": missing,
        "complete": not missing,
        "knees": _knee_entries(spec, points),
    }


def _format_metric(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def _point_rows(data: dict) -> tuple[list[str], list[list[str]]]:
    axis_names = list(data["axes"])
    headers = ["workload"] + axis_names + list(data["metrics"])
    rows = []
    for point in data["points"]:
        coords = dict(
            (axis, value) for axis, value in point["coords"]
        )
        metrics = point["metrics"] or {}
        rows.append(
            [point["workload"]]
            + [str(coords.get(axis, "-")) for axis in axis_names]
            + [
                _format_metric(metrics.get(metric))
                for metric in data["metrics"]
            ]
        )
    return headers, rows


def _render_text(data: dict) -> str:
    headers, rows = _point_rows(data)
    title = f"sweep {data['sweep']} ({data['spec_digest']})"
    if data["description"]:
        title += f" - {data['description']}"
    sections = [render_table(title, headers, rows)]
    if data["missing"]:
        sections.append(
            f"incomplete: {len(data['missing'])} of "
            f"{len(data['points'])} points missing"
        )
    if data["knees"]:
        lines = ["knees (max distance from chord):"]
        for entry in data["knees"]:
            fixed = ", ".join(
                f"{name}={value}" for name, value in entry["fixed"].items()
            )
            context = f" [{fixed}]" if fixed else ""
            lines.append(
                f"  {entry['workload']}{context}: {entry['metric']} knees "
                f"at {entry['axis']}={entry['knee']:g}"
            )
        sections.append("\n".join(lines))
    return "\n\n".join(sections) + "\n"


def _render_json(data: dict) -> str:
    return json.dumps(data, indent=2, sort_keys=True) + "\n"


def _stack_bar(metrics: dict | None) -> str:
    """Inline horizontal CPI-stack bar for one point."""
    if not metrics or not metrics.get("cpi_stack"):
        return ""
    stack = metrics["cpi_stack"]
    total = sum(stack.get(family, 0.0) for family in FAMILIES)
    if total <= 0:
        return ""
    pieces = []
    for family in FAMILIES:
        share = stack.get(family, 0.0) / total
        if share <= 0:
            continue
        pieces.append(
            f'<span class="f-{family}" style="width:{share * 100:.2f}%" '
            f'title="{family}: {stack.get(family, 0.0):.4f} CPI"></span>'
        )
    return f'<span class="stack">{"".join(pieces)}</span>'


_HTML_STYLE = """\
body { font-family: sans-serif; margin: 2em; color: #222; }
table { border-collapse: collapse; }
th, td { border: 1px solid #bbb; padding: 0.25em 0.6em; text-align: left; }
th { background: #eee; }
.stack { display: inline-flex; width: 140px; height: 0.9em; \
border: 1px solid #999; }
.stack span { display: inline-block; height: 100%; }
.f-base { background: #4c72b0; } .f-branch { background: #dd8452; }
.f-memory { background: #55a868; } .f-dependence { background: #c44e52; }
.f-resource { background: #8172b3; } .f-frontend { background: #937860; }
.f-other { background: #8c8c8c; }
.missing { color: #a00; }
"""


def _render_html(data: dict) -> str:
    headers, rows = _point_rows(data)
    escape = _html.escape
    out = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>sweep {escape(data['sweep'])}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>sweep {escape(data['sweep'])} "
        f"<small>({escape(data['spec_digest'])})</small></h1>",
    ]
    if data["description"]:
        out.append(f"<p>{escape(data['description'])}</p>")
    if data["missing"]:
        out.append(
            f"<p class='missing'>incomplete: {len(data['missing'])} of "
            f"{len(data['points'])} points missing</p>"
        )
    out.append("<table><tr>")
    out.extend(f"<th>{escape(header)}</th>" for header in headers)
    out.append("<th>cpi stack</th></tr>")
    for row, point in zip(rows, data["points"]):
        out.append("<tr>")
        out.extend(f"<td>{escape(cell)}</td>" for cell in row)
        out.append(f"<td>{_stack_bar(point['metrics'])}</td></tr>")
    out.append("</table>")
    if data["knees"]:
        out.append("<h2>knees</h2><ul>")
        for entry in data["knees"]:
            fixed = ", ".join(
                f"{name}={value}" for name, value in entry["fixed"].items()
            )
            context = f" [{escape(fixed)}]" if fixed else ""
            out.append(
                f"<li>{escape(entry['workload'])}{context}: "
                f"{escape(entry['metric'])} knees at "
                f"{escape(entry['axis'])}={entry['knee']:g}</li>"
            )
        out.append("</ul>")
    out.append("</body></html>")
    return "\n".join(out) + "\n"


def render_report(data: dict, format: str = "text") -> str:
    """Render one extraction (:func:`report_data`) as ``format``."""
    if format == "text":
        return _render_text(data)
    if format == "json":
        return _render_json(data)
    if format == "html":
        return _render_html(data)
    raise ValueError(
        f"unknown report format {format!r}; expected one of {REPORT_FORMATS}"
    )
