"""Resumable sweep execution on the experiment runtime.

The runner turns a validated spec into work:

1. expand the grid (:func:`repro.sweep.plan.expand_spec`);
2. generate (or recall) every referenced workload trace through
   :meth:`~repro.runtime.engine.ExperimentRuntime.run_workloads` — the
   runtime's prefix dedup means a trace shared by every config point of
   a workload is produced exactly once;
3. address every point by its simulate digest and split the grid into
   *complete* (recorded in the manifest under the same digest),
   *invalidated* (recorded under a stale digest — code, scale, or spec
   drift), and *pending* points;
4. execute pending points in bounded batches on the runtime pool
   (``sweep_point`` tasks store results durably from the workers), and
   persist the manifest after every batch.

Interrupting a run — ``max_points``, a killed process, a dying worker
pool — therefore loses at most one in-flight batch, and the next run
executes exactly the points that are missing.  A fully warm re-run
executes nothing: every point resolves from the manifest (and the
result cache double-checks nothing because the manifest match is
digest-exact).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.points import point_metrics
from repro.runtime.engine import ExperimentRuntime
from repro.runtime.keys import simulate_key
from repro.sweep.manifest import SweepManifest
from repro.sweep.plan import SweepPoint, expand_spec
from repro.sweep.spec import SweepSpec
from repro.workloads.suite import WorkloadSuite

#: Points per executed batch: small enough that an interruption loses
#: little, large enough that the pool stays saturated.
DEFAULT_BATCH_SIZE = 16


@dataclass
class SweepRun:
    """Outcome of one ``run_sweep`` invocation."""

    spec: SweepSpec
    manifest: SweepManifest
    points: list[SweepPoint]
    executed: list[str] = field(default_factory=list)
    resumed: list[str] = field(default_factory=list)
    invalidated: list[str] = field(default_factory=list)
    remaining: list[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True when every grid point is recorded in the manifest."""
        return not self.remaining

    def summary(self) -> dict:
        """Headline counters (CLI/CI assertions)."""
        return {
            "sweep": self.spec.name,
            "spec_digest": self.spec.digest(),
            "points": len(self.points),
            "executed": len(self.executed),
            "resumed": len(self.resumed),
            "invalidated": len(self.invalidated),
            "remaining": len(self.remaining),
            "complete": self.complete,
        }


def _make_suite(spec: SweepSpec) -> WorkloadSuite:
    if spec.trace_budget is not None:
        return WorkloadSuite(trace_budget=spec.trace_budget)
    return WorkloadSuite()


def run_sweep(
    spec: SweepSpec,
    runtime: ExperimentRuntime,
    *,
    state_dir: str | Path | None = None,
    suite: WorkloadSuite | None = None,
    max_points: int | None = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    lockstep: bool = True,
) -> SweepRun:
    """Execute (or resume) one sweep campaign.

    ``state_dir`` holds the persistent manifest; it defaults to
    ``<cache root>/sweeps`` so a persistent ``--cache-dir`` makes both
    the results and the manifest durable together.  ``max_points``
    bounds how many *pending* points this invocation executes — the
    partial-run / interruption hook used by tests, CI, and budgeted
    overnight campaigns; the returned :class:`SweepRun` reports what
    remains.  ``lockstep`` (default on) executes points sharing a trace
    as lockstep multi-config batches; results, cache entries, and
    recorded metrics are byte-identical either way, so interrupting
    under one engine and resuming under the other is safe.
    """
    if state_dir is None:
        state_dir = Path(runtime.cache.root) / "sweeps"
    suite = suite or _make_suite(spec)
    points = expand_spec(spec)
    manifest = SweepManifest.open(state_dir, spec)

    # Traces first: every config point of a workload shares one trace.
    runtime.run_workloads(suite, spec.workloads)
    digests = {
        point.point_id: simulate_key(
            suite.trace(point.workload), point.config, False
        )
        for point in points
    }

    run = SweepRun(spec=spec, manifest=manifest, points=points)
    pending: list[SweepPoint] = []
    for point in points:
        if manifest.completed(point.point_id, digests[point.point_id]):
            run.resumed.append(point.point_id)
        else:
            if point.point_id in manifest.points:
                run.invalidated.append(point.point_id)
            pending.append(point)

    budget = len(pending) if max_points is None else max(0, int(max_points))
    for start in range(0, min(budget, len(pending)), batch_size):
        batch = pending[start:start + batch_size][:budget - start]
        results = runtime.sweep_points(
            [
                (suite.trace(point.workload), point.config, False)
                for point in batch
            ],
            lockstep=lockstep,
        )
        for point, result in zip(batch, results):
            manifest.record(
                point.point_id,
                digests[point.point_id],
                point.workload,
                point.coords,
                point_metrics(result),
            )
            run.executed.append(point.point_id)
        manifest.engine = "lockstep" if lockstep else "scalar"
        manifest.save()

    run.remaining = [
        point.point_id for point in pending[len(run.executed):]
    ]
    return run


def sweep_status(
    spec: SweepSpec,
    state_dir: str | Path,
) -> dict:
    """Manifest-only progress summary (no runtime, no simulation).

    Without traces this cannot recompute digests, so points recorded in
    the manifest count as complete; digest-exact invalidation happens
    on the next ``run``.
    """
    points = expand_spec(spec)
    manifest = SweepManifest.open(state_dir, spec)
    recorded = [
        point.point_id for point in points
        if point.point_id in manifest.points
    ]
    return {
        "sweep": spec.name,
        "spec_digest": spec.digest(),
        "manifest": str(manifest.path),
        "points": len(points),
        "recorded": len(recorded),
        "missing": len(points) - len(recorded),
        "complete": len(recorded) == len(points),
    }
