"""repro.sweep — declarative sweep orchestration.

The source paper is fundamentally a sweep study: its headline results
are grids over processor width (Table IV), cache geometry and latency
(Table V), and branch prediction (Table VI), crossed with the Table I
workloads.  This package turns those grids into *data*:

* :mod:`repro.sweep.spec` — a declarative spec (TOML/YAML/JSON grid
  over uarch and workload axes), validated by
  :mod:`repro.verify.sweeplint` at load time;
* :mod:`repro.sweep.plan` — expands the grid into deterministic
  :class:`~repro.sweep.plan.SweepPoint`\\ s, each carrying the exact
  :class:`~repro.uarch.config.ProcessorConfig` the ad-hoc figure
  drivers would have built (so cached results are shared byte-for-byte
  with ``repro fig3`` and friends);
* :mod:`repro.sweep.manifest` — a persistent, atomically updated
  manifest of completed points, keyed by the same content-addressed
  simulate digests the runtime cache uses;
* :mod:`repro.sweep.runner` — a resumable executor on the
  :class:`~repro.runtime.engine.ExperimentRuntime` pool: completed
  points survive interruption, re-running a spec executes only
  missing/invalidated points;
* :mod:`repro.sweep.report` — per-point metric tables (IPC, CPI
  stacks, trauma distributions) rendered as text/JSON/HTML artifacts,
  with knee detection along numeric axes.

CLI: ``python -m repro sweep {run,status,report}``; committed specs
reproducing the paper's configuration tables live in
``examples/sweeps/``.  See ``docs/sweeps.md``.
"""

from repro.sweep.manifest import SweepManifest, manifest_path
from repro.sweep.plan import SweepPoint, expand_spec
from repro.sweep.report import detect_knee, render_report, report_data
from repro.sweep.runner import SweepRun, run_sweep, sweep_status
from repro.sweep.spec import SweepSpec, SweepSpecError, load_spec, parse_spec

__all__ = [
    "SweepManifest",
    "SweepPoint",
    "SweepRun",
    "SweepSpec",
    "SweepSpecError",
    "detect_knee",
    "expand_spec",
    "load_spec",
    "manifest_path",
    "parse_spec",
    "render_report",
    "report_data",
    "run_sweep",
    "sweep_status",
]
