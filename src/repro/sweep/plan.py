"""Grid expansion: spec -> deterministic sweep points.

Each :class:`SweepPoint` carries the exact
:class:`~repro.uarch.config.ProcessorConfig` the corresponding ad-hoc
figure driver would construct — same preset objects, same
``memory_with_dl1`` defaults — so a sweep point's simulate digest
(:func:`repro.runtime.keys.simulate_key`) is *identical* to the one a
``repro fig3``/``fig5``/``fig9`` run produces, and the two share cache
entries byte-for-byte.

Expansion order is deterministic: workloads outermost (spec order),
then each axis in spec order, so point lists, manifests, and reports
are stable across runs and machines.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.sweep.spec import SweepSpec
from repro.uarch.config import (
    BP_PERFECT,
    BP_REAL,
    KB,
    ME1,
    ME2,
    ME3,
    ME4,
    MEINF,
    PROC_4WAY,
    PROC_8WAY,
    PROC_12WAY,
    PROC_16WAY,
    BranchPredictorConfig,
    MemoryConfig,
    ProcessorConfig,
    memory_with_dl1,
)

WIDTH_PRESETS: dict[str, ProcessorConfig] = {
    "4-way": PROC_4WAY,
    "8-way": PROC_8WAY,
    "12-way": PROC_12WAY,
    "16-way": PROC_16WAY,
}

MEMORY_PRESETS: dict[str, MemoryConfig] = {
    "me1": ME1, "me2": ME2, "me3": ME3, "me4": ME4, "meinf": MEINF,
}

PREDICTOR_PRESETS: dict[str, BranchPredictorConfig] = {
    "real": BP_REAL,
    "combined": BP_REAL,
    "perfect": BP_PERFECT,
    "gshare": BranchPredictorConfig(kind="gshare"),
    "bimodal": BranchPredictorConfig(kind="bimodal"),
}

#: Defaults for the parametric cache axes — the exact keyword defaults
#: of :func:`repro.uarch.config.memory_with_dl1`, which is what the
#: Fig. 5/6/7 drivers rely on.
_PARAMETRIC_DEFAULTS: dict[str, object] = {
    "dl1_size_kb": 32,
    "dl1_assoc": 2,
    "dl1_latency": 1,
    "l2_mb": 2,
}


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: a workload on one fully resolved configuration."""

    point_id: str
    workload: str
    #: (axis, value) in spec order — the point's grid coordinates.
    coords: tuple[tuple[str, object], ...]
    config: ProcessorConfig

    def coord(self, axis: str) -> object:
        """Value of one coordinate (KeyError when absent)."""
        for name, value in self.coords:
            if name == axis:
                return value
        raise KeyError(axis)


def build_config(coords: dict[str, object]) -> ProcessorConfig:
    """Resolve one set of axis values into a ``ProcessorConfig``."""
    processor = WIDTH_PRESETS[coords.get("width", "4-way")]
    if "memory" in coords:
        memory = MEMORY_PRESETS[coords["memory"]]
    elif any(axis in coords for axis in _PARAMETRIC_DEFAULTS):
        values = dict(_PARAMETRIC_DEFAULTS)
        values.update({
            axis: coords[axis]
            for axis in _PARAMETRIC_DEFAULTS
            if axis in coords
        })
        size_kb = values["dl1_size_kb"]
        l2_mb = values["l2_mb"]
        memory = memory_with_dl1(
            None if size_kb == "inf" else int(size_kb) * KB,
            associativity=int(values["dl1_assoc"]),
            latency=int(values["dl1_latency"]),
            l2_mb=None if l2_mb == "inf" else int(l2_mb),
        )
    else:
        memory = ME1
    config = processor.with_memory(memory)
    predictor = PREDICTOR_PRESETS[coords.get("predictor", "real")]
    if predictor is not BP_REAL:
        config = config.with_branch(predictor)
    return config


def point_id(workload: str, coords: tuple[tuple[str, object], ...]) -> str:
    """Stable identifier: ``workload|axis=value|...`` in spec order."""
    parts = [workload] + [f"{axis}={value}" for axis, value in coords]
    return "|".join(parts)


def expand_spec(spec: SweepSpec) -> list[SweepPoint]:
    """Expand a spec into its full, deterministically ordered grid."""
    axis_names = spec.axis_names()
    value_lists = [spec.axis_values(name) for name in axis_names]
    points: list[SweepPoint] = []
    for workload in spec.workloads:
        for combination in itertools.product(*value_lists):
            coords = tuple(zip(axis_names, combination))
            points.append(SweepPoint(
                point_id=point_id(workload, coords),
                workload=workload,
                coords=coords,
                config=build_config(dict(coords)),
            ))
    return points
