"""Declarative sweep specifications.

A spec is a small TOML (or YAML/JSON) document describing a grid over
microarchitectural axes crossed with workloads::

    [sweep]
    name = "table4-width"
    description = "Table IV widths x Table V memory hierarchies"

    [axes]
    width = ["4-way", "8-way", "16-way"]
    memory = ["me1", "me2", "me3", "me4", "meinf"]

    [workloads]
    names = ["ssearch34", "sw_vmx128", "sw_vmx256", "fasta34", "blast"]

    [report]
    metrics = ["ipc", "cycles"]

Axes come in two families:

* **preset axes** name committed configuration columns: ``width``
  (Table IV), ``memory`` (Table V), ``predictor`` (Table VI /
  perfect);
* **parametric axes** sweep one cache knob over the Fig. 5-7 base
  (``dl1_size_kb``, ``dl1_assoc``, ``dl1_latency``, ``l2_mb``), with
  ``"inf"`` meaning an ideal (always-hitting) level.

An axis with a single value pins that knob; omitted axes take the same
defaults the ad-hoc figure drivers use, so a spec grid point resolves
to the *identical* :class:`~repro.uarch.config.ProcessorConfig` — and
therefore the identical cache entry — as the corresponding figure.

Validation happens at parse time through
:mod:`repro.verify.sweeplint`; a bad spec raises
:class:`SweepSpecError` listing every violation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.points import DEFAULT_METRICS
from repro.kernels.registry import WORKLOAD_NAMES
from repro.verify.sweeplint import NUMERIC_AXES, SpecViolation, validate_spec_data

#: Version of the spec semantics folded into the spec digest.
SPEC_SCHEMA_VERSION = 1


class SweepSpecError(ValueError):
    """A spec failed SweepLint validation (or could not be parsed)."""

    def __init__(self, source: str, violations: list[SpecViolation]) -> None:
        self.violations = violations
        detail = "\n".join(f"  {violation}" for violation in violations)
        super().__init__(f"invalid sweep spec {source}:\n{detail}")


@dataclass(frozen=True)
class SweepSpec:
    """One validated, immutable sweep description."""

    name: str
    description: str
    #: axis name -> swept values, in spec order.
    axes: tuple[tuple[str, tuple], ...]
    workloads: tuple[str, ...]
    metrics: tuple[str, ...]
    knee_axes: tuple[str, ...]
    trace_budget: int | None = None
    source: str = "<memory>"

    #: Cached canonical digest (filled lazily).
    _digest: list = field(default_factory=list, repr=False, compare=False)

    def axis_names(self) -> tuple[str, ...]:
        """Swept axis names in spec order."""
        return tuple(name for name, _ in self.axes)

    def axis_values(self, name: str) -> tuple:
        """Values of one axis (KeyError when not swept)."""
        for axis, values in self.axes:
            if axis == name:
                return values
        raise KeyError(name)

    @property
    def point_count(self) -> int:
        """Grid cardinality (workloads x every axis)."""
        count = len(self.workloads)
        for _, values in self.axes:
            count *= len(values)
        return count

    def digest(self) -> str:
        """Canonical content digest identifying this grid.

        Covers the axes, workloads, and trace budget — everything that
        changes *which* simulations the sweep runs — but not the report
        selection, so re-rendering with different metrics reuses the
        same manifest.
        """
        if not self._digest:
            material = json.dumps({
                "schema": SPEC_SCHEMA_VERSION,
                "axes": [[name, list(values)] for name, values in self.axes],
                "workloads": list(self.workloads),
                "trace_budget": self.trace_budget,
            }, sort_keys=True)
            self._digest.append(
                hashlib.blake2b(material.encode(), digest_size=8).hexdigest()
            )
        return self._digest[0]

    def to_dict(self) -> dict:
        """Round-trippable plain mapping (manifest/report embedding)."""
        return {
            "sweep": {
                "name": self.name,
                "description": self.description,
                **(
                    {"trace_budget": self.trace_budget}
                    if self.trace_budget is not None else {}
                ),
            },
            "axes": {name: list(values) for name, values in self.axes},
            "workloads": {"names": list(self.workloads)},
            "report": {
                "metrics": list(self.metrics),
                "knee_axes": list(self.knee_axes),
            },
        }


def parse_spec(data: dict, source: str = "<memory>") -> SweepSpec:
    """Validate a parsed mapping and build the :class:`SweepSpec`."""
    violations = validate_spec_data(data)
    if violations:
        raise SweepSpecError(source, violations)
    sweep = data["sweep"]
    axes = tuple(
        (name, tuple(values)) for name, values in data["axes"].items()
    )
    workloads = tuple(
        data.get("workloads", {}).get("names") or WORKLOAD_NAMES
    )
    report = data.get("report", {})
    metrics = tuple(report.get("metrics") or DEFAULT_METRICS)
    knee_axes = report.get("knee_axes")
    if knee_axes is None:
        # Default: every swept numeric axis with enough points to bend.
        knee_axes = [
            name for name, values in axes
            if name in NUMERIC_AXES and len(values) >= 3
        ]
    return SweepSpec(
        name=sweep["name"],
        description=str(sweep.get("description", "")),
        axes=axes,
        workloads=workloads,
        metrics=metrics,
        knee_axes=tuple(knee_axes),
        trace_budget=sweep.get("trace_budget"),
        source=source,
    )


def load_spec(path: str | Path) -> SweepSpec:
    """Load and validate a spec file (.toml, .yaml/.yml, or .json)."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise SweepSpecError(str(path), [SpecViolation(
            "SW001", "file", f"cannot read spec: {error}"
        )]) from error
    suffix = path.suffix.lower()
    try:
        if suffix == ".toml":
            import tomllib

            data = tomllib.loads(text)
        elif suffix in {".yaml", ".yml"}:
            try:
                import yaml
            except ImportError as error:
                raise SweepSpecError(str(path), [SpecViolation(
                    "SW001", "file",
                    "PyYAML is not installed; use the TOML or JSON form "
                    "of this spec",
                )]) from error
            data = yaml.safe_load(text)
        elif suffix == ".json":
            data = json.loads(text)
        else:
            raise SweepSpecError(str(path), [SpecViolation(
                "SW001", "file",
                f"unknown spec format {suffix!r}; "
                "expected .toml, .yaml/.yml, or .json",
            )])
    except SweepSpecError:
        raise
    except Exception as error:
        raise SweepSpecError(str(path), [SpecViolation(
            "SW001", "file", f"parse error: {error}"
        )]) from error
    return parse_spec(data, source=str(path))
