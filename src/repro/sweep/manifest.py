"""Persistent sweep manifests.

One JSON file per (spec name, grid digest) records every completed
point: its simulate digest (the same content address the runtime cache
stores the full :class:`~repro.uarch.results.SimulationResult` under)
and its extracted per-point metrics
(:func:`repro.analysis.points.point_metrics`).

The manifest is the sweep's resume state *and* its report input:

* **resume** — a point whose recorded digest matches the digest the
  planner computes today is complete and never re-executes; a digest
  mismatch (code change, ``REPRO_SCALE`` change, edited grid) marks
  the point invalidated, and exactly those points re-run;
* **reports** — ``repro sweep report`` renders entirely from the
  manifest, so producing the HTML/JSON artifacts never touches the
  worker pool or the result cache.

Writes are atomic (temporary file + ``os.replace``) and happen after
every executed batch, so an interrupted campaign loses at most the
in-flight batch.  Contents are serialized with sorted keys: a manifest
reached by interrupt-plus-resume is byte-identical to one from an
uninterrupted run.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.sweep.spec import SweepSpec

#: Bump on manifest layout changes (old manifests are then ignored).
MANIFEST_VERSION = 1


def manifest_path(state_dir: str | Path, spec: SweepSpec) -> Path:
    """Where a spec's manifest lives under one state directory."""
    return Path(state_dir) / f"{spec.name}-{spec.digest()}.manifest.json"


@dataclass
class SweepManifest:
    """Completed points of one sweep grid."""

    path: Path
    sweep: str
    spec_digest: str
    #: point_id -> {"digest", "workload", "coords", "metrics"}.
    points: dict[str, dict] = field(default_factory=dict)
    #: Execution engine of the most recent run that executed points
    #: ("lockstep" or "scalar"; "" before anything ran).  Informational:
    #: results are byte-identical across engines, so resume never keys
    #: on it — which is also what keeps a manifest reached through an
    #: engine switch byte-identical to a single-engine run's.
    engine: str = ""

    @classmethod
    def open(cls, state_dir: str | Path, spec: SweepSpec) -> "SweepManifest":
        """Load the manifest for ``spec`` (empty when absent/stale)."""
        path = manifest_path(state_dir, spec)
        manifest = cls(path=path, sweep=spec.name, spec_digest=spec.digest())
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return manifest
        if (
            data.get("version") != MANIFEST_VERSION
            or data.get("spec_digest") != spec.digest()
        ):
            return manifest
        points = data.get("points")
        if isinstance(points, dict):
            manifest.points = points
        engine = data.get("engine")
        if isinstance(engine, str):
            manifest.engine = engine
        return manifest

    def record(
        self,
        point_id: str,
        digest: str,
        workload: str,
        coords: tuple[tuple[str, object], ...],
        metrics: dict,
    ) -> None:
        """Mark one point complete."""
        self.points[point_id] = {
            "digest": digest,
            "workload": workload,
            "coords": [[axis, value] for axis, value in coords],
            "metrics": metrics,
        }

    def completed(self, point_id: str, digest: str) -> bool:
        """True when the point is recorded under the *current* digest."""
        entry = self.points.get(point_id)
        return entry is not None and entry.get("digest") == digest

    def metrics(self, point_id: str) -> dict | None:
        """Stored metrics of one completed point."""
        entry = self.points.get(point_id)
        return entry.get("metrics") if entry else None

    def to_dict(self) -> dict:
        """Serializable form (sorted point ids for byte stability)."""
        return {
            "version": MANIFEST_VERSION,
            "sweep": self.sweep,
            "spec_digest": self.spec_digest,
            "engine": self.engine,
            "points": {
                point_id: self.points[point_id]
                for point_id in sorted(self.points)
            },
        }

    def save(self) -> None:
        """Atomically persist the manifest."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        temporary = self.path.with_name(
            f".{self.path.name}.{os.getpid()}.tmp"
        )
        try:
            temporary.write_text(payload)
            os.replace(temporary, self.path)
        finally:
            temporary.unlink(missing_ok=True)
