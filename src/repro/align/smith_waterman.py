"""Smith-Waterman local alignment (Gotoh affine-gap formulation).

Two entry points matter here:

* :func:`smith_waterman` — the textbook dynamic program with full
  traceback, used as the ground-truth reference in tests and examples.
* :func:`sw_score_swat` — the SWAT-optimized score-only row kernel that
  SSEARCH actually runs (paper listing 2): it keeps one H/E struct array
  over the query and *skips work* whenever both the running score and the
  gap score are non-positive.  Those data-dependent skips are exactly the
  ``if-then-else`` jungle the paper blames for SSEARCH's branch
  mispredictions; the traced SSEARCH kernel mirrors this code path
  instruction for instruction.

Score convention: a gap of length ``k`` costs ``open + extend * k``
(``GapPenalties``); local alignment scores are clamped at zero.
"""

from __future__ import annotations

from repro.align.types import AlignmentResult, GapPenalties, PAPER_GAPS
from repro.bio.matrices import BLOSUM62, ScoringMatrix
from repro.bio.sequence import Sequence, as_sequence

_NEG_INF = -(10**9)


def sw_score(
    query: Sequence | str,
    subject: Sequence | str,
    matrix: ScoringMatrix = BLOSUM62,
    gaps: GapPenalties = PAPER_GAPS,
) -> int:
    """Score-only Smith-Waterman with affine gaps (straightforward rows).

    This is the clean O(m*n) time / O(m) space formulation without the
    SWAT control-flow optimizations; it defines the correct score that
    all other implementations must reproduce.
    """
    q = as_sequence(query).codes
    s = as_sequence(subject).codes
    if not q or not s:
        return 0
    gap_first = gaps.first_residue_cost
    gap_extend = gaps.extend
    rows = matrix.rows

    m = len(q)
    h_row = [0] * (m + 1)
    e_row = [_NEG_INF] * (m + 1)
    best = 0
    for b_code in s:
        score_row = rows[b_code]
        diag = 0
        f = _NEG_INF
        for i in range(1, m + 1):
            e = max(h_row[i] - gap_first, e_row[i] - gap_extend)
            f = max(h_row[i - 1] - gap_first, f - gap_extend)
            h = diag + score_row[q[i - 1]]
            if e > h:
                h = e
            if f > h:
                h = f
            if h < 0:
                h = 0
            diag = h_row[i]
            h_row[i] = h
            e_row[i] = e
            if h > best:
                best = h
    return best


def sw_score_swat(
    query: Sequence | str,
    subject: Sequence | str,
    matrix: ScoringMatrix = BLOSUM62,
    gaps: GapPenalties = PAPER_GAPS,
) -> int:
    """SWAT-style score-only kernel with computation avoidance.

    Mirrors the SSEARCH34 inner loop (paper listing 2): per query
    position it keeps ``H``/``E`` state, and when the incoming score
    ``h`` and gap score ``e`` are both non-positive it takes a short
    path that writes zero and moves on.  On typical (unrelated) database
    sequences most cells take the short path, which is why SSEARCH beats
    a naive implementation — at the price of data-dependent branches.
    """
    q = as_sequence(query).codes
    s = as_sequence(subject).codes
    if not q or not s:
        return 0
    gap_first = gaps.first_residue_cost
    gap_extend = gaps.extend
    rows = matrix.rows

    m = len(q)
    h_state = [0] * m
    e_state = [0] * m
    best = 0
    for b_code in s:
        score_row = rows[b_code]
        h = 0          # H value flowing along the diagonal.
        f = 0          # Running gap-in-subject score.
        for i in range(m):
            h += score_row[q[i]]
            prev_h = h_state[i]
            e = e_state[i]
            if h < 0:
                h = 0
            if f > h:
                h = f
            if e > h:
                h = e
            # Update vertical/horizontal gap scores only when they can
            # still contribute (the computation-avoidance fast path).
            threshold = h - gap_first
            f -= gap_extend
            if threshold > f:
                f = threshold
            e -= gap_extend
            if threshold > e:
                e = threshold
            if e < 0:
                e = 0
            e_state[i] = e
            h_state[i] = h
            if h > best:
                best = h
            h = prev_h
    return best


def smith_waterman(
    query: Sequence | str,
    subject: Sequence | str,
    matrix: ScoringMatrix = BLOSUM62,
    gaps: GapPenalties = PAPER_GAPS,
) -> AlignmentResult:
    """Full Smith-Waterman with traceback.

    Returns the best-scoring local alignment; ties are broken toward the
    smallest end coordinates and then toward diagonal moves, which makes
    the output deterministic.
    """
    query_seq = as_sequence(query, identifier="query")
    subject_seq = as_sequence(subject, identifier="subject")
    q = query_seq.codes
    s = subject_seq.codes
    m, n = len(q), len(s)
    if m == 0 or n == 0:
        return AlignmentResult(0, 0, 0, 0, 0)

    gap_first = gaps.first_residue_cost
    gap_extend = gaps.extend
    rows = matrix.rows

    # Full matrices: H plus traceback moves for H, E, F.
    h_matrix = [[0] * (n + 1) for _ in range(m + 1)]
    e_matrix = [[_NEG_INF] * (n + 1) for _ in range(m + 1)]
    f_matrix = [[_NEG_INF] * (n + 1) for _ in range(m + 1)]

    best = 0
    best_pos = (0, 0)
    for i in range(1, m + 1):
        score_row = rows[q[i - 1]]
        for j in range(1, n + 1):
            e = max(h_matrix[i][j - 1] - gap_first, e_matrix[i][j - 1] - gap_extend)
            f = max(h_matrix[i - 1][j] - gap_first, f_matrix[i - 1][j] - gap_extend)
            diag = h_matrix[i - 1][j - 1] + score_row[s[j - 1]]
            h = max(0, diag, e, f)
            h_matrix[i][j] = h
            e_matrix[i][j] = e
            f_matrix[i][j] = f
            if h > best:
                best = h
                best_pos = (i, j)

    if best == 0:
        return AlignmentResult(0, 0, 0, 0, 0)

    # Traceback from the best cell, preferring diagonal moves.
    aligned_q: list[str] = []
    aligned_s: list[str] = []
    i, j = best_pos
    state = "H"
    while i > 0 and j > 0:
        if state == "H":
            h = h_matrix[i][j]
            if h == 0:
                break
            diag = h_matrix[i - 1][j - 1] + rows[q[i - 1]][s[j - 1]]
            if h == diag:
                aligned_q.append(query_seq.text[i - 1])
                aligned_s.append(subject_seq.text[j - 1])
                i -= 1
                j -= 1
            elif h == e_matrix[i][j]:
                state = "E"
            else:
                state = "F"
        elif state == "E":
            # Gap in the query: consume a subject residue.
            aligned_q.append("-")
            aligned_s.append(subject_seq.text[j - 1])
            came_from_open = (
                e_matrix[i][j] == h_matrix[i][j - 1] - gap_first
            )
            j -= 1
            state = "H" if came_from_open else "E"
        else:
            # Gap in the subject: consume a query residue.
            aligned_q.append(query_seq.text[i - 1])
            aligned_s.append("-")
            came_from_open = (
                f_matrix[i][j] == h_matrix[i - 1][j] - gap_first
            )
            i -= 1
            state = "H" if came_from_open else "F"

    aligned_q.reverse()
    aligned_s.reverse()
    return AlignmentResult(
        score=best,
        query_start=i,
        query_end=best_pos[0],
        subject_start=j,
        subject_end=best_pos[1],
        aligned_query="".join(aligned_q),
        aligned_subject="".join(aligned_s),
    )
