"""Hirschberg's linear-space global alignment.

The quadratic-space traceback of :mod:`repro.align.needleman_wunsch`
is fine for the scaled inputs in this repository, but genome-scale
pairs need Hirschberg's divide-and-conquer: compute forward score rows
for the left half and backward score rows for the right half, split
the second sequence where their sum is maximal, and recurse.  Memory
drops to O(min(m, n)) while time stays O(m*n).

This implementation uses the classic *linear* gap model (Needleman &
Wunsch 1970's original formulation: every gap residue costs the same),
which is what Hirschberg's split argument applies to directly.  Scores
and alignments are validated against a quadratic-space reference in
the test suite.
"""

from __future__ import annotations

from repro.align.types import AlignmentResult
from repro.bio.matrices import BLOSUM62, ScoringMatrix
from repro.bio.sequence import Sequence, as_sequence

#: Default per-residue gap cost for the linear model.
DEFAULT_GAP = 8


def _score_last_row(
    a: list[int], b: list[int], rows, gap: int
) -> list[int]:
    """Last row of the linear-gap global DP of ``a`` vs ``b``."""
    previous = [-gap * j for j in range(len(b) + 1)]
    for i in range(1, len(a) + 1):
        current = [-gap * i] + [0] * len(b)
        score_row = rows[a[i - 1]]
        for j in range(1, len(b) + 1):
            current[j] = max(
                previous[j - 1] + score_row[b[j - 1]],
                previous[j] - gap,
                current[j - 1] - gap,
            )
        previous = current
    return previous


def nw_linear_score(
    query: Sequence | str,
    subject: Sequence | str,
    matrix: ScoringMatrix = BLOSUM62,
    gap: int = DEFAULT_GAP,
) -> int:
    """Global alignment score under the linear gap model."""
    a = list(as_sequence(query).codes)
    b = list(as_sequence(subject).codes)
    return _score_last_row(a, b, matrix.rows, gap)[-1]


def _align(a_text: str, a: list[int], b_text: str, b: list[int],
           rows, gap: int) -> tuple[str, str]:
    """Recursive Hirschberg: returns the aligned strings."""
    if not a:
        return "-" * len(b), b_text
    if not b:
        return a_text, "-" * len(a)
    if len(a) == 1:
        # Either align the single residue to its best partner in b, or
        # (when even the best substitution is worse than two gaps)
        # leave it unmatched.
        best_j = max(range(len(b)), key=lambda j: rows[a[0]][b[j]])
        if rows[a[0]][b[best_j]] >= -2 * gap:
            aligned_a = "-" * best_j + a_text + "-" * (len(b) - best_j - 1)
            return aligned_a, b_text
        return a_text + "-" * len(b), "-" + b_text
    mid = len(a) // 2
    forward = _score_last_row(a[:mid], b, rows, gap)
    backward = _score_last_row(a[mid:][::-1], b[::-1], rows, gap)
    split = max(
        range(len(b) + 1),
        key=lambda j: forward[j] + backward[len(b) - j],
    )
    left_a, left_b = _align(
        a_text[:mid], a[:mid], b_text[:split], b[:split], rows, gap
    )
    right_a, right_b = _align(
        a_text[mid:], a[mid:], b_text[split:], b[split:], rows, gap
    )
    return left_a + right_a, left_b + right_b


def hirschberg(
    query: Sequence | str,
    subject: Sequence | str,
    matrix: ScoringMatrix = BLOSUM62,
    gap: int = DEFAULT_GAP,
) -> AlignmentResult:
    """Linear-space global alignment (linear gap model)."""
    query_seq = as_sequence(query, identifier="query")
    subject_seq = as_sequence(subject, identifier="subject")
    aligned_q, aligned_s = _align(
        query_seq.text,
        list(query_seq.codes),
        subject_seq.text,
        list(subject_seq.codes),
        matrix.rows,
        gap,
    )
    score = _alignment_score(aligned_q, aligned_s, matrix, gap)
    return AlignmentResult(
        score=score,
        query_start=0,
        query_end=len(query_seq),
        subject_start=0,
        subject_end=len(subject_seq),
        aligned_query=aligned_q,
        aligned_subject=aligned_s,
    )


def _alignment_score(
    aligned_q: str, aligned_s: str, matrix: ScoringMatrix, gap: int
) -> int:
    score = 0
    for qa, sb in zip(aligned_q, aligned_s):
        if qa == "-" or sb == "-":
            score -= gap
        else:
            score += matrix.score_symbols(qa, sb)
    return score
