"""Shared alignment value types.

These types are the vocabulary of the whole alignment layer: gap
penalties, pairwise alignment results with their aligned strings, and
database-search hits as reported by the SSEARCH/FASTA/BLAST drivers.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class GapPenalties:
    """Affine gap model: ``cost(k) = open + extend * k`` for a gap of k.

    The paper runs every search with ``-f 11 -g 1`` FASTA-style penalties
    (gap open 10 plus first extension 1 = 11 for the first gapped
    residue), equivalently a gap-open penalty of 10 and extension 1.
    """

    open: int = 10
    extend: int = 1

    def __post_init__(self) -> None:
        if self.open < 0 or self.extend < 0:
            raise ValueError("gap penalties must be non-negative")

    @property
    def first_residue_cost(self) -> int:
        """Cost of a gap of length one (open + extend)."""
        return self.open + self.extend

    def cost(self, length: int) -> int:
        """Total cost of a gap of ``length`` residues."""
        if length < 0:
            raise ValueError("gap length must be non-negative")
        if length == 0:
            return 0
        return self.open + self.extend * length


#: The penalties used for all experiments in the paper.
PAPER_GAPS = GapPenalties(open=10, extend=1)


@dataclass(frozen=True)
class AlignmentResult:
    """A scored local (or global) pairwise alignment.

    ``aligned_query``/``aligned_subject`` contain residue letters and
    ``-`` for gaps; ``midline`` marks identities with ``|`` in the style
    of the paper's introduction example.
    """

    score: int
    query_start: int
    query_end: int
    subject_start: int
    subject_end: int
    aligned_query: str = ""
    aligned_subject: str = ""

    def __post_init__(self) -> None:
        if len(self.aligned_query) != len(self.aligned_subject):
            raise ValueError("aligned strings must have equal length")

    @property
    def length(self) -> int:
        """Number of alignment columns (residues plus gaps)."""
        return len(self.aligned_query)

    @property
    def identities(self) -> int:
        """Number of identical aligned residue pairs."""
        return sum(
            1
            for a, b in zip(self.aligned_query, self.aligned_subject)
            if a == b and a != "-"
        )

    @property
    def identity(self) -> float:
        """Fraction of identical columns (0.0 for empty alignments)."""
        if self.length == 0:
            return 0.0
        return self.identities / self.length

    @property
    def gaps(self) -> int:
        """Total gap columns in either sequence."""
        return self.aligned_query.count("-") + self.aligned_subject.count("-")

    def midline(self) -> str:
        """Identity midline (``|`` on matching columns)."""
        return "".join(
            "|" if a == b and a != "-" else " "
            for a, b in zip(self.aligned_query, self.aligned_subject)
        )

    def pretty(self, width: int = 60) -> str:
        """Render the alignment in blocks, like the paper's intro figure."""
        lines: list[str] = [f"score={self.score} identity={self.identity:.1%}"]
        midline = self.midline()
        for start in range(0, self.length, width):
            stop = start + width
            lines.append(self.aligned_query[start:stop])
            lines.append(midline[start:stop])
            lines.append(self.aligned_subject[start:stop])
        return "\n".join(lines)


@dataclass(frozen=True, order=True)
class SearchHit:
    """One database hit from a search driver.

    Ordering is by score so drivers can use standard sorting; the
    comparison fields are arranged score-first on purpose.
    """

    score: int
    subject_id: str = field(compare=False)
    subject_index: int = field(compare=False)
    subject_length: int = field(compare=False)
    evalue: float = field(default=float("inf"), compare=False)
    bit_score: float = field(default=0.0, compare=False)


@dataclass(frozen=True)
class ShardScan:
    """Raw per-subject scores from scanning one database shard.

    ``raw`` holds one ``(score, subject_length, subject_index,
    subject_id)`` tuple per reported subject, with *global* database
    indices, in database order.  Engines split their searches into a
    raw scan plus a finalize step so shards scanned by different
    workers merge back into the exact unsharded ranking; the search
    statistics (E-values, z-scores) that depend on whole-database
    aggregates are computed at finalize time from the summed
    ``sequences``/``residues``.
    """

    raw: tuple[tuple[int, int, int, str], ...]
    sequences: int
    residues: int

    def to_dict(self) -> dict:
        """JSON-serializable form (for cache entries and the wire)."""
        return {
            "raw": [list(entry) for entry in self.raw],
            "sequences": self.sequences,
            "residues": self.residues,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardScan":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            raw=tuple(
                (int(score), int(length), int(index), str(identifier))
                for score, length, index, identifier in data["raw"]
            ),
            sequences=int(data["sequences"]),
            residues=int(data["residues"]),
        )


@dataclass(frozen=True)
class SearchResult:
    """The outcome of searching one query against a database."""

    query_id: str
    database_name: str
    hits: tuple[SearchHit, ...]
    sequences_searched: int
    residues_searched: int

    def best(self) -> SearchHit:
        """Highest-scoring hit."""
        if not self.hits:
            raise ValueError("search produced no hits")
        return self.hits[0]

    def top(self, count: int) -> tuple[SearchHit, ...]:
        """The ``count`` best hits (the driver's ``-b`` reporting limit)."""
        return self.hits[:count]

    def score_histogram(self, bin_width: int = 4) -> dict[int, int]:
        """Score histogram as printed by SSEARCH's ``-H`` option."""
        if bin_width < 1:
            raise ValueError("bin_width must be positive")
        histogram: dict[int, int] = {}
        for hit in self.hits:
            bin_start = (hit.score // bin_width) * bin_width
            histogram[bin_start] = histogram.get(bin_start, 0) + 1
        return dict(sorted(histogram.items()))
