"""Altivec-style SIMD emulation and vectorized Smith-Waterman."""

from repro.align.simd.sw_vmx import sw_score_vmx, sw_score_vmx128, sw_score_vmx256
from repro.align.simd.vector import (
    INT16_MAX,
    INT16_MIN,
    VMX128,
    VMX256,
    VectorConfig,
    VectorUnit,
)

__all__ = [
    "sw_score_vmx",
    "sw_score_vmx128",
    "sw_score_vmx256",
    "INT16_MAX",
    "INT16_MIN",
    "VMX128",
    "VMX256",
    "VectorConfig",
    "VectorUnit",
]
