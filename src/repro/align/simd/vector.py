"""Altivec-style SIMD vector emulation.

The paper's SW_vmx128 workload uses the PowerPC Altivec extension
(128-bit registers), and its novel SW_vmx256 variant widens the same
instruction set to 256-bit registers.  This module emulates the subset
of Altivec semantics the Smith-Waterman kernels need, on top of numpy:

* fixed-width registers holding ``width_bits // 16`` signed 16-bit lanes
  (the element size the FASTA Altivec code uses for scores);
* saturating add/subtract (``vec_adds``/``vec_subs``), element max
  (``vec_max``), splat, and the lane-shift-with-carry idiom built from
  ``vec_sld``/``vec_perm`` that anti-diagonal SW kernels use to move
  values between neighbouring rows.

All operations return fresh arrays; registers are plain ``numpy`` int16
arrays so tests can compare them directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Saturation bounds of a signed 16-bit lane.
INT16_MIN = -32768
INT16_MAX = 32767


@dataclass(frozen=True)
class VectorConfig:
    """Width of the emulated vector unit.

    The paper studies 128-bit (existing Altivec) and 256-bit (futuristic)
    registers; with 16-bit score lanes those give 8 and 16 lanes.
    """

    width_bits: int = 128
    element_bits: int = 16

    def __post_init__(self) -> None:
        if self.element_bits != 16:
            raise ValueError("only 16-bit lanes are supported")
        if self.width_bits % self.element_bits != 0:
            raise ValueError("register width must be a multiple of lane width")
        if self.lanes < 2:
            raise ValueError("vector registers need at least 2 lanes")

    @property
    def lanes(self) -> int:
        """Number of 16-bit elements per register."""
        return self.width_bits // self.element_bits


VMX128 = VectorConfig(width_bits=128)
VMX256 = VectorConfig(width_bits=256)


class VectorUnit:
    """Functional model of the Altivec operations used by SW kernels."""

    def __init__(self, config: VectorConfig = VMX128) -> None:
        self.config = config
        self.lanes = config.lanes

    def _check(self, *registers: np.ndarray) -> None:
        for register in registers:
            if register.shape != (self.lanes,):
                raise ValueError(
                    f"register has {register.shape}, expected ({self.lanes},)"
                )

    def splat(self, value: int) -> np.ndarray:
        """vec_splat: broadcast a scalar to all lanes (saturated)."""
        clamped = max(INT16_MIN, min(INT16_MAX, value))
        return np.full(self.lanes, clamped, dtype=np.int16)

    def zero(self) -> np.ndarray:
        """All-zero register."""
        return np.zeros(self.lanes, dtype=np.int16)

    def load(self, values) -> np.ndarray:
        """Load lane values from any length-``lanes`` int sequence."""
        array = np.asarray(values, dtype=np.int64)
        if array.shape != (self.lanes,):
            raise ValueError(f"expected {self.lanes} lane values")
        return np.clip(array, INT16_MIN, INT16_MAX).astype(np.int16)

    def adds(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """vec_adds: lane-wise saturating signed add."""
        self._check(a, b)
        wide = a.astype(np.int32) + b.astype(np.int32)
        return np.clip(wide, INT16_MIN, INT16_MAX).astype(np.int16)

    def subs(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """vec_subs: lane-wise saturating signed subtract."""
        self._check(a, b)
        wide = a.astype(np.int32) - b.astype(np.int32)
        return np.clip(wide, INT16_MIN, INT16_MAX).astype(np.int16)

    def vmax(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """vec_max: lane-wise signed maximum."""
        self._check(a, b)
        return np.maximum(a, b)

    def shift_down(self, a: np.ndarray, carry_in: int) -> np.ndarray:
        """Move every lane to the next-higher index, inserting ``carry_in``.

        This is the ``vec_sld``/``vec_perm`` idiom anti-diagonal kernels
        use to hand row ``i``'s value to row ``i+1``; lane 0 receives the
        block-boundary carry.  The value previously in the last lane
        falls out (the caller saves it first via :meth:`extract`).
        """
        self._check(a)
        shifted = np.empty_like(a)
        shifted[1:] = a[:-1]
        shifted[0] = max(INT16_MIN, min(INT16_MAX, carry_in))
        return shifted

    def extract(self, a: np.ndarray, lane: int) -> int:
        """Read one lane as a Python int (vec_extract / store + load)."""
        self._check(a)
        if not 0 <= lane < self.lanes:
            raise ValueError(f"lane {lane} out of range")
        return int(a[lane])

    def horizontal_max(self, a: np.ndarray) -> int:
        """Maximum across lanes (reduction done with log2(lanes) vec_max)."""
        self._check(a)
        return int(a.max())

    def gather_scores(self, matrix_rows, query_codes, subject_codes) -> np.ndarray:
        """Build the substitution-score vector for one anti-diagonal.

        Lane ``k`` receives ``matrix[query_codes[k]][subject_codes[k]]``;
        out-of-range lanes (marked with code ``-1``) get ``INT16_MIN`` so
        they never win a max.  The hardware equivalent is a pair of
        vec_perm lookups into preloaded matrix columns.
        """
        out = np.full(self.lanes, INT16_MIN, dtype=np.int16)
        for k in range(self.lanes):
            q_code = query_codes[k]
            s_code = subject_codes[k]
            if q_code >= 0 and s_code >= 0:
                out[k] = matrix_rows[q_code][s_code]
        return out
