"""Vectorized Smith-Waterman (Wozniak anti-diagonal scheme) on emulated
Altivec registers.

The paper's SW_vmx128/SW_vmx256 workloads implement "a variant of the
approach presented in [31]" (Wozniak 1997): the DP matrix is processed
in blocks of ``lanes`` query rows, and within a block the wavefront
moves along anti-diagonals, where all cells are independent and fit one
vector register (paper listing 3's ``i += 8`` / ``j += 8`` structure).

Per anti-diagonal step the kernel does a fixed sequence of vector
ops — substitution-score gather (vec_perm territory), saturating adds
and maxes, and lane shifts to pass values between neighbouring rows —
with *no data-dependent control flow*: the loop trip counts depend only
on the sequence lengths.  That regularity is exactly why the paper
finds ~2% branches and near-perfect prediction for these codes, while
their long vector dependency chains (rg_vi / rg_vper traumas) become
the new bottleneck.

Scores are identical to the scalar kernels; the test suite enforces it.
"""

from __future__ import annotations

from repro.align.simd.vector import INT16_MIN, VMX128, VMX256, VectorConfig, VectorUnit
from repro.align.types import GapPenalties, PAPER_GAPS
from repro.bio.matrices import BLOSUM62, ScoringMatrix
from repro.bio.sequence import Sequence, as_sequence


def sw_score_vmx(
    query: Sequence | str,
    subject: Sequence | str,
    matrix: ScoringMatrix = BLOSUM62,
    gaps: GapPenalties = PAPER_GAPS,
    config: VectorConfig = VMX128,
) -> int:
    """Score-only vectorized Smith-Waterman.

    Equivalent to :func:`repro.align.smith_waterman.sw_score` but
    computed ``config.lanes`` cells at a time along anti-diagonals.
    """
    q = as_sequence(query).codes
    s = as_sequence(subject).codes
    if not q or not s:
        return 0

    unit = VectorUnit(config)
    lanes = unit.lanes
    m, n = len(q), len(s)
    gap_first = gaps.first_residue_cost
    gap_extend = gaps.extend
    rows = matrix.rows

    gf_vec = unit.splat(gap_first)
    ge_vec = unit.splat(gap_extend)
    zero_vec = unit.zero()
    sentinel = INT16_MIN

    # Block-boundary state: H and F of the row above the current block,
    # indexed by column (0..n).  Row 0 is the all-zero DP boundary.
    h_boundary = [0] * (n + 1)
    f_boundary = [sentinel] * (n + 1)

    best = 0
    for r0 in range(0, m, lanes):
        block_codes = [q[r0 + k] if r0 + k < m else -1 for k in range(lanes)]
        last_lane = min(lanes, m - r0) - 1

        new_h_boundary = [0] * (n + 1)
        new_f_boundary = [sentinel] * (n + 1)

        v_h_prev = zero_vec.copy()      # diagonal t-1
        v_h_prev2 = zero_vec.copy()     # diagonal t-2
        v_e_prev = unit.splat(sentinel)
        v_f_prev = unit.splat(sentinel)

        for t in range(1, n + lanes):
            # Column index per lane: lane k sits on column t - k.
            subject_codes = [
                s[t - k - 1] if 1 <= t - k <= n else -1 for k in range(lanes)
            ]

            # E: gap along the subject, element-wise from diagonal t-1.
            v_e = unit.vmax(
                unit.subs(v_h_prev, gf_vec), unit.subs(v_e_prev, ge_vec)
            )
            # F: gap along the query, from the row above (lane shift).
            carry_h = h_boundary[t] if t <= n else 0
            carry_f = f_boundary[t] if t <= n else sentinel
            v_f = unit.vmax(
                unit.subs(unit.shift_down(v_h_prev, carry_h), gf_vec),
                unit.subs(unit.shift_down(v_f_prev, carry_f), ge_vec),
            )
            # Diagonal term from t-2, shifted, plus substitution scores.
            carry_diag = h_boundary[t - 1] if t - 1 <= n else 0
            v_scores = unit.gather_scores(rows, block_codes, subject_codes)
            v_diag = unit.adds(unit.shift_down(v_h_prev2, carry_diag), v_scores)

            v_h = unit.vmax(unit.vmax(v_diag, v_e), unit.vmax(v_f, zero_vec))

            # Mask lanes whose column is outside the matrix so they feed
            # correct boundary values into later diagonals.
            for k in range(lanes):
                if subject_codes[k] < 0:
                    v_h[k] = 0
                    v_e[k] = sentinel
                    v_f[k] = sentinel

            lane_best = unit.horizontal_max(v_h)
            if lane_best > best:
                best = lane_best

            # The last valid row of the block feeds the next block.
            j_last = t - last_lane
            if 1 <= j_last <= n:
                new_h_boundary[j_last] = unit.extract(v_h, last_lane)
                new_f_boundary[j_last] = unit.extract(v_f, last_lane)

            v_h_prev2 = v_h_prev
            v_h_prev = v_h
            v_e_prev = v_e
            v_f_prev = v_f

        h_boundary = new_h_boundary
        f_boundary = new_f_boundary

    return best


def sw_score_vmx128(
    query: Sequence | str,
    subject: Sequence | str,
    matrix: ScoringMatrix = BLOSUM62,
    gaps: GapPenalties = PAPER_GAPS,
) -> int:
    """128-bit (8-lane) vectorized Smith-Waterman score."""
    return sw_score_vmx(query, subject, matrix=matrix, gaps=gaps, config=VMX128)


def sw_score_vmx256(
    query: Sequence | str,
    subject: Sequence | str,
    matrix: ScoringMatrix = BLOSUM62,
    gaps: GapPenalties = PAPER_GAPS,
) -> int:
    """256-bit (16-lane) futuristic vectorized Smith-Waterman score."""
    return sw_score_vmx(query, subject, matrix=matrix, gaps=gaps, config=VMX256)
