"""Search-result output formats.

Render :class:`~repro.align.types.SearchResult` objects the way users
of the real tools expect them: BLAST's tabular output (``-outfmt 6``
style columns) and a human-readable hit list with optional alignments.
"""

from __future__ import annotations

from typing import Iterable

from repro.align.smith_waterman import smith_waterman
from repro.align.types import SearchHit, SearchResult
from repro.bio.database import SequenceDatabase
from repro.bio.sequence import Sequence

#: Column order of the tabular format (BLAST outfmt-6 inspired).
TABULAR_COLUMNS = (
    "query", "subject", "score", "bits_or_z", "evalue", "subject_length"
)


def format_tabular(result: SearchResult, top: int | None = None) -> str:
    """Tab-separated hit rows (one line per hit, header included)."""
    hits: Iterable[SearchHit] = result.hits if top is None else result.top(top)
    lines = ["#" + "\t".join(TABULAR_COLUMNS)]
    for hit in hits:
        evalue = "" if hit.evalue == float("inf") else f"{hit.evalue:.3g}"
        lines.append(
            "\t".join(
                (
                    result.query_id,
                    hit.subject_id,
                    str(hit.score),
                    f"{hit.bit_score:.1f}",
                    evalue,
                    str(hit.subject_length),
                )
            )
        )
    return "\n".join(lines)


def format_hit_list(result: SearchResult, top: int = 10) -> str:
    """Aligned human-readable hit table."""
    lines = [
        f"Query: {result.query_id}   Database: {result.database_name} "
        f"({result.sequences_searched} sequences / "
        f"{result.residues_searched} residues)",
        "",
        f"{'rank':>4}  {'subject':<20} {'len':>6} {'score':>7} "
        f"{'bits/z':>8} {'E':>10}",
    ]
    for rank, hit in enumerate(result.top(top), start=1):
        evalue = "-" if hit.evalue == float("inf") else f"{hit.evalue:.2g}"
        lines.append(
            f"{rank:>4}  {hit.subject_id:<20} {hit.subject_length:>6} "
            f"{hit.score:>7} {hit.bit_score:>8.1f} {evalue:>10}"
        )
    return "\n".join(lines)


def format_alignments(
    query: Sequence,
    database: SequenceDatabase,
    result: SearchResult,
    top: int = 3,
    width: int = 60,
) -> str:
    """Recompute and render the top hits' full local alignments.

    The search drivers report scores only (the paper runs use ``-d 0``/
    ``-b 0``); this helper produces the alignments on demand for the
    hits the user actually wants to see.
    """
    blocks = []
    for hit in result.top(top):
        subject = database.get(hit.subject_id)
        alignment = smith_waterman(query, subject)
        header = (
            f">{hit.subject_id} len={hit.subject_length} "
            f"s-w score={hit.score}"
        )
        blocks.append(header + "\n" + alignment.pretty(width))
    return "\n\n".join(blocks)
