"""SSEARCH-style database search driver.

Reproduces the behaviour of the SSEARCH program from the FASTA toolset
as configured in the paper (Table I: ``-q -H -p -b 500 -d 0 -s BL62
-f 11 -g 1``): protein query against a protein database, rigorous
Smith-Waterman score for every database sequence, report the best 500
scores with a score histogram and no alignments (``-d 0``).

The same driver serves all three SW implementations the paper studies —
the scalar SWAT kernel and the two vectorized kernels — via the
``scorer`` parameter, so search results are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from repro.align.smith_waterman import sw_score_swat
from repro.align.types import (
    GapPenalties,
    PAPER_GAPS,
    SearchHit,
    SearchResult,
    ShardScan,
)
from repro.bio.database import SequenceDatabase
from repro.bio.matrices import BLOSUM62, ScoringMatrix
from repro.bio.sequence import Sequence, as_sequence

#: Signature shared by all score-only SW kernels.
Scorer = Callable[..., int]


@dataclass(frozen=True)
class SsearchOptions:
    """Driver options (the subset of SSEARCH flags the paper uses)."""

    best_count: int = 500           # -b 500
    matrix: ScoringMatrix = BLOSUM62  # -s BL62
    gaps: GapPenalties = PAPER_GAPS   # -f 11 -g 1
    show_histogram: bool = True       # -H


class SupportsScore(Protocol):
    """Anything that can produce a score for query vs subject codes."""

    def __call__(self, query, subject, matrix, gaps) -> int: ...


class SsearchEngine:
    """A query-bound SSEARCH driver with the shard-scan interface.

    Mirrors ``BlastEngine``/``FastaEngine`` so the batch search layer
    (:mod:`repro.align.batch`) can treat all three applications
    uniformly: ``scan_raw`` over any shard, ``finalize`` to merge.
    """

    def __init__(
        self,
        query: Sequence | str,
        options: SsearchOptions = SsearchOptions(),
        scorer: Scorer = sw_score_swat,
    ) -> None:
        self.query = as_sequence(query, identifier="query")
        self.options = options
        self.scorer = scorer

    def scan_raw(
        self, database: SequenceDatabase, offset: int = 0
    ) -> ShardScan:
        """Raw shard scan: rigorous SW scores for every subject."""
        raw: list[tuple[int, int, int, str]] = []
        residues = 0
        for local, subject in enumerate(database):
            residues += len(subject)
            score = self.scorer(
                self.query,
                subject,
                matrix=self.options.matrix,
                gaps=self.options.gaps,
            )
            raw.append(
                (score, len(subject), offset + local, subject.identifier)
            )
        return ShardScan(
            raw=tuple(raw), sequences=len(database), residues=residues
        )

    def finalize(
        self, scans: list[ShardScan], database_name: str
    ) -> SearchResult:
        """Merge raw shard scans into the ranked SSEARCH result."""
        hits = [
            SearchHit(
                score=score,
                subject_id=identifier,
                subject_index=index,
                subject_length=length,
            )
            for scan in scans
            for score, length, index, identifier in scan.raw
        ]
        hits.sort(key=lambda hit: (-hit.score, hit.subject_index))
        return SearchResult(
            query_id=self.query.identifier,
            database_name=database_name,
            hits=tuple(hits[: self.options.best_count]),
            sequences_searched=sum(scan.sequences for scan in scans),
            residues_searched=sum(scan.residues for scan in scans),
        )

    def search(self, database: SequenceDatabase) -> SearchResult:
        """Search the whole database (scan + finalize in one step)."""
        return self.finalize([self.scan_raw(database)], database.name)


def search(
    query: Sequence | str,
    database: SequenceDatabase,
    options: SsearchOptions = SsearchOptions(),
    scorer: Scorer = sw_score_swat,
) -> SearchResult:
    """Search ``query`` against every sequence of ``database``.

    Returns hits for all database sequences, sorted by descending score
    then database order, truncated to ``options.best_count`` (the
    driver's ``-b`` limit).
    """
    return SsearchEngine(query, options, scorer).search(database)


def format_report(result: SearchResult, options: SsearchOptions = SsearchOptions(),
                  top: int = 20) -> str:
    """Render a text report in the spirit of SSEARCH's output."""
    lines = [
        f"query: {result.query_id}  database: {result.database_name} "
        f"({result.sequences_searched} sequences, "
        f"{result.residues_searched} residues)",
    ]
    if options.show_histogram:
        lines.append("score histogram (bin: count)")
        for bin_start, count in result.score_histogram().items():
            lines.append(f"  {bin_start:>5}: {'*' * min(count, 60)} {count}")
    lines.append(f"best {min(top, len(result.hits))} scores:")
    for hit in result.top(top):
        lines.append(
            f"  {hit.subject_id:<16} len={hit.subject_length:<5} s-w={hit.score}"
        )
    return "\n".join(lines)
