"""FASTA search engine.

Implements the classic three-stage FASTA pipeline (Pearson & Lipman
1988; Pearson 1991) the paper benchmarks as ``fasta34``:

1. k-tuple diagonal scan -> scored initial regions; best is ``init1``.
2. region chaining across diagonals -> ``initn``.
3. banded Smith-Waterman around the best region's diagonal -> ``opt``
   (only for sequences whose ``initn`` passes the optimization
   threshold — the accuracy/speed trade-off the paper describes).

The reported score for ranking is ``opt`` when computed, else ``initn``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.banded import banded_sw_score
from repro.align.fasta.chaining import DEFAULT_JOIN_PENALTY, chain_regions
from repro.align.fasta.ktup import (
    DEFAULT_KTUP,
    KtupleIndex,
    find_initial_regions,
    rescore_region,
)
from repro.align.types import (
    GapPenalties,
    PAPER_GAPS,
    SearchHit,
    SearchResult,
    ShardScan,
)
from repro.bio.database import SequenceDatabase
from repro.bio.matrices import BLOSUM62, ScoringMatrix
from repro.bio.sequence import Sequence, as_sequence

#: Band half-width used by the opt stage for ktup=2 protein searches.
DEFAULT_OPT_BAND = 16
#: initn score required before the opt stage runs.
DEFAULT_OPT_THRESHOLD = 24


@dataclass(frozen=True)
class FastaOptions:
    """FASTA driver options (paper Table I defaults)."""

    ktup: int = DEFAULT_KTUP
    best_regions: int = 10
    join_penalty: int = DEFAULT_JOIN_PENALTY
    opt_band: int = DEFAULT_OPT_BAND
    opt_threshold: int = DEFAULT_OPT_THRESHOLD
    matrix: ScoringMatrix = BLOSUM62
    gaps: GapPenalties = PAPER_GAPS
    best_count: int = 500


@dataclass(frozen=True)
class FastaScores:
    """The three FASTA stage scores for one subject."""

    init1: int
    initn: int
    opt: int

    @property
    def reported(self) -> int:
        """Score used for ranking (opt when the opt stage ran)."""
        return self.opt if self.opt > 0 else self.initn


class FastaEngine:
    """A query-compiled FASTA searcher."""

    def __init__(
        self, query: Sequence | str, options: FastaOptions = FastaOptions()
    ) -> None:
        self.query = as_sequence(query, identifier="query")
        self.options = options
        self.index = KtupleIndex(self.query.codes, ktup=options.ktup)

    def score_subject(self, subject: Sequence) -> FastaScores:
        """Run the three FASTA stages on one subject sequence."""
        options = self.options
        raw_regions = find_initial_regions(
            self.index, subject.codes, best_count=options.best_regions
        )
        rescored = [
            rescore_region(region, self.query.codes, subject.codes, options.matrix)
            for region in raw_regions
        ]
        rescored = [region for region in rescored if region.score > 0]
        init1 = max((region.score for region in rescored), default=0)
        initn = chain_regions(rescored, join_penalty=options.join_penalty)

        opt = 0
        if initn >= options.opt_threshold and rescored:
            best_region = max(rescored, key=lambda region: region.score)
            opt = banded_sw_score(
                self.query,
                subject,
                center=best_region.diagonal,
                width=options.opt_band,
                matrix=options.matrix,
                gaps=options.gaps,
            )
        return FastaScores(init1=init1, initn=initn, opt=opt)

    def scan_raw(
        self, database: SequenceDatabase, offset: int = 0
    ) -> ShardScan:
        """Raw shard scan: reported FASTA scores with global indices."""
        raw: list[tuple[int, int, int, str]] = []
        residues = 0
        for local, subject in enumerate(database):
            residues += len(subject)
            scores = self.score_subject(subject)
            if scores.reported <= 0:
                continue
            raw.append(
                (
                    scores.reported,
                    len(subject),
                    offset + local,
                    subject.identifier,
                )
            )
        return ShardScan(
            raw=tuple(raw), sequences=len(database), residues=residues
        )

    def finalize(
        self, scans: list[ShardScan], database_name: str
    ) -> SearchResult:
        """Merge raw shard scans into the ranked FASTA result.

        The score-vs-length regression behind the z-score/expectation
        annotations is fitted over the hits of *all* shards (>= 3
        scoring subjects, as in the unsharded scan), so a sharded scan
        finalizes to exactly the unsharded search result.
        """
        from repro.align.fasta.stats import (
            expectation,
            fit_length_regression,
        )

        raw = [entry for scan in scans for entry in scan.raw]
        sequences = sum(scan.sequences for scan in scans)
        residues = sum(scan.residues for scan in scans)

        regression = None
        if len(raw) >= 3:
            regression = fit_length_regression(
                [score for score, _, _, _ in raw],
                [length for _, length, _, _ in raw],
            )

        hits: list[SearchHit] = []
        for score, length, index, identifier in raw:
            zscore = 0.0
            evalue = float("inf")
            if regression is not None:
                zscore = regression.zscore(score, length)
                evalue = expectation(zscore, sequences)
            hits.append(
                SearchHit(
                    score=score,
                    subject_id=identifier,
                    subject_index=index,
                    subject_length=length,
                    evalue=evalue,
                    bit_score=zscore,
                )
            )
        hits.sort(key=lambda hit: (-hit.score, hit.subject_index))
        return SearchResult(
            query_id=self.query.identifier,
            database_name=database_name,
            hits=tuple(hits[: self.options.best_count]),
            sequences_searched=sequences,
            residues_searched=residues,
        )

    def search(self, database: SequenceDatabase) -> SearchResult:
        """Search the database and rank by the reported FASTA score.

        When the database is large enough to fit the score-vs-length
        baseline (>= 3 scoring subjects), hits are annotated with
        FASTA-style z-scores (``bit_score``) and expectations
        (``evalue``) from :mod:`repro.align.fasta.stats`.
        """
        return self.finalize([self.scan_raw(database)], database.name)


def fasta_search(
    query: Sequence | str,
    database: SequenceDatabase,
    options: FastaOptions = FastaOptions(),
) -> SearchResult:
    """One-shot FASTA search convenience wrapper."""
    return FastaEngine(query, options).search(database)
