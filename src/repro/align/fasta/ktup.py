"""FASTA stage 1: k-tuple lookup and diagonal region finding.

FASTA prescreens each database sequence by finding runs of identical
k-tuples (ktup=2 for proteins) shared with the query.  Hits falling on
the same diagonal are chained into *initial regions* with a
Kadane-style scan (identities earn a bonus, the distance between
consecutive hits costs a penalty); the best regions are then rescored
with the substitution matrix over their actual residues.  The best
rescored region score is FASTA's ``init1``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bio.alphabet import STANDARD_AMINO_ACIDS
from repro.bio.matrices import ScoringMatrix

#: Default protein k-tuple size.
DEFAULT_KTUP = 2
#: Score contribution of one k-tuple identity during diagonal scanning.
HIT_BONUS_PER_RESIDUE = 4
#: Penalty per residue of distance between consecutive hits on a diagonal.
DISTANCE_PENALTY = 1


@dataclass(frozen=True)
class DiagonalRegion:
    """A scored ungapped region on one diagonal.

    Offsets are 0-based and inclusive of ``start``/exclusive of ``end``
    along the *subject*; the query window follows from the diagonal.
    """

    diagonal: int
    subject_start: int
    subject_end: int
    score: int

    @property
    def query_start(self) -> int:
        """Query offset of the region start."""
        return self.subject_start - self.diagonal

    @property
    def query_end(self) -> int:
        """Query offset just past the region end."""
        return self.subject_end - self.diagonal

    @property
    def length(self) -> int:
        """Region length in residues."""
        return self.subject_end - self.subject_start


class KtupleIndex:
    """Query k-tuple position table (``20**ktup`` buckets)."""

    def __init__(self, query_codes, ktup: int = DEFAULT_KTUP) -> None:
        if ktup < 1:
            raise ValueError("ktup must be positive")
        self.ktup = ktup
        self.query_length = len(query_codes)
        size = STANDARD_AMINO_ACIDS**ktup
        buckets: list[list[int] | None] = [None] * size
        for position in range(len(query_codes) - ktup + 1):
            index = 0
            valid = True
            for offset in range(ktup):
                code = query_codes[position + offset]
                if code >= STANDARD_AMINO_ACIDS:
                    valid = False
                    break
                index = index * STANDARD_AMINO_ACIDS + code
            if not valid:
                continue
            bucket = buckets[index]
            if bucket is None:
                buckets[index] = [position]
            else:
                bucket.append(position)
        self._buckets: list[tuple[int, ...] | None] = [
            tuple(bucket) if bucket is not None else None for bucket in buckets
        ]

    def __len__(self) -> int:
        return len(self._buckets)

    def positions(self, index: int) -> tuple[int, ...]:
        """Query positions holding the k-tuple with this integer index."""
        if index < 0:
            return ()
        bucket = self._buckets[index]
        return bucket if bucket is not None else ()

    def diagonal_hits(self, subject_codes) -> dict[int, list[int]]:
        """Map diagonal -> sorted subject offsets of shared k-tuples."""
        ktup = self.ktup
        hits: dict[int, list[int]] = {}
        index = -1
        for subject_offset in range(len(subject_codes) - ktup + 1):
            index = 0
            valid = True
            for offset in range(ktup):
                code = subject_codes[subject_offset + offset]
                if code >= STANDARD_AMINO_ACIDS:
                    valid = False
                    break
                index = index * STANDARD_AMINO_ACIDS + code
            if not valid:
                continue
            for query_offset in self.positions(index):
                diagonal = subject_offset - query_offset
                hits.setdefault(diagonal, []).append(subject_offset)
        return hits


def scan_diagonal(
    offsets: list[int], ktup: int
) -> list[tuple[int, int, int]]:
    """Chain hit offsets on one diagonal into scored runs.

    Returns ``(start_offset, end_offset, scan_score)`` triples, where the
    scan score uses the constant bonus/penalty model (FASTA's ``dhash``
    savings scores).  Kadane-style reset when the running score drops
    to zero or below.
    """
    runs: list[tuple[int, int, int]] = []
    running = 0
    best = 0
    run_start = 0
    best_end = 0
    previous_end = None
    for offset in offsets:
        bonus = HIT_BONUS_PER_RESIDUE * ktup
        if previous_end is None:
            gap_cost = 0
        else:
            distance = offset - previous_end
            if distance <= 0:
                # Overlapping hit: only the new residues earn a bonus.
                bonus = HIT_BONUS_PER_RESIDUE * (ktup + distance)
                gap_cost = 0
            else:
                gap_cost = distance * DISTANCE_PENALTY
        if running == 0:
            run_start = offset
            running = max(0, bonus)
            best = running
            best_end = offset + ktup
        else:
            running = running - gap_cost + bonus
            if running <= 0:
                if best > 0:
                    runs.append((run_start, best_end, best))
                # The triggering hit seeds a fresh run.
                run_start = offset
                running = HIT_BONUS_PER_RESIDUE * ktup
                best = running
                best_end = offset + ktup
                previous_end = offset + ktup
                continue
            if running > best:
                best = running
                best_end = offset + ktup
        previous_end = offset + ktup
    if best > 0:
        runs.append((run_start, best_end, best))
    return runs


def find_initial_regions(
    index: KtupleIndex,
    subject_codes,
    best_count: int = 10,
) -> list[DiagonalRegion]:
    """Find the ``best_count`` best scan-scored regions across diagonals."""
    regions: list[DiagonalRegion] = []
    for diagonal, offsets in index.diagonal_hits(subject_codes).items():
        for start, end, score in scan_diagonal(offsets, index.ktup):
            regions.append(
                DiagonalRegion(
                    diagonal=diagonal,
                    subject_start=start,
                    subject_end=end,
                    score=score,
                )
            )
    regions.sort(key=lambda region: (-region.score, region.diagonal))
    return regions[:best_count]


def rescore_region(
    region: DiagonalRegion,
    query_codes,
    subject_codes,
    matrix: ScoringMatrix,
) -> DiagonalRegion:
    """Rescore a region with matrix scores over its actual residues.

    Finds the best-scoring contiguous sub-run (max subarray) of the
    region span, as FASTA does when converting scan scores to init1
    scores.
    """
    best = 0
    running = 0
    best_start = region.subject_start
    best_end = region.subject_start
    run_start = region.subject_start
    for subject_offset in range(region.subject_start, region.subject_end):
        query_offset = subject_offset - region.diagonal
        if not 0 <= query_offset < len(query_codes):
            continue
        value = matrix.score(query_codes[query_offset], subject_codes[subject_offset])
        if running == 0:
            run_start = subject_offset
        running += value
        if running <= 0:
            running = 0
        elif running > best:
            best = running
            best_start = run_start
            best_end = subject_offset + 1
    return DiagonalRegion(
        diagonal=region.diagonal,
        subject_start=best_start,
        subject_end=best_end,
        score=best,
    )
