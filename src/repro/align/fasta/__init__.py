"""FASTA pipeline: k-tuple scan, region chaining, banded optimization."""

from repro.align.fasta.chaining import chain_regions
from repro.align.fasta.engine import (
    FastaEngine,
    FastaOptions,
    FastaScores,
    fasta_search,
)
from repro.align.fasta.ktup import (
    DiagonalRegion,
    KtupleIndex,
    find_initial_regions,
    rescore_region,
    scan_diagonal,
)

__all__ = [
    "chain_regions",
    "FastaEngine",
    "FastaOptions",
    "FastaScores",
    "fasta_search",
    "DiagonalRegion",
    "KtupleIndex",
    "find_initial_regions",
    "rescore_region",
    "scan_diagonal",
]
