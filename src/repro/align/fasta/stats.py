"""FASTA-style search statistics: length-regressed z-scores.

FASTA judges significance empirically: similarity scores of unrelated
sequences grow roughly linearly with the *logarithm* of subject length,
so the driver fits ``score ~ a + b*ln(length)`` over the whole search,
computes each hit's studentized residual (the reported ``z-score``),
and converts it to an expectation value with the normal tail times the
database size.  Related sequences are extreme outliers of the fit, so
a robust two-pass regression (refit after dropping high outliers)
keeps them from polluting the baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence as TypingSequence


@dataclass(frozen=True)
class LengthRegression:
    """The fitted score baseline ``score ~ intercept + slope*ln(len)``."""

    intercept: float
    slope: float
    residual_sd: float
    samples: int

    def expected_score(self, length: int) -> float:
        """Baseline (unrelated) score at a subject length."""
        return self.intercept + self.slope * math.log(max(length, 2))

    def zscore(self, score: int, length: int) -> float:
        """Studentized residual of one score (FASTA's z-score).

        FASTA rescales so unrelated sequences centre near z=50 with
        sd 10; we keep the plain standard-normal form (mean 0, sd 1).
        """
        if self.residual_sd <= 0:
            return 0.0
        return (score - self.expected_score(length)) / self.residual_sd


def _fit(pairs: list[tuple[float, float]]) -> tuple[float, float]:
    n = len(pairs)
    mean_x = sum(x for x, _ in pairs) / n
    mean_y = sum(y for _, y in pairs) / n
    sxx = sum((x - mean_x) ** 2 for x, _ in pairs)
    if sxx == 0:
        return mean_y, 0.0
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in pairs)
    slope = sxy / sxx
    return mean_y - slope * mean_x, slope


def fit_length_regression(
    scores: TypingSequence[int],
    lengths: TypingSequence[int],
    outlier_z: float = 3.0,
) -> LengthRegression:
    """Fit the score-vs-ln(length) baseline with one outlier-trim pass."""
    if len(scores) != len(lengths):
        raise ValueError("scores and lengths must pair up")
    if len(scores) < 3:
        raise ValueError("need at least 3 scores to fit the baseline")

    pairs = [
        (math.log(max(length, 2)), float(score))
        for score, length in zip(scores, lengths)
    ]

    def residual_sd(intercept: float, slope: float, sample) -> float:
        variance = sum(
            (y - intercept - slope * x) ** 2 for x, y in sample
        ) / max(len(sample) - 2, 1)
        return math.sqrt(variance)

    intercept, slope = _fit(pairs)
    sd = residual_sd(intercept, slope, pairs)
    if sd > 0:
        kept = [
            (x, y)
            for x, y in pairs
            if (y - intercept - slope * x) / sd < outlier_z
        ]
        if len(kept) >= 3:
            intercept, slope = _fit(kept)
            sd = residual_sd(intercept, slope, kept)
            pairs = kept
    return LengthRegression(
        intercept=intercept,
        slope=slope,
        residual_sd=max(sd, 1e-9),
        samples=len(pairs),
    )


def normal_tail(z: float) -> float:
    """P(Z > z) for a standard normal (complementary error function)."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def expectation(z: float, database_size: int) -> float:
    """FASTA-style E-value: database size times the normal tail."""
    return database_size * normal_tail(z)
