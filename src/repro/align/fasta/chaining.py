"""FASTA stage 2: joining initial regions into an ``initn`` score.

After the diagonal scan, FASTA tries to combine the best initial
regions — possibly on different diagonals — into one consistent chain,
charging a joining penalty per junction.  The best chain's score is
``initn``; chaining lets FASTA reward similarities interrupted by
insertions or deletions that break a single diagonal.
"""

from __future__ import annotations

from repro.align.fasta.ktup import DiagonalRegion

#: Penalty charged for joining two regions on different diagonals
#: (FASTA's gap-joining penalty).
DEFAULT_JOIN_PENALTY = 20


def chain_regions(
    regions: list[DiagonalRegion],
    join_penalty: int = DEFAULT_JOIN_PENALTY,
) -> int:
    """Best chain score over compatible regions (the ``initn`` score).

    Regions are compatible when the second starts strictly after the
    first ends in *both* sequences.  Classic O(r^2) chaining DP over at
    most ~10 regions.
    """
    if not regions:
        return 0
    ordered = sorted(
        regions, key=lambda region: (region.subject_start, region.query_start)
    )
    best_ending = [0] * len(ordered)
    overall = 0
    for i, region in enumerate(ordered):
        best_ending[i] = region.score
        for j in range(i):
            previous = ordered[j]
            if (
                previous.subject_end <= region.subject_start
                and previous.query_end <= region.query_start
            ):
                candidate = best_ending[j] + region.score - join_penalty
                if candidate > best_ending[i]:
                    best_ending[i] = candidate
        if best_ending[i] > overall:
            overall = best_ending[i]
    return overall
