"""Needleman-Wunsch global alignment with affine gaps.

Included for substrate completeness (it is the dynamic-programming
ancestor the paper cites [19]) and used by tests as an independent check
of the affine-gap recurrences shared with Smith-Waterman.
"""

from __future__ import annotations

from repro.align.types import AlignmentResult, GapPenalties, PAPER_GAPS
from repro.bio.matrices import BLOSUM62, ScoringMatrix
from repro.bio.sequence import Sequence, as_sequence

_NEG_INF = -(10**9)


def nw_score(
    query: Sequence | str,
    subject: Sequence | str,
    matrix: ScoringMatrix = BLOSUM62,
    gaps: GapPenalties = PAPER_GAPS,
) -> int:
    """Score-only global alignment (linear space)."""
    q = as_sequence(query).codes
    s = as_sequence(subject).codes
    gap_first = gaps.first_residue_cost
    gap_extend = gaps.extend
    rows = matrix.rows

    m = len(q)
    # h_row[i] = H[i][j]; boundary: leading gaps are charged affinely.
    h_row = [0] + [-gaps.cost(i) for i in range(1, m + 1)]
    e_row = [_NEG_INF] * (m + 1)
    for j, b_code in enumerate(s, start=1):
        score_row = rows[b_code]
        diag = h_row[0]
        h_row[0] = -gaps.cost(j)
        f = _NEG_INF
        for i in range(1, m + 1):
            e = max(h_row[i] - gap_first, e_row[i] - gap_extend)
            f = max(h_row[i - 1] - gap_first, f - gap_extend)
            h = max(diag + score_row[q[i - 1]], e, f)
            diag = h_row[i]
            h_row[i] = h
            e_row[i] = e
    return h_row[m]


def needleman_wunsch(
    query: Sequence | str,
    subject: Sequence | str,
    matrix: ScoringMatrix = BLOSUM62,
    gaps: GapPenalties = PAPER_GAPS,
) -> AlignmentResult:
    """Global alignment with full traceback."""
    query_seq = as_sequence(query, identifier="query")
    subject_seq = as_sequence(subject, identifier="subject")
    q = query_seq.codes
    s = subject_seq.codes
    m, n = len(q), len(s)
    gap_first = gaps.first_residue_cost
    gap_extend = gaps.extend
    rows = matrix.rows

    h_matrix = [[0] * (n + 1) for _ in range(m + 1)]
    e_matrix = [[_NEG_INF] * (n + 1) for _ in range(m + 1)]
    f_matrix = [[_NEG_INF] * (n + 1) for _ in range(m + 1)]
    for i in range(1, m + 1):
        h_matrix[i][0] = -gaps.cost(i)
    for j in range(1, n + 1):
        h_matrix[0][j] = -gaps.cost(j)

    for i in range(1, m + 1):
        score_row = rows[q[i - 1]]
        for j in range(1, n + 1):
            e = max(h_matrix[i][j - 1] - gap_first, e_matrix[i][j - 1] - gap_extend)
            f = max(h_matrix[i - 1][j] - gap_first, f_matrix[i - 1][j] - gap_extend)
            h = max(h_matrix[i - 1][j - 1] + score_row[s[j - 1]], e, f)
            h_matrix[i][j] = h
            e_matrix[i][j] = e
            f_matrix[i][j] = f

    aligned_q: list[str] = []
    aligned_s: list[str] = []
    i, j = m, n
    state = "H"
    while i > 0 or j > 0:
        if state == "H":
            if i > 0 and j > 0 and (
                h_matrix[i][j]
                == h_matrix[i - 1][j - 1] + rows[q[i - 1]][s[j - 1]]
            ):
                aligned_q.append(query_seq.text[i - 1])
                aligned_s.append(subject_seq.text[j - 1])
                i -= 1
                j -= 1
            elif j > 0 and h_matrix[i][j] == e_matrix[i][j]:
                state = "E"
            elif i > 0 and h_matrix[i][j] == f_matrix[i][j]:
                state = "F"
            elif j > 0:
                # Boundary row: leading gap in the query.
                aligned_q.append("-")
                aligned_s.append(subject_seq.text[j - 1])
                j -= 1
            else:
                aligned_q.append(query_seq.text[i - 1])
                aligned_s.append("-")
                i -= 1
        elif state == "E":
            aligned_q.append("-")
            aligned_s.append(subject_seq.text[j - 1])
            came_from_open = e_matrix[i][j] == h_matrix[i][j - 1] - gap_first
            j -= 1
            state = "H" if came_from_open else "E"
        else:
            aligned_q.append(query_seq.text[i - 1])
            aligned_s.append("-")
            came_from_open = f_matrix[i][j] == h_matrix[i - 1][j] - gap_first
            i -= 1
            state = "H" if came_from_open else "F"

    aligned_q.reverse()
    aligned_s.reverse()
    return AlignmentResult(
        score=h_matrix[m][n],
        query_start=0,
        query_end=m,
        subject_start=0,
        subject_end=n,
        aligned_query="".join(aligned_q),
        aligned_subject="".join(aligned_s),
    )
