"""Alignment applications: SW (scalar + SIMD), BLAST, FASTA."""

from repro.align.banded import banded_sw_score
from repro.align.batch import (
    ALGORITHMS,
    SearchParams,
    make_engine,
    merge_shards,
    scan_shard,
    search_one,
)
from repro.align.blast.engine import BlastEngine, BlastOptions, blast_search
from repro.align.fasta.engine import FastaEngine, FastaOptions, fasta_search
from repro.align.msa import MultipleAlignment, star_msa
from repro.align.needleman_wunsch import needleman_wunsch, nw_score
from repro.align.report import format_alignments, format_hit_list, format_tabular
from repro.align.statistics import (
    GumbelFit,
    empirical_lambda,
    empirical_score_survey,
    fit_gumbel,
)
from repro.align.simd.sw_vmx import sw_score_vmx, sw_score_vmx128, sw_score_vmx256
from repro.align.smith_waterman import smith_waterman, sw_score, sw_score_swat
from repro.align.ssearch import (
    SsearchEngine,
    SsearchOptions,
    format_report,
    search as ssearch,
)
from repro.align.types import (
    AlignmentResult,
    GapPenalties,
    PAPER_GAPS,
    SearchHit,
    SearchResult,
    ShardScan,
)

__all__ = [
    "ALGORITHMS",
    "SearchParams",
    "make_engine",
    "merge_shards",
    "scan_shard",
    "search_one",
    "banded_sw_score",
    "BlastEngine",
    "BlastOptions",
    "blast_search",
    "FastaEngine",
    "FastaOptions",
    "fasta_search",
    "MultipleAlignment",
    "star_msa",
    "needleman_wunsch",
    "format_alignments",
    "format_hit_list",
    "format_tabular",
    "GumbelFit",
    "empirical_lambda",
    "empirical_score_survey",
    "fit_gumbel",
    "nw_score",
    "sw_score_vmx",
    "sw_score_vmx128",
    "sw_score_vmx256",
    "smith_waterman",
    "sw_score",
    "sw_score_swat",
    "SsearchEngine",
    "SsearchOptions",
    "format_report",
    "ssearch",
    "AlignmentResult",
    "GapPenalties",
    "PAPER_GAPS",
    "SearchHit",
    "SearchResult",
    "ShardScan",
]
