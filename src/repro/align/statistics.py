"""Empirical score statistics: Gumbel fits for local alignment scores.

Karlin-Altschul theory says optimal ungapped local scores of unrelated
sequences follow an extreme-value (Gumbel) distribution whose decay
rate is the ``lambda`` of the scoring system.  This module provides the
empirical side: survey scores over random sequence pairs, fit a Gumbel
by the method of moments, and compare the fitted decay rate against
the analytic ``lambda`` from :mod:`repro.align.blast.karlin` — the
validation that the statistics substrate and the alignment kernels
agree with each other.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence as TypingSequence

from repro.align.smith_waterman import sw_score
from repro.align.types import GapPenalties
from repro.bio.matrices import BLOSUM62, ScoringMatrix
from repro.bio.synthetic import random_protein

#: Euler-Mascheroni constant (Gumbel mean offset).
EULER_GAMMA = 0.5772156649015329

#: Gap penalties so large that alignments are effectively ungapped.
UNGAPPED = GapPenalties(open=10_000, extend=10_000)


@dataclass(frozen=True)
class GumbelFit:
    """Method-of-moments Gumbel parameters for a score sample."""

    location: float   # mu
    scale: float      # beta;  decay rate lambda = 1/beta
    samples: int

    @property
    def decay_rate(self) -> float:
        """The empirical lambda (1/scale)."""
        return 1.0 / self.scale if self.scale > 0 else float("inf")

    def survival(self, score: float) -> float:
        """P(S > score) under the fitted Gumbel."""
        z = (score - self.location) / self.scale
        return 1.0 - math.exp(-math.exp(-z))


def fit_gumbel(scores: TypingSequence[int]) -> GumbelFit:
    """Fit a Gumbel distribution by the method of moments.

    ``beta = sd * sqrt(6) / pi`` and ``mu = mean - gamma * beta``.
    """
    if len(scores) < 10:
        raise ValueError("need at least 10 scores for a stable fit")
    n = len(scores)
    mean = sum(scores) / n
    variance = sum((s - mean) ** 2 for s in scores) / (n - 1)
    sd = math.sqrt(variance)
    if sd == 0:
        raise ValueError("degenerate sample (all scores equal)")
    scale = sd * math.sqrt(6.0) / math.pi
    location = mean - EULER_GAMMA * scale
    return GumbelFit(location=location, scale=scale, samples=n)


def empirical_score_survey(
    pair_count: int,
    sequence_length: int,
    seed: int = 0,
    matrix: ScoringMatrix = BLOSUM62,
    gaps: GapPenalties = UNGAPPED,
) -> list[int]:
    """Optimal local scores of random unrelated sequence pairs."""
    if pair_count < 1 or sequence_length < 2:
        raise ValueError("need at least one pair of length >= 2")
    rng = random.Random(seed)
    scores = []
    for _ in range(pair_count):
        first = random_protein(sequence_length, rng)
        second = random_protein(sequence_length, rng)
        scores.append(sw_score(first, second, matrix=matrix, gaps=gaps))
    return scores


def empirical_lambda(
    pair_count: int = 150,
    sequence_length: int = 120,
    seed: int = 0,
    matrix: ScoringMatrix = BLOSUM62,
    gaps: GapPenalties = UNGAPPED,
) -> GumbelFit:
    """Convenience: survey scores and fit their Gumbel in one call."""
    scores = empirical_score_survey(
        pair_count, sequence_length, seed=seed, matrix=matrix, gaps=gaps
    )
    return fit_gumbel(scores)
