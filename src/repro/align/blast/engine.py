"""BLASTP search engine.

Ties the word finder, two-hit scanner, and extension stages into a
database search equivalent to the paper's ``blastp -G 10 -E 1 -b 0``
run: protein query, gap open 10 / extend 1, scores-only reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.align.banded import banded_sw_scores_batch
from repro.align.blast.extension import (
    DEFAULT_GAP_TRIGGER,
    DEFAULT_GAPPED_BAND,
    DEFAULT_X_DROP_UNGAPPED,
    UngappedExtension,
    extend_ungapped,
)
from repro.align.blast.karlin import KarlinParameters, estimate_parameters
from repro.align.blast.wordfinder import (
    DEFAULT_THRESHOLD,
    DEFAULT_WINDOW,
    DEFAULT_WORD_SIZE,
    DiagonalTracker,
    LookupTable,
    word_index,
)
from repro.align.types import (
    GapPenalties,
    PAPER_GAPS,
    SearchHit,
    SearchResult,
    ShardScan,
)
from repro.bio.database import SequenceDatabase
from repro.bio.matrices import BLOSUM62, ScoringMatrix
from repro.bio.sequence import Sequence, as_sequence


@dataclass(frozen=True)
class BlastOptions:
    """BLASTP parameters (paper Table I: ``-G 10 -E 1 -b 0``).

    ``mask_query`` applies the SEG-style low-complexity filter to the
    query before the lookup table is built (real BLAST's default; off
    here so the reproduction suite stays calibrated on raw queries).
    """

    word_size: int = DEFAULT_WORD_SIZE
    threshold: int = DEFAULT_THRESHOLD
    window: int = DEFAULT_WINDOW
    x_drop_ungapped: int = DEFAULT_X_DROP_UNGAPPED
    gap_trigger: int = DEFAULT_GAP_TRIGGER
    gapped_band: int = DEFAULT_GAPPED_BAND
    gaps: GapPenalties = PAPER_GAPS
    matrix: ScoringMatrix = BLOSUM62
    best_count: int = 500
    mask_query: bool = False


@dataclass
class BlastStatistics:
    """Stage counters for one search (used by workload characterization)."""

    words_scanned: int = 0
    single_hits: int = 0
    two_hits: int = 0
    ungapped_extensions: int = 0
    gapped_extensions: int = 0
    lookup_entries: int = 0
    extra: dict[str, int] = field(default_factory=dict)


class BlastEngine:
    """A query-compiled BLASTP searcher.

    Building the engine compiles the query into a neighborhood lookup
    table once; ``search`` then scans any number of databases, exactly
    like NCBI BLAST's setup/scan split.
    """

    def __init__(
        self,
        query: Sequence | str,
        options: BlastOptions = BlastOptions(),
        lookup: LookupTable | None = None,
    ) -> None:
        self.query = as_sequence(query, identifier="query")
        self.options = options
        if lookup is None:
            lookup_query = self.query
            if options.mask_query:
                from repro.bio.complexity import mask_sequence

                lookup_query = mask_sequence(self.query)
            lookup = LookupTable(
                lookup_query.codes,
                matrix=options.matrix,
                word_size=options.word_size,
                threshold=options.threshold,
            )
        # A prebuilt ``lookup`` (the artifact store's deserialized
        # table for this exact query/matrix/threshold) skips both the
        # masking pass and the table compilation — the whole per-query
        # setup cost.
        self.lookup = lookup
        self.karlin: KarlinParameters = estimate_parameters(options.matrix)
        self.statistics = BlastStatistics(lookup_entries=self.lookup.entry_count)

    def score_subject(self, subject: Sequence) -> int:
        """Best gapped score of the query against one subject."""
        scorer = _SubjectScorer(self, subject)
        codes = subject.codes
        word_size = self.options.word_size
        for subject_offset in range(len(codes) - word_size + 1):
            scorer.feed(
                word_index(codes, subject_offset, word_size), subject_offset
            )
        scorer.resolve_gapped()
        return scorer.finish()

    def scan_raw(
        self, database: SequenceDatabase, offset: int = 0
    ) -> ShardScan:
        """Raw shard scan: per-subject best scores with global indices."""
        raw: list[tuple[int, int, int, str]] = []
        for local, subject in enumerate(database):
            score = self.score_subject(subject)
            if score <= 0:
                continue
            raw.append(
                (score, len(subject), offset + local, subject.identifier)
            )
        return ShardScan(
            raw=tuple(raw),
            sequences=len(database),
            residues=database.residue_count,
        )

    def finalize(
        self, scans: list[ShardScan], database_name: str
    ) -> SearchResult:
        """Merge raw shard scans into the ranked, E-value-annotated result.

        E-values use the residue count summed over all shards, so a
        sharded scan finalizes to exactly the unsharded search result.
        """
        residues = sum(scan.residues for scan in scans)
        sequences = sum(scan.sequences for scan in scans)
        query_length = len(self.query)
        hits = [
            SearchHit(
                score=score,
                subject_id=identifier,
                subject_index=index,
                subject_length=length,
                evalue=self.karlin.evalue(score, query_length, residues),
                bit_score=self.karlin.bit_score(score),
            )
            for scan in scans
            for score, length, index, identifier in scan.raw
        ]
        hits.sort(key=lambda hit: (-hit.score, hit.subject_index))
        return SearchResult(
            query_id=self.query.identifier,
            database_name=database_name,
            hits=tuple(hits[: self.options.best_count]),
            sequences_searched=sequences,
            residues_searched=residues,
        )

    def search(self, database: SequenceDatabase) -> SearchResult:
        """Search the database, returning scored hits (E-value annotated)."""
        return self.finalize([self.scan_raw(database)], database.name)


class BlastFinalizer:
    """Merge-side twin of :class:`BlastEngine`.

    Ranking shard scans needs only the query length, the Karlin-Altschul
    statistics, and ``best_count`` — not the neighborhood lookup table —
    so the serving merge path uses this to avoid recompiling every
    query it finalizes.  ``finalize`` is shared with the engine, which
    keeps the two byte-identical by construction.
    """

    def __init__(
        self, query: Sequence | str, options: BlastOptions = BlastOptions()
    ) -> None:
        self.query = as_sequence(query, identifier="query")
        self.options = options
        self.karlin: KarlinParameters = estimate_parameters(options.matrix)

    finalize = BlastEngine.finalize


class _SubjectScorer:
    """Incremental scoring of one subject for one engine.

    Consumes shared ``word_index`` values position by position, so a
    batch of engines can scan a subject in a single pass (see
    :func:`blast_scan_batch`), and reproduces the single-query
    ``score_subject`` loop exactly.
    """

    def __init__(self, engine: BlastEngine, subject: Sequence) -> None:
        self.engine = engine
        self.subject = subject
        self.tracker = DiagonalTracker(
            engine.lookup,
            len(engine.query),
            len(subject),
            window=engine.options.window,
        )
        # Remember extended regions per diagonal to skip repeat seeds.
        self.extended_until: dict[int, int] = {}
        self.best = 0
        #: Seeds past the gap trigger, awaiting banded gapped extension.
        #: Deferred so a whole scan's extensions run as one stacked DP
        #: (:func:`repro.align.banded.banded_sw_scores_batch`).
        self.pending: list[UngappedExtension] = []

    def feed(self, index: int, subject_offset: int) -> None:
        """Process one subject word position."""
        hits = self.tracker.feed(index, subject_offset)
        if hits:
            self._extend(hits)

    def feed_bucket(self, bucket, subject_offset: int) -> None:
        """Process an already-looked-up bucket (batched scan path)."""
        hits = self.tracker.feed_bucket(bucket, subject_offset)
        if hits:
            self._extend(hits)

    def _extend(self, hits) -> None:
        """Run the extension cascade for qualified two-hit seeds."""
        engine = self.engine
        options = engine.options
        stats = engine.statistics
        subject = self.subject
        extended_until = self.extended_until
        for hit in hits:
            stats.two_hits += 1
            if extended_until.get(hit.diagonal, -1) >= hit.subject_offset:
                continue
            stats.ungapped_extensions += 1
            ungapped = extend_ungapped(
                engine.query.codes,
                subject.codes,
                hit.query_offset,
                hit.subject_offset,
                options.word_size,
                options.matrix,
                x_drop=options.x_drop_ungapped,
            )
            extended_until[hit.diagonal] = ungapped.subject_end
            score = ungapped.score
            if score >= options.gap_trigger:
                # The gapped score supersedes the ungapped one; defer
                # the banded DP so extensions batch across the scan.
                stats.gapped_extensions += 1
                self.pending.append(ungapped)
                continue
            if score > self.best:
                self.best = score

    def resolve_gapped(self) -> None:
        """Run this scorer's deferred gapped extensions (one batch)."""
        if not self.pending:
            return
        options = self.engine.options
        scores = banded_sw_scores_batch(
            [
                (
                    self.engine.query.codes,
                    self.subject.codes,
                    seed.subject_start - seed.query_start,
                )
                for seed in self.pending
            ],
            width=options.gapped_band,
            matrix=options.matrix,
            gaps=options.gaps,
        )
        self.pending.clear()
        for score in scores:
            if score > self.best:
                self.best = score

    def finish(self) -> int:
        """Fold scan statistics into the engine; returns the best score."""
        stats = self.engine.statistics
        stats.single_hits += self.tracker.single_hits
        stats.words_scanned += max(
            0, len(self.subject) - self.engine.options.word_size + 1
        )
        return self.best


def blast_scan_batch(
    engines: list[BlastEngine],
    database: SequenceDatabase,
    offset: int = 0,
) -> list[ShardScan]:
    """Scan one shard once for a whole batch of query-compiled engines.

    The SWAPHI-style batched database scan: each subject's word indices
    are computed a single time and fed to every engine's incremental
    scorer, so the per-position scan cost is shared across the batch
    while per-query results stay byte-identical to ``scan_raw``.
    Engines must share a word size (callers group batches by options).
    """
    if not engines:
        return []
    word_size = engines[0].options.word_size
    if any(e.options.word_size != word_size for e in engines):
        raise ValueError("batched scan requires one word size per batch")
    # Combined lookup: one probe per subject position for the whole
    # batch.  Each occupied word index maps to (engine position, that
    # engine's bucket), so per-engine state transitions — and therefore
    # results and statistics — are exactly the solo-scan ones.
    combined: list[list | None] = [None] * len(engines[0].lookup)
    for position, engine in enumerate(engines):
        cells = engine.lookup._cells
        for index in engine.lookup.occupied:
            entry = (position, cells[index])
            slot = combined[index]
            if slot is None:
                combined[index] = [entry]
            else:
                slot.append(entry)
    # Pass 1 — scan every subject, collecting per-(engine, subject)
    # base scores and deferred gapped-extension seeds.  Records keep
    # (engine position, subject metadata, best) in subject-major order
    # so pass 3 rebuilds each raw list exactly as ``scan_raw`` would.
    records: list[list] = []
    gapped_jobs: dict[tuple, list[tuple]] = {}
    gapped_targets: dict[tuple, list[int]] = {}
    residues = 0
    for local, subject in enumerate(database):
        residues += len(subject)
        scorers = [_SubjectScorer(engine, subject) for engine in engines]
        codes = subject.codes
        for subject_offset in range(len(codes) - word_size + 1):
            index = word_index(codes, subject_offset, word_size)
            if index < 0:
                continue
            entries = combined[index]
            if entries is None:
                continue
            for engine_position, bucket in entries:
                scorers[engine_position].feed_bucket(
                    bucket, subject_offset
                )
        for position, scorer in enumerate(scorers):
            record = [
                position, local, len(subject), subject.identifier,
                scorer.finish(),
            ]
            record_index = len(records)
            records.append(record)
            if scorer.pending:
                engine = engines[position]
                options = engine.options
                group = (
                    options.gapped_band,
                    options.matrix.name,
                    options.gaps,
                )
                jobs = gapped_jobs.setdefault(group, [])
                targets = gapped_targets.setdefault(group, [])
                for seed in scorer.pending:
                    jobs.append((
                        engine.query.codes,
                        codes,
                        seed.subject_start - seed.query_start,
                    ))
                    targets.append(record_index)
                scorer.pending.clear()

    # Pass 2 — the whole scan's gapped extensions as stacked banded
    # DPs, one call per distinct (band, matrix, gaps) option set.
    for group, jobs in gapped_jobs.items():
        band, matrix_name, gaps = group
        matrix = next(
            engine.options.matrix for engine in engines
            if engine.options.matrix.name == matrix_name
        )
        scores = banded_sw_scores_batch(
            jobs, width=band, matrix=matrix, gaps=gaps
        )
        for record_index, score in zip(gapped_targets[group], scores):
            record = records[record_index]
            if score > record[4]:
                record[4] = score

    # Pass 3 — rebuild the per-engine raw hit lists in database order.
    raw: list[list[tuple[int, int, int, str]]] = [[] for _ in engines]
    for position, local, length, identifier, score in records:
        if score > 0:
            raw[position].append(
                (score, length, offset + local, identifier)
            )
    return [
        ShardScan(
            raw=tuple(entries),
            sequences=len(database),
            residues=residues,
        )
        for entries in raw
    ]


def blast_search(
    query: Sequence | str,
    database: SequenceDatabase,
    options: BlastOptions = BlastOptions(),
) -> SearchResult:
    """One-shot BLASTP search convenience wrapper."""
    return BlastEngine(query, options).search(database)
