"""BLASTP search engine.

Ties the word finder, two-hit scanner, and extension stages into a
database search equivalent to the paper's ``blastp -G 10 -E 1 -b 0``
run: protein query, gap open 10 / extend 1, scores-only reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.align.blast.extension import (
    DEFAULT_GAP_TRIGGER,
    DEFAULT_GAPPED_BAND,
    DEFAULT_X_DROP_UNGAPPED,
    extend_gapped,
    extend_ungapped,
)
from repro.align.blast.karlin import KarlinParameters, estimate_parameters
from repro.align.blast.wordfinder import (
    DEFAULT_THRESHOLD,
    DEFAULT_WINDOW,
    DEFAULT_WORD_SIZE,
    LookupTable,
    TwoHitScanner,
)
from repro.align.types import GapPenalties, PAPER_GAPS, SearchHit, SearchResult
from repro.bio.database import SequenceDatabase
from repro.bio.matrices import BLOSUM62, ScoringMatrix
from repro.bio.sequence import Sequence, as_sequence


@dataclass(frozen=True)
class BlastOptions:
    """BLASTP parameters (paper Table I: ``-G 10 -E 1 -b 0``).

    ``mask_query`` applies the SEG-style low-complexity filter to the
    query before the lookup table is built (real BLAST's default; off
    here so the reproduction suite stays calibrated on raw queries).
    """

    word_size: int = DEFAULT_WORD_SIZE
    threshold: int = DEFAULT_THRESHOLD
    window: int = DEFAULT_WINDOW
    x_drop_ungapped: int = DEFAULT_X_DROP_UNGAPPED
    gap_trigger: int = DEFAULT_GAP_TRIGGER
    gapped_band: int = DEFAULT_GAPPED_BAND
    gaps: GapPenalties = PAPER_GAPS
    matrix: ScoringMatrix = BLOSUM62
    best_count: int = 500
    mask_query: bool = False


@dataclass
class BlastStatistics:
    """Stage counters for one search (used by workload characterization)."""

    words_scanned: int = 0
    single_hits: int = 0
    two_hits: int = 0
    ungapped_extensions: int = 0
    gapped_extensions: int = 0
    lookup_entries: int = 0
    extra: dict[str, int] = field(default_factory=dict)


class BlastEngine:
    """A query-compiled BLASTP searcher.

    Building the engine compiles the query into a neighborhood lookup
    table once; ``search`` then scans any number of databases, exactly
    like NCBI BLAST's setup/scan split.
    """

    def __init__(
        self, query: Sequence | str, options: BlastOptions = BlastOptions()
    ) -> None:
        self.query = as_sequence(query, identifier="query")
        self.options = options
        lookup_query = self.query
        if options.mask_query:
            from repro.bio.complexity import mask_sequence

            lookup_query = mask_sequence(self.query)
        self.lookup = LookupTable(
            lookup_query.codes,
            matrix=options.matrix,
            word_size=options.word_size,
            threshold=options.threshold,
        )
        self.karlin: KarlinParameters = estimate_parameters(options.matrix)
        self.statistics = BlastStatistics(lookup_entries=self.lookup.entry_count)

    def score_subject(self, subject: Sequence) -> int:
        """Best gapped score of the query against one subject."""
        options = self.options
        stats = self.statistics
        scanner = TwoHitScanner(
            self.lookup, len(self.query), window=options.window
        )
        best = 0
        # Remember extended regions per diagonal to skip repeat seeds.
        extended_until: dict[int, int] = {}
        for hit in scanner.scan(subject.codes):
            stats.two_hits += 1
            if extended_until.get(hit.diagonal, -1) >= hit.subject_offset:
                continue
            stats.ungapped_extensions += 1
            ungapped = extend_ungapped(
                self.query.codes,
                subject.codes,
                hit.query_offset,
                hit.subject_offset,
                options.word_size,
                options.matrix,
                x_drop=options.x_drop_ungapped,
            )
            extended_until[hit.diagonal] = ungapped.subject_end
            score = ungapped.score
            if score >= options.gap_trigger:
                stats.gapped_extensions += 1
                score = extend_gapped(
                    self.query,
                    subject,
                    ungapped,
                    options.matrix,
                    options.gaps,
                    band=options.gapped_band,
                )
            if score > best:
                best = score
        stats.single_hits += scanner.single_hits
        stats.words_scanned += max(0, len(subject) - options.word_size + 1)
        return best

    def search(self, database: SequenceDatabase) -> SearchResult:
        """Search the database, returning scored hits (E-value annotated)."""
        residues = database.residue_count
        hits: list[SearchHit] = []
        for index, subject in enumerate(database):
            score = self.score_subject(subject)
            if score <= 0:
                continue
            hits.append(
                SearchHit(
                    score=score,
                    subject_id=subject.identifier,
                    subject_index=index,
                    subject_length=len(subject),
                    evalue=self.karlin.evalue(score, len(self.query), residues),
                    bit_score=self.karlin.bit_score(score),
                )
            )
        hits.sort(key=lambda hit: (-hit.score, hit.subject_index))
        return SearchResult(
            query_id=self.query.identifier,
            database_name=database.name,
            hits=tuple(hits[: self.options.best_count]),
            sequences_searched=len(database),
            residues_searched=residues,
        )


def blast_search(
    query: Sequence | str,
    database: SequenceDatabase,
    options: BlastOptions = BlastOptions(),
) -> SearchResult:
    """One-shot BLASTP search convenience wrapper."""
    return BlastEngine(query, options).search(database)
