"""Nucleotide BLAST (blastn-style) over the packed database.

Completes the BLAST substrate around paper listing 1: the nucleotide
word finder scans a 2-bit packed database byte by byte, maintaining a
rolling word through the ``READDB_UNPACK_BASE`` extraction the listing
shows, and extends exact word hits with match/mismatch scoring.

DNA searches use exact words (no neighborhood — substitution scores on
nucleotides are match/mismatch only), a larger word size, and simple
+match/-mismatch scoring with affine gaps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.types import GapPenalties, SearchHit, SearchResult
from repro.bio.database import SequenceDatabase
from repro.bio.packed import BASES_PER_BYTE, PackedSequence, unpack_base
from repro.bio.sequence import Sequence, as_sequence

#: blastn-style defaults: reward/penalty and gap costs.
DEFAULT_MATCH = 1
DEFAULT_MISMATCH = -3
DEFAULT_WORD_SIZE = 8
DEFAULT_X_DROP = 10
DEFAULT_DNA_GAPS = GapPenalties(open=5, extend=2)

_BASE_CODE = {"A": 0, "C": 1, "G": 2, "T": 3}


@dataclass(frozen=True)
class BlastnOptions:
    """blastn parameters."""

    word_size: int = DEFAULT_WORD_SIZE
    match: int = DEFAULT_MATCH
    mismatch: int = DEFAULT_MISMATCH
    x_drop: int = DEFAULT_X_DROP
    gaps: GapPenalties = DEFAULT_DNA_GAPS
    best_count: int = 500

    def __post_init__(self) -> None:
        if not 4 <= self.word_size <= 16:
            raise ValueError("word size must be in [4, 16]")
        if self.match <= 0 or self.mismatch >= 0:
            raise ValueError("need positive match and negative mismatch")


class NucleotideLookup:
    """Exact-word lookup table over the query (4^w index space)."""

    def __init__(self, query: Sequence | str, word_size: int) -> None:
        query = as_sequence(query, identifier="query")
        self.word_size = word_size
        self.query_text = query.text
        table: dict[int, list[int]] = {}
        word = 0
        valid = 0
        mask = (1 << (2 * word_size)) - 1
        for position, base in enumerate(self.query_text):
            code = _BASE_CODE.get(base)
            if code is None:
                valid = 0
                word = 0
                continue
            word = ((word << 2) | code) & mask
            valid += 1
            if valid >= word_size:
                table.setdefault(word, []).append(position - word_size + 1)
        self._table = {key: tuple(value) for key, value in table.items()}

    def __len__(self) -> int:
        return len(self._table)

    def lookup(self, word: int) -> tuple[int, ...]:
        """Query offsets whose exact word matches."""
        return self._table.get(word, ())


class BlastnEngine:
    """Scan packed nucleotide subjects for a query's exact word hits."""

    def __init__(
        self, query: Sequence | str, options: BlastnOptions = BlastnOptions()
    ) -> None:
        self.query = as_sequence(query, identifier="query")
        self.options = options
        self.lookup = NucleotideLookup(self.query, options.word_size)
        self.words_scanned = 0
        self.word_hits = 0
        self.extensions = 0

    def _extend(self, subject_text: str, query_offset: int,
                subject_offset: int) -> int:
        """Ungapped X-drop extension with match/mismatch scoring."""
        options = self.options
        query_text = self.query.text
        word_size = options.word_size
        score = options.match * word_size

        best = score
        running = score
        q, s = query_offset + word_size, subject_offset + word_size
        limit = min(len(query_text) - q, len(subject_text) - s)
        for step in range(limit):
            running += (
                options.match
                if query_text[q + step] == subject_text[s + step]
                else options.mismatch
            )
            if running > best:
                best = running
            elif best - running > options.x_drop:
                break

        running = best
        total_best = best
        limit = min(query_offset, subject_offset)
        for step in range(1, limit + 1):
            running += (
                options.match
                if query_text[query_offset - step]
                == subject_text[subject_offset - step]
                else options.mismatch
            )
            if running > total_best:
                total_best = running
            elif total_best - running > options.x_drop:
                break
        return total_best

    def score_subject(self, packed: PackedSequence) -> int:
        """Best hit score against one packed subject.

        The scan walks the packed bytes and maintains a rolling word via
        per-slot unpacking — the listing-1 code path.
        """
        options = self.options
        word_size = options.word_size
        mask = (1 << (2 * word_size)) - 1
        subject_text = packed.unpack().text
        ambiguous = set(packed.ambiguous)

        best = 0
        seen_diagonals: dict[int, int] = {}
        word = 0
        valid = 0
        position = 0
        for byte in packed.packed:
            for slot in range(BASES_PER_BYTE):
                if position >= packed.length:
                    break
                self.words_scanned += 1
                if position in ambiguous:
                    valid = 0
                    word = 0
                    position += 1
                    continue
                base = unpack_base(byte, slot)
                word = ((word << 2) | _BASE_CODE[base]) & mask
                valid += 1
                position += 1
                if valid < word_size:
                    continue
                subject_offset = position - word_size
                for query_offset in self.lookup.lookup(word):
                    self.word_hits += 1
                    diagonal = subject_offset - query_offset
                    if seen_diagonals.get(diagonal, -1) >= subject_offset:
                        continue
                    self.extensions += 1
                    score = self._extend(
                        subject_text, query_offset, subject_offset
                    )
                    seen_diagonals[diagonal] = subject_offset + word_size
                    if score > best:
                        best = score
        return best

    def search(self, database: SequenceDatabase) -> SearchResult:
        """Search a DNA database (packing subjects on the fly)."""
        hits: list[SearchHit] = []
        residues = 0
        for index, subject in enumerate(database):
            residues += len(subject)
            packed = PackedSequence.from_sequence(subject)
            score = self.score_subject(packed)
            if score <= 0:
                continue
            hits.append(
                SearchHit(
                    score=score,
                    subject_id=subject.identifier,
                    subject_index=index,
                    subject_length=len(subject),
                )
            )
        hits.sort(key=lambda hit: (-hit.score, hit.subject_index))
        return SearchResult(
            query_id=self.query.identifier,
            database_name=database.name,
            hits=tuple(hits[: self.options.best_count]),
            sequences_searched=len(database),
            residues_searched=residues,
        )
