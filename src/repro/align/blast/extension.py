"""BLAST hit extension: ungapped X-drop and gapped banded extension.

A two-hit seed is first extended without gaps in both directions along
its diagonal, abandoning each direction when the running score falls
``x_drop`` below the best seen (Altschul 1990).  Seeds whose ungapped
score reaches the gap trigger are re-extended with gaps using a banded
Gotoh DP centered on the seed diagonal (Altschul 1997's gapped BLAST).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.banded import banded_sw_score
from repro.align.types import GapPenalties
from repro.bio.matrices import ScoringMatrix

#: Default raw-score X-drop for ungapped extension (NCBI: ~7 bits).
DEFAULT_X_DROP_UNGAPPED = 16
#: Default raw-score X-drop analogue: half-width of the gapped band.
DEFAULT_GAPPED_BAND = 24
#: Ungapped score needed before attempting a gapped extension.
DEFAULT_GAP_TRIGGER = 41


@dataclass(frozen=True)
class UngappedExtension:
    """Result of extending a seed without gaps."""

    score: int
    query_start: int
    query_end: int
    subject_start: int
    subject_end: int

    @property
    def length(self) -> int:
        """Extension length in residues."""
        return self.query_end - self.query_start


def extend_ungapped(
    query_codes,
    subject_codes,
    query_offset: int,
    subject_offset: int,
    word_size: int,
    matrix: ScoringMatrix,
    x_drop: int = DEFAULT_X_DROP_UNGAPPED,
) -> UngappedExtension:
    """X-drop ungapped extension of a word hit in both directions."""
    rows = matrix.rows

    # Score of the seed word itself.
    score = 0
    for offset in range(word_size):
        score += rows[query_codes[query_offset + offset]][
            subject_codes[subject_offset + offset]
        ]

    # Extend right of the word.
    best = score
    right = 0
    running = score
    q, s = query_offset + word_size, subject_offset + word_size
    limit = min(len(query_codes) - q, len(subject_codes) - s)
    for step in range(limit):
        running += rows[query_codes[q + step]][subject_codes[s + step]]
        if running > best:
            best = running
            right = step + 1
        elif best - running > x_drop:
            break

    # Extend left of the word.
    total_best = best
    left = 0
    running = best
    limit = min(query_offset, subject_offset)
    for step in range(1, limit + 1):
        running += rows[query_codes[query_offset - step]][
            subject_codes[subject_offset - step]
        ]
        if running > total_best:
            total_best = running
            left = step
        elif total_best - running > x_drop:
            break

    return UngappedExtension(
        score=total_best,
        query_start=query_offset - left,
        query_end=query_offset + word_size + right,
        subject_start=subject_offset - left,
        subject_end=subject_offset + word_size + right,
    )


def extend_gapped(
    query_codes_seq,
    subject_codes_seq,
    seed: UngappedExtension,
    matrix: ScoringMatrix,
    gaps: GapPenalties,
    band: int = DEFAULT_GAPPED_BAND,
) -> int:
    """Gapped extension: banded local DP centered on the seed diagonal.

    NCBI BLAST restarts a dynamic program from the seed midpoint with an
    X-drop band; a fixed-width band centered on the seed diagonal is the
    classic (pre-X-drop) formulation and exercises the same DP code
    path.  Returns the best local score within the band.
    """
    center = seed.subject_start - seed.query_start
    return banded_sw_score(
        query_codes_seq,
        subject_codes_seq,
        center=center,
        width=band,
        matrix=matrix,
        gaps=gaps,
    )
