"""Karlin-Altschul statistics for local alignment scores.

BLAST converts raw Smith-Waterman-style scores into bit scores and
E-values using the Karlin-Altschul parameters ``lambda`` and ``K`` of
the scoring system.  ``lambda`` is the unique positive solution of

    sum_{a,b} p_a * p_b * exp(lambda * s(a, b)) = 1

for background residue frequencies ``p`` and substitution scores ``s``;
we solve it by bisection.  ``K`` is approximated with the standard
high-score regime formula ``K ~= H / lambda * C`` truncated series; the
approximation only needs to be stable and monotone for ranking, which
is how the engine uses it (the paper's runs report scores, ``-b 0``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bio.alphabet import STANDARD_AMINO_ACIDS
from repro.bio.matrices import ScoringMatrix
from repro.bio.synthetic import SWISSPROT_COMPOSITION


class InvalidScoringSystemError(ValueError):
    """Raised when the scoring system has no valid Karlin parameters.

    Karlin-Altschul theory requires a negative expected score and at
    least one positive score; otherwise local alignment statistics are
    undefined.
    """


def _background_frequencies(matrix: ScoringMatrix) -> list[float]:
    frequencies = []
    for code in range(STANDARD_AMINO_ACIDS):
        symbol = matrix.alphabet.symbol_of(code)
        frequencies.append(SWISSPROT_COMPOSITION[symbol])
    total = sum(frequencies)
    return [value / total for value in frequencies]


def expected_score(matrix: ScoringMatrix) -> float:
    """Expected per-pair score under background composition."""
    freqs = _background_frequencies(matrix)
    return sum(
        freqs[a] * freqs[b] * matrix.score(a, b)
        for a in range(STANDARD_AMINO_ACIDS)
        for b in range(STANDARD_AMINO_ACIDS)
    )


def _restriction_sum(matrix: ScoringMatrix, freqs: list[float], lam: float) -> float:
    return sum(
        freqs[a] * freqs[b] * math.exp(lam * matrix.score(a, b))
        for a in range(STANDARD_AMINO_ACIDS)
        for b in range(STANDARD_AMINO_ACIDS)
    )


def solve_lambda(matrix: ScoringMatrix, tolerance: float = 1e-9) -> float:
    """Solve for the Karlin-Altschul lambda by bisection."""
    freqs = _background_frequencies(matrix)
    if expected_score(matrix) >= 0:
        raise InvalidScoringSystemError("expected score must be negative")
    if matrix.max_score() <= 0:
        raise InvalidScoringSystemError("matrix needs at least one positive score")

    low, high = 0.0, 1.0
    while _restriction_sum(matrix, freqs, high) < 1.0:
        high *= 2.0
        if high > 64.0:
            raise InvalidScoringSystemError("failed to bracket lambda")
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if _restriction_sum(matrix, freqs, mid) < 1.0:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


def relative_entropy(matrix: ScoringMatrix, lam: float) -> float:
    """H: expected score per aligned pair in the extreme-value regime."""
    freqs = _background_frequencies(matrix)
    return sum(
        freqs[a]
        * freqs[b]
        * math.exp(lam * matrix.score(a, b))
        * lam
        * matrix.score(a, b)
        for a in range(STANDARD_AMINO_ACIDS)
        for b in range(STANDARD_AMINO_ACIDS)
    )


@dataclass(frozen=True)
class KarlinParameters:
    """lambda/K/H bundle for one scoring system."""

    lam: float
    k: float
    h: float

    def bit_score(self, raw_score: int) -> float:
        """Normalized score in bits."""
        return (self.lam * raw_score - math.log(self.k)) / math.log(2.0)

    def evalue(self, raw_score: int, query_length: int, database_residues: int) -> float:
        """Expected number of chance hits with at least ``raw_score``."""
        return (
            self.k
            * query_length
            * database_residues
            * math.exp(-self.lam * raw_score)
        )


def estimate_parameters(matrix: ScoringMatrix) -> KarlinParameters:
    """Compute lambda exactly and K via the H/lambda approximation.

    The exact K requires summing a slowly converging series over random
    walk ladder epochs; BLAST itself tabulates K for its supported
    scoring systems.  We use the standard first-order approximation
    ``K ~= H / lambda * exp(-1.9 * H / lambda)`` scaled into the range
    of the tabulated BLOSUM values, which is accurate enough for E-value
    ranking (scores drive the paper's behaviour, not E-values).
    """
    parameters = _PARAMETER_MEMO.get(matrix.name)
    if parameters is None:
        lam = solve_lambda(matrix)
        h = relative_entropy(matrix, lam)
        ratio = h / lam
        k = max(1e-3, min(0.5, ratio * math.exp(-1.9 * ratio) * 0.7))
        parameters = KarlinParameters(lam=lam, k=k, h=h)
        _PARAMETER_MEMO[matrix.name] = parameters
    return parameters


#: Memoized parameters per matrix name — the equivalent of BLAST's
#: tabulated lambda/K/H, so engine construction pays the root-solve
#: once per process instead of per query.
_PARAMETER_MEMO: dict[str, KarlinParameters] = {}
