"""BLAST word finding: neighborhood words, lookup table, two-hit scan.

This is the stage the paper's profiling attributes ~75% of BLAST's time
to (``BlastNtWordFinder``/``BlastWordFinder``), and the stage whose
scattered table lookups make BLAST the most memory-bound of the five
applications (paper listing 1 shows its pointer-heavy inner code).

The protein word finder works in three steps:

1. *Neighborhood generation* — for every ``w``-mer of the query, find
   all ``w``-mers whose substitution score against it reaches the
   threshold ``T`` (branch-and-bound over the alphabet).
2. *Lookup table* — map each neighborhood word (an integer in base-20)
   to the query positions it represents.
3. *Two-hit scan* — slide over the subject; every word occurrence is
   looked up, and a hit fires extension only if another hit on the same
   diagonal occurred within ``window`` residues (Altschul 1997
   two-hit heuristic), tracked in a per-diagonal last-hit array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.bio.alphabet import STANDARD_AMINO_ACIDS
from repro.bio.matrices import BLOSUM62, ScoringMatrix

#: Default BLASTP word size and neighborhood threshold.
DEFAULT_WORD_SIZE = 3
DEFAULT_THRESHOLD = 11
#: Default two-hit window (residues along the diagonal).
DEFAULT_WINDOW = 40


def word_index(codes, start: int, word_size: int) -> int:
    """Base-20 integer index of the ``w``-mer at ``codes[start:]``.

    Returns -1 when the word contains a non-standard residue (ambiguity
    codes never enter the lookup table, matching BLAST).
    """
    index = 0
    for offset in range(word_size):
        code = codes[start + offset]
        if code >= STANDARD_AMINO_ACIDS:
            return -1
        index = index * STANDARD_AMINO_ACIDS + code
    return index


def _neighborhood(
    word: tuple[int, ...],
    matrix: ScoringMatrix,
    threshold: int,
) -> Iterator[tuple[int, ...]]:
    """Yield all standard-alphabet words scoring >= threshold vs ``word``.

    Branch-and-bound: positions are filled left to right and a partial
    word is pruned when even best-case completion cannot reach the
    threshold.
    """
    word_size = len(word)
    best_row_score = [
        max(matrix.score(word[pos], code) for code in range(STANDARD_AMINO_ACIDS))
        for pos in range(word_size)
    ]
    suffix_best = [0] * (word_size + 1)
    for pos in range(word_size - 1, -1, -1):
        suffix_best[pos] = suffix_best[pos + 1] + best_row_score[pos]

    candidate = [0] * word_size

    def extend(pos: int, score: int) -> Iterator[tuple[int, ...]]:
        if pos == word_size:
            yield tuple(candidate)
            return
        row = matrix.rows[word[pos]]
        for code in range(STANDARD_AMINO_ACIDS):
            partial = score + row[code]
            if partial + suffix_best[pos + 1] < threshold:
                continue
            candidate[pos] = code
            yield from extend(pos + 1, partial)

    yield from extend(0, 0)


@dataclass(frozen=True)
class WordHit:
    """A two-hit-qualified seed: query/subject offsets of the second hit."""

    query_offset: int
    subject_offset: int

    @property
    def diagonal(self) -> int:
        """Diagonal index (subject offset - query offset)."""
        return self.subject_offset - self.query_offset


class LookupTable:
    """Query neighborhood-word lookup table.

    ``table[word_index]`` is a tuple of query offsets whose neighborhood
    contains that word.  The table spans the full ``20**w`` index space
    (a flat list, like BLAST's presence-bit + cell array), which is the
    large, sparsely-hit structure behind BLAST's cache misses.
    """

    def __init__(
        self,
        query_codes,
        matrix: ScoringMatrix = BLOSUM62,
        word_size: int = DEFAULT_WORD_SIZE,
        threshold: int = DEFAULT_THRESHOLD,
    ) -> None:
        if word_size < 1:
            raise ValueError("word size must be positive")
        self.word_size = word_size
        self.threshold = threshold
        size = STANDARD_AMINO_ACIDS**word_size
        cells: list[list[int] | None] = [None] * size
        for position in range(len(query_codes) - word_size + 1):
            word = tuple(query_codes[position : position + word_size])
            if any(code >= STANDARD_AMINO_ACIDS for code in word):
                continue
            for neighbor in _neighborhood(word, matrix, threshold):
                index = 0
                for code in neighbor:
                    index = index * STANDARD_AMINO_ACIDS + code
                bucket = cells[index]
                if bucket is None:
                    cells[index] = [position]
                else:
                    bucket.append(position)
        self._cells: list[tuple[int, ...] | None] = [
            tuple(bucket) if bucket is not None else None for bucket in cells
        ]
        self.entry_count = sum(
            len(bucket) for bucket in self._cells if bucket is not None
        )

    def __len__(self) -> int:
        return len(self._cells)

    def lookup(self, index: int) -> tuple[int, ...]:
        """Query offsets registered for a word index (empty if none)."""
        if index < 0:
            return ()
        bucket = self._cells[index]
        return bucket if bucket is not None else ()


class TwoHitScanner:
    """Per-subject two-hit diagonal scan.

    ``scan`` yields qualified seeds; ``self.single_hits`` counts raw
    word hits so callers can report selectivity statistics.
    """

    def __init__(
        self,
        lookup: LookupTable,
        query_length: int,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        self.lookup = lookup
        self.query_length = query_length
        self.window = window
        self.single_hits = 0

    def scan(self, subject_codes) -> Iterator[WordHit]:
        """Yield two-hit seeds for one subject sequence."""
        word_size = self.lookup.word_size
        n = len(subject_codes)
        if n < word_size:
            return
        # Diagonal d = subject_offset - query_offset ranges over
        # [-(qlen-1), n-1]; bias to index a flat last-hit array.
        bias = self.query_length - 1
        last_hit = [-(10**9)] * (bias + n)
        for subject_offset in range(n - word_size + 1):
            index = word_index(subject_codes, subject_offset, word_size)
            for query_offset in self.lookup.lookup(index):
                self.single_hits += 1
                diagonal = subject_offset - query_offset + bias
                previous = last_hit[diagonal]
                distance = subject_offset - previous
                if word_size <= distance <= self.window:
                    last_hit[diagonal] = subject_offset
                    yield WordHit(query_offset, subject_offset)
                elif distance > self.window or distance < 0:
                    last_hit[diagonal] = subject_offset
