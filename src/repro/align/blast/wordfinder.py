"""BLAST word finding: neighborhood words, lookup table, two-hit scan.

This is the stage the paper's profiling attributes ~75% of BLAST's time
to (``BlastNtWordFinder``/``BlastWordFinder``), and the stage whose
scattered table lookups make BLAST the most memory-bound of the five
applications (paper listing 1 shows its pointer-heavy inner code).

The protein word finder works in three steps:

1. *Neighborhood generation* — for every ``w``-mer of the query, find
   all ``w``-mers whose substitution score against it reaches the
   threshold ``T`` (branch-and-bound over the alphabet).
2. *Lookup table* — map each neighborhood word (an integer in base-20)
   to the query positions it represents.
3. *Two-hit scan* — slide over the subject; every word occurrence is
   looked up, and a hit fires extension only if another hit on the same
   diagonal occurred within ``window`` residues (Altschul 1997
   two-hit heuristic), tracked in a per-diagonal last-hit array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.bio.alphabet import STANDARD_AMINO_ACIDS
from repro.bio.matrices import BLOSUM62, ScoringMatrix

#: Default BLASTP word size and neighborhood threshold.
DEFAULT_WORD_SIZE = 3
DEFAULT_THRESHOLD = 11
#: Default two-hit window (residues along the diagonal).
DEFAULT_WINDOW = 40


def word_index(codes, start: int, word_size: int) -> int:
    """Base-20 integer index of the ``w``-mer at ``codes[start:]``.

    Returns -1 when the word contains a non-standard residue (ambiguity
    codes never enter the lookup table, matching BLAST).
    """
    index = 0
    for offset in range(word_size):
        code = codes[start + offset]
        if code >= STANDARD_AMINO_ACIDS:
            return -1
        index = index * STANDARD_AMINO_ACIDS + code
    return index


def _neighborhood(
    word: tuple[int, ...],
    matrix: ScoringMatrix,
    threshold: int,
) -> Iterator[tuple[int, ...]]:
    """Yield all standard-alphabet words scoring >= threshold vs ``word``.

    Branch-and-bound: positions are filled left to right and a partial
    word is pruned when even best-case completion cannot reach the
    threshold.
    """
    word_size = len(word)
    best_row_score = [
        max(matrix.score(word[pos], code) for code in range(STANDARD_AMINO_ACIDS))
        for pos in range(word_size)
    ]
    suffix_best = [0] * (word_size + 1)
    for pos in range(word_size - 1, -1, -1):
        suffix_best[pos] = suffix_best[pos + 1] + best_row_score[pos]

    candidate = [0] * word_size

    def extend(pos: int, score: int) -> Iterator[tuple[int, ...]]:
        if pos == word_size:
            yield tuple(candidate)
            return
        row = matrix.rows[word[pos]]
        for code in range(STANDARD_AMINO_ACIDS):
            partial = score + row[code]
            if partial + suffix_best[pos + 1] < threshold:
                continue
            candidate[pos] = code
            yield from extend(pos + 1, partial)

    yield from extend(0, 0)


#: Global neighborhood memo: (matrix name, threshold, word) -> base-20
#: neighbor indices.  A word's neighborhood depends only on the matrix
#: and threshold — never on the query — so distinct queries sharing
#: vocabulary (every real protein) reuse each other's expansions.  This
#: is the table-driven setup real BLAST ships precomputed; here it
#: amortizes engine compilation across a serving workload's queries.
_NEIGHBOR_MEMO: dict[tuple, dict[int, tuple[int, ...]]] = {}
_NEIGHBOR_MEMO_CAP = 200_000


def _neighbor_table(
    matrix: ScoringMatrix, threshold: int, word_size: int
) -> dict[int, tuple[int, ...]]:
    """The (matrix, threshold, word size) neighbor table, int-keyed.

    Maps each word's base-20 index to its neighbors' indices.  Filled
    lazily per word (or all at once by
    :func:`precompute_neighborhoods`); keeping one dict per parameter
    set means the query-compile hot loop pays a single integer-keyed
    lookup per word instead of hashing nested tuples.
    """
    key = (matrix.name, threshold, word_size)
    table = _NEIGHBOR_MEMO.get(key)
    if table is None:
        table = _NEIGHBOR_MEMO[key] = {}
    return table


def neighborhood_indices(
    word: tuple[int, ...], matrix: ScoringMatrix, threshold: int
) -> tuple[int, ...]:
    """Memoized base-20 indices of every neighbor of ``word``."""
    table = _neighbor_table(matrix, threshold, len(word))
    index = 0
    for code in word:
        index = index * STANDARD_AMINO_ACIDS + code
    indices = table.get(index)
    if indices is None:
        if len(table) >= _NEIGHBOR_MEMO_CAP:
            table.clear()
        result = []
        for neighbor in _neighborhood(word, matrix, threshold):
            value = 0
            for code in neighbor:
                value = value * STANDARD_AMINO_ACIDS + code
            result.append(value)
        indices = table[index] = tuple(result)
    return indices


def precompute_neighborhoods(
    matrix: ScoringMatrix = BLOSUM62,
    threshold: int = DEFAULT_THRESHOLD,
    word_size: int = DEFAULT_WORD_SIZE,
) -> int:
    """Expand every possible word's neighborhood into the memo.

    Real BLAST ships its neighbor table precomputed; this is the
    equivalent warm-up, run once per worker process by the serving
    layer so query compilation degrades to memo lookups.  Returns the
    number of table entries (for logging/telemetry).
    """
    entries = 0
    words: list[tuple[int, ...]] = [()]
    for _ in range(word_size):
        words = [
            word + (code,)
            for word in words
            for code in range(STANDARD_AMINO_ACIDS)
        ]
    for word in words:
        entries += len(neighborhood_indices(word, matrix, threshold))
    return entries


def export_neighbor_table(
    matrix_name: str, threshold: int, word_size: int
) -> dict[int, tuple[int, ...]] | None:
    """This process's neighbor memo for one parameter set (or None).

    The artifact store serializes what :func:`precompute_neighborhoods`
    expanded; a partially-filled memo (lazy per-query fills) exports
    too, but callers persisting under a full-table key must precompute
    first.
    """
    table = _NEIGHBOR_MEMO.get((matrix_name, threshold, word_size))
    return dict(table) if table else None


def install_neighbor_table(
    matrix_name: str,
    threshold: int,
    word_size: int,
    table: dict[int, tuple[int, ...]],
) -> None:
    """Adopt a deserialized neighbor table into the process memo.

    Store-first warm-up: a table loaded from the artifact store lands
    here and query compilation proceeds exactly as if
    :func:`precompute_neighborhoods` had run — without the ~0.6 s
    branch-and-bound expansion.
    """
    _NEIGHBOR_MEMO[(matrix_name, threshold, word_size)] = dict(table)


@dataclass(frozen=True)
class WordHit:
    """A two-hit-qualified seed: query/subject offsets of the second hit."""

    query_offset: int
    subject_offset: int

    @property
    def diagonal(self) -> int:
        """Diagonal index (subject offset - query offset)."""
        return self.subject_offset - self.query_offset


class LookupTable:
    """Query neighborhood-word lookup table.

    ``table[word_index]`` is a tuple of query offsets whose neighborhood
    contains that word.  The table spans the full ``20**w`` index space
    (a flat list, like BLAST's presence-bit + cell array), which is the
    large, sparsely-hit structure behind BLAST's cache misses.
    """

    def __init__(
        self,
        query_codes,
        matrix: ScoringMatrix = BLOSUM62,
        word_size: int = DEFAULT_WORD_SIZE,
        threshold: int = DEFAULT_THRESHOLD,
    ) -> None:
        if word_size < 1:
            raise ValueError("word size must be positive")
        self.word_size = word_size
        self.threshold = threshold
        size = STANDARD_AMINO_ACIDS**word_size
        cells: list[list[int] | None] = [None] * size
        occupied: list[int] = []
        entry_count = 0
        table = _neighbor_table(matrix, threshold, word_size)
        for position in range(len(query_codes) - word_size + 1):
            query_index = word_index(query_codes, position, word_size)
            if query_index < 0:
                continue
            neighbors = table.get(query_index)
            if neighbors is None:
                word = tuple(query_codes[position : position + word_size])
                neighbors = neighborhood_indices(word, matrix, threshold)
            entry_count += len(neighbors)
            for index in neighbors:
                bucket = cells[index]
                if bucket is None:
                    cells[index] = [position]
                    occupied.append(index)
                else:
                    bucket.append(position)
        # Buckets stay lists: the scan paths only ever iterate them,
        # and skipping ~one tuple() per occupied cell keeps query
        # compilation cheap on the serving hot path.
        self._cells: list[list[int] | None] = cells
        #: Word indices with at least one entry (batched-scan fast path).
        self.occupied: tuple[int, ...] = tuple(occupied)
        self.entry_count = entry_count

    @classmethod
    def from_cells(
        cls,
        word_size: int,
        threshold: int,
        cells: "list[list[int] | None]",
        occupied: tuple[int, ...],
        entry_count: int,
    ) -> "LookupTable":
        """Rebuild a table from its serialized cells (artifact store).

        Trusted constructor: the caller provides exactly what
        ``__init__`` would have computed for the same query/matrix/
        threshold, so the resulting table scans byte-identically
        without recompiling the query's neighborhoods.
        """
        table = cls.__new__(cls)
        table.word_size = word_size
        table.threshold = threshold
        table._cells = cells
        table.occupied = occupied
        table.entry_count = entry_count
        return table

    def __len__(self) -> int:
        return len(self._cells)

    def lookup(self, index: int) -> "tuple[int, ...] | list[int]":
        """Query offsets registered for a word index (empty if none)."""
        if index < 0:
            return ()
        bucket = self._cells[index]
        return bucket if bucket is not None else ()


class DiagonalTracker:
    """Incremental two-hit state for one query over one subject.

    ``feed(index, subject_offset)`` consumes one subject word position
    and returns the qualified seeds it fires.  Positions must arrive in
    ascending ``subject_offset`` order; the tracker then reproduces
    :meth:`TwoHitScanner.scan` exactly, which is what lets a *batched*
    scanner compute ``word_index`` once per subject position and feed
    every query's tracker from the shared value.
    """

    def __init__(
        self,
        lookup: LookupTable,
        query_length: int,
        subject_length: int,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        self.lookup = lookup
        self.window = window
        self.single_hits = 0
        # Diagonal d = subject_offset - query_offset ranges over
        # [-(qlen-1), n-1]; bias to index a flat last-hit array.
        self.bias = query_length - 1
        self._last_hit = [-(10**9)] * (self.bias + max(subject_length, 1))

    def feed(self, index: int, subject_offset: int) -> list[WordHit]:
        """Process one subject word position; returns fired seeds."""
        bucket = self.lookup.lookup(index)
        if not bucket:
            return []
        return self.feed_bucket(bucket, subject_offset)

    def feed_bucket(
        self, bucket: "tuple[int, ...] | list[int]", subject_offset: int
    ) -> list[WordHit]:
        """Process one position's already-looked-up bucket of offsets.

        The batched scanner resolves the shared word index against a
        combined table once and hands each engine its own bucket here;
        the state transitions are exactly those of :meth:`feed`.
        """
        hits: list[WordHit] = []
        word_size = self.lookup.word_size
        window = self.window
        last_hit = self._last_hit
        bias = self.bias
        self.single_hits += len(bucket)
        for query_offset in bucket:
            diagonal = subject_offset - query_offset + bias
            previous = last_hit[diagonal]
            distance = subject_offset - previous
            if word_size <= distance <= window:
                last_hit[diagonal] = subject_offset
                hits.append(WordHit(query_offset, subject_offset))
            elif distance > window or distance < 0:
                last_hit[diagonal] = subject_offset
        return hits


class TwoHitScanner:
    """Per-subject two-hit diagonal scan.

    ``scan`` yields qualified seeds; ``self.single_hits`` counts raw
    word hits so callers can report selectivity statistics.
    """

    def __init__(
        self,
        lookup: LookupTable,
        query_length: int,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        self.lookup = lookup
        self.query_length = query_length
        self.window = window
        self.single_hits = 0

    def scan(self, subject_codes) -> Iterator[WordHit]:
        """Yield two-hit seeds for one subject sequence."""
        word_size = self.lookup.word_size
        n = len(subject_codes)
        if n < word_size:
            return
        base_hits = self.single_hits
        tracker = DiagonalTracker(
            self.lookup, self.query_length, n, window=self.window
        )
        for subject_offset in range(n - word_size + 1):
            index = word_index(subject_codes, subject_offset, word_size)
            yield from tracker.feed(index, subject_offset)
            self.single_hits = base_hits + tracker.single_hits
