"""Translated search (blastx-style): DNA query vs protein database.

Each of the DNA query's six reading frames is compiled into a protein
BLAST engine; a subject's score is the best score over all frames, and
the reported hit remembers which frame produced it.  This is how
blastx maps uncharacterized DNA reads onto protein databases.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.blast.engine import BlastEngine, BlastOptions
from repro.bio.database import SequenceDatabase
from repro.bio.sequence import Sequence
from repro.bio.translate import TranslatedFrame, six_frame_translation
from repro.align.types import SearchHit, SearchResult


@dataclass(frozen=True)
class FramedHit:
    """A translated-search hit: protein hit plus its reading frame."""

    hit: SearchHit
    frame: int


class BlastxEngine:
    """Six-frame translated protein search."""

    def __init__(
        self, dna_query: Sequence, options: BlastOptions = BlastOptions()
    ) -> None:
        self.query = dna_query
        self.options = options
        self.frames: list[TranslatedFrame] = six_frame_translation(dna_query)
        self._engines = [
            BlastEngine(frame.protein, options) for frame in self.frames
        ]

    def score_subject(self, subject: Sequence) -> tuple[int, int]:
        """Best (score, frame) of the subject over all six frames."""
        best_score = 0
        best_frame = 0
        for frame, engine in zip(self.frames, self._engines):
            score = engine.score_subject(subject)
            if score > best_score:
                best_score = score
                best_frame = frame.frame
        return best_score, best_frame

    def search(self, database: SequenceDatabase) -> list[FramedHit]:
        """Search a protein database; hits sorted by descending score."""
        framed: list[FramedHit] = []
        for index, subject in enumerate(database):
            score, frame = self.score_subject(subject)
            if score <= 0:
                continue
            framed.append(
                FramedHit(
                    hit=SearchHit(
                        score=score,
                        subject_id=subject.identifier,
                        subject_index=index,
                        subject_length=len(subject),
                    ),
                    frame=frame,
                )
            )
        framed.sort(key=lambda item: (-item.hit.score, item.hit.subject_index))
        return framed[: self.options.best_count]

    def as_search_result(
        self, database: SequenceDatabase, framed: list[FramedHit]
    ) -> SearchResult:
        """Repackage framed hits as a standard SearchResult."""
        return SearchResult(
            query_id=self.query.identifier,
            database_name=database.name,
            hits=tuple(item.hit for item in framed),
            sequences_searched=len(database),
            residues_searched=database.residue_count,
        )
