"""BLASTP pipeline: word finding, extension, statistics, engine."""

from repro.align.blast.engine import (
    BlastEngine,
    BlastOptions,
    BlastStatistics,
    blast_search,
)
from repro.align.blast.extension import (
    UngappedExtension,
    extend_gapped,
    extend_ungapped,
)
from repro.align.blast.karlin import (
    InvalidScoringSystemError,
    KarlinParameters,
    estimate_parameters,
    expected_score,
    solve_lambda,
)
from repro.align.blast.nucleotide import (
    BlastnEngine,
    BlastnOptions,
    NucleotideLookup,
)
from repro.align.blast.wordfinder import (
    LookupTable,
    TwoHitScanner,
    WordHit,
    word_index,
)

__all__ = [
    "BlastEngine",
    "BlastOptions",
    "BlastStatistics",
    "blast_search",
    "UngappedExtension",
    "extend_gapped",
    "extend_ungapped",
    "InvalidScoringSystemError",
    "KarlinParameters",
    "estimate_parameters",
    "expected_score",
    "solve_lambda",
    "BlastnEngine",
    "BlastnOptions",
    "NucleotideLookup",
    "LookupTable",
    "TwoHitScanner",
    "WordHit",
    "word_index",
]
