"""Progressive (star) multiple sequence alignment.

The paper's future work names "multiple sequences analysis" as the next
workload to characterize.  This module implements the classic star
alignment: pick the center sequence with the highest total pairwise
similarity, align every other sequence to it globally (Gotoh affine
gaps), and merge the pairwise alignments under the "once a gap, always
a gap" rule.  The result is the textbook 2-approximation of the
sum-of-pairs optimal alignment and the pairwise stage is exactly the
DP workload the paper's SSEARCH analysis covers —
:mod:`repro.kernels.msa_kernel` characterizes it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.needleman_wunsch import needleman_wunsch, nw_score
from repro.align.types import GapPenalties, PAPER_GAPS
from repro.bio.matrices import BLOSUM62, ScoringMatrix
from repro.bio.sequence import Sequence


@dataclass(frozen=True)
class MultipleAlignment:
    """An MSA: one gapped row per input sequence (equal lengths)."""

    identifiers: tuple[str, ...]
    rows: tuple[str, ...]
    center_index: int

    def __post_init__(self) -> None:
        lengths = {len(row) for row in self.rows}
        if len(lengths) > 1:
            raise ValueError("alignment rows must have equal length")
        if len(self.identifiers) != len(self.rows):
            raise ValueError("one identifier per row required")

    @property
    def sequence_count(self) -> int:
        """Number of aligned sequences."""
        return len(self.rows)

    @property
    def column_count(self) -> int:
        """Number of alignment columns."""
        return len(self.rows[0]) if self.rows else 0

    def column(self, index: int) -> str:
        """The residues (and gaps) of one column."""
        return "".join(row[index] for row in self.rows)

    def consensus(self) -> str:
        """Majority residue per column (``-`` only if gaps dominate)."""
        out = []
        for index in range(self.column_count):
            column = self.column(index)
            best = max(set(column), key=lambda c: (column.count(c), c != "-"))
            out.append(best)
        return "".join(out)

    def column_identity(self, index: int) -> float:
        """Fraction of rows agreeing with the column's majority residue."""
        column = self.column(index).replace("-", "")
        if not column:
            return 0.0
        most = max(column.count(c) for c in set(column))
        return most / self.sequence_count

    def sum_of_pairs_score(
        self,
        matrix: ScoringMatrix = BLOSUM62,
        gaps: GapPenalties = PAPER_GAPS,
    ) -> int:
        """Sum of all pairwise alignment scores induced by the MSA.

        Gap runs are charged affinely per pairwise projection; columns
        where both rows have gaps are skipped (standard SP scoring).
        """
        total = 0
        for first in range(self.sequence_count):
            for second in range(first + 1, self.sequence_count):
                total += _pairwise_projection_score(
                    self.rows[first], self.rows[second], matrix, gaps
                )
        return total

    def pretty(self, width: int = 60) -> str:
        """Render the alignment in blocks with identifiers."""
        label_width = max(len(name) for name in self.identifiers)
        lines = []
        for start in range(0, self.column_count, width):
            for name, row in zip(self.identifiers, self.rows):
                lines.append(f"{name:<{label_width}}  {row[start:start + width]}")
            lines.append("")
        return "\n".join(lines).rstrip()


def _pairwise_projection_score(
    row_a: str, row_b: str, matrix: ScoringMatrix, gaps: GapPenalties
) -> int:
    score = 0
    gap_run = 0
    for a, b in zip(row_a, row_b):
        if a == "-" and b == "-":
            continue
        if a == "-" or b == "-":
            gap_run += 1
            continue
        if gap_run:
            score -= gaps.cost(gap_run)
            gap_run = 0
        score += matrix.score_symbols(a, b)
    if gap_run:
        score -= gaps.cost(gap_run)
    return score


def _merge(msa_rows: list[str], center_aligned: str, other_aligned: str) -> None:
    """Merge one pairwise alignment into the growing MSA.

    ``msa_rows[0]`` is the current (gapped) center row; every existing
    row is padded where the new pairwise alignment inserts gaps into
    the center ("once a gap, always a gap"), and the newly aligned
    sequence is appended as the last row.
    """
    old_center = msa_rows[0]
    merged = [""] * len(msa_rows)
    new_row = ""
    i = 0  # position in old_center
    j = 0  # position in center_aligned
    while i < len(old_center) or j < len(center_aligned):
        old_char = old_center[i] if i < len(old_center) else None
        new_char = center_aligned[j] if j < len(center_aligned) else None
        if (
            old_char is not None
            and new_char is not None
            and (old_char == "-") == (new_char == "-")
        ):
            # Columns agree (both residue or both gap): copy through.
            for row_index, row in enumerate(msa_rows):
                merged[row_index] += row[i]
            new_row += other_aligned[j]
            i += 1
            j += 1
        elif old_char == "-":
            # A gap column from an earlier merge: pad the new sequence.
            for row_index, row in enumerate(msa_rows):
                merged[row_index] += row[i]
            new_row += "-"
            i += 1
        else:
            # The new pairwise alignment gaps the center here: pad the
            # whole existing MSA.
            for row_index in range(len(msa_rows)):
                merged[row_index] += "-"
            new_row += other_aligned[j]
            j += 1
    msa_rows[:] = merged
    msa_rows.append(new_row)


def star_msa(
    sequences: list[Sequence],
    matrix: ScoringMatrix = BLOSUM62,
    gaps: GapPenalties = PAPER_GAPS,
) -> MultipleAlignment:
    """Star-alignment MSA of two or more sequences."""
    if len(sequences) < 2:
        raise ValueError("an MSA needs at least two sequences")

    # Center: highest total global similarity to all others.
    totals = []
    for candidate in sequences:
        total = sum(
            nw_score(candidate, other, matrix=matrix, gaps=gaps)
            for other in sequences
            if other is not candidate
        )
        totals.append(total)
    center_index = max(range(len(sequences)), key=totals.__getitem__)
    center = sequences[center_index]

    msa_rows: list[str] = [center.text]
    merge_order: list[int] = [center_index]
    for index, sequence in enumerate(sequences):
        if index == center_index:
            continue
        pairwise = needleman_wunsch(center, sequence, matrix=matrix, gaps=gaps)
        _merge(msa_rows, pairwise.aligned_query, pairwise.aligned_subject)
        merge_order.append(index)

    rows_by_index = {
        index: msa_rows[position] for position, index in enumerate(merge_order)
    }
    ordered_rows = tuple(rows_by_index[i] for i in range(len(sequences)))
    return MultipleAlignment(
        identifiers=tuple(s.identifier for s in sequences),
        rows=ordered_rows,
        center_index=center_index,
    )
