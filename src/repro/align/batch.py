"""Top-level batch search entry points over all three applications.

This module is the seam between the alignment engines and everything
that schedules searches at scale (the ``search_shard`` runtime task
kind, the ``repro.serve`` service): one parameter type covering the
three paper applications, one engine constructor, one shard-scan call
that exploits the batched BLAST scanner, and serializers that turn
results into plain JSON-able dicts for caches and wire protocols.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.align.blast.engine import (
    BlastEngine,
    BlastFinalizer,
    BlastOptions,
    blast_scan_batch,
)
from repro.align.fasta.engine import FastaEngine, FastaOptions
from repro.align.ssearch import SsearchEngine, SsearchOptions
from repro.align.types import (
    GapPenalties,
    SearchHit,
    SearchResult,
    ShardScan,
)
from repro.bio.database import SequenceDatabase
from repro.bio.sequence import Sequence, as_sequence

#: The applications a search request may name (paper Table I).
ALGORITHMS = ("ssearch", "fasta", "blast")

#: Any of the three query-compiled engines (same scan_raw/finalize shape).
SearchEngine = BlastEngine | FastaEngine | SsearchEngine


@dataclass(frozen=True)
class SearchParams:
    """Algorithm selection plus the scoring knobs a request may set.

    Deliberately small: this is the *request-facing* parameter surface,
    and also the grouping key for dynamic batching (requests batch into
    one shard task only when their params match) and part of the
    ``search_shard`` cache key.
    """

    algorithm: str = "blast"
    best_count: int = 500
    gap_open: int = 10
    gap_extend: int = 1
    #: BLAST neighborhood threshold (``blastp -f``); ``None`` keeps the
    #: engine default.  Higher values trade sensitivity for speed by
    #: shrinking the lookup table (fewer word hits per subject).
    threshold: int | None = None

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; "
                f"expected one of {', '.join(ALGORITHMS)}"
            )
        if self.best_count < 1:
            raise ValueError("best_count must be positive")
        if self.threshold is not None and self.threshold < 1:
            raise ValueError("threshold must be positive when set")

    @property
    def gaps(self) -> GapPenalties:
        """The affine gap model these params describe."""
        return GapPenalties(open=self.gap_open, extend=self.gap_extend)

    def key(self) -> tuple:
        """Stable structural identity (batch grouping, cache keys)."""
        return (
            self.algorithm,
            self.best_count,
            self.gap_open,
            self.gap_extend,
            self.threshold,
        )

    @classmethod
    def from_key(cls, key: tuple) -> "SearchParams":
        """Rebuild params from :meth:`key` output."""
        algorithm, best_count, gap_open, gap_extend, threshold = key
        return cls(
            algorithm=str(algorithm),
            best_count=int(best_count),
            gap_open=int(gap_open),
            gap_extend=int(gap_extend),
            threshold=None if threshold is None else int(threshold),
        )


def make_engine(
    params: SearchParams, query: Sequence | str
) -> SearchEngine:
    """Compile a query into the engine ``params.algorithm`` names."""
    if params.algorithm == "ssearch":
        return SsearchEngine(
            query,
            SsearchOptions(best_count=params.best_count, gaps=params.gaps),
        )
    if params.algorithm == "fasta":
        return FastaEngine(
            query,
            FastaOptions(best_count=params.best_count, gaps=params.gaps),
        )
    return BlastEngine(query, blast_options(params))


def blast_options(params: SearchParams) -> BlastOptions:
    """BLAST engine options for one parameter set (shared with the
    artifact store, which keys per-query lookup tables off them)."""
    options = BlastOptions(best_count=params.best_count, gaps=params.gaps)
    if params.threshold is not None:
        options = replace(options, threshold=params.threshold)
    return options


def make_finalizer(
    params: SearchParams, query: Sequence | str
) -> SearchEngine | BlastFinalizer:
    """Build the cheapest object able to finalize shard scans.

    The merge side of a sharded search never scans, so for BLAST it
    skips query compilation (the lookup table) entirely; the other
    engines compile nothing heavy and are returned as-is.
    """
    if params.algorithm == "blast":
        return BlastFinalizer(query, blast_options(params))
    return make_engine(params, query)


def scan_shard(
    params: SearchParams,
    engines: list[SearchEngine],
    database: SequenceDatabase,
    shard_index: int,
    shard_count: int,
) -> list[ShardScan]:
    """Scan one database shard for a batch of query-compiled engines.

    Returns one :class:`ShardScan` per engine, in order.  BLAST batches
    share a single pass over the shard (word indices computed once per
    subject position); the raw scores are byte-identical to per-query
    ``scan_raw`` calls either way.
    """
    start, _ = database.shard_bounds(shard_count)[shard_index]
    shard = database.shard(shard_index, shard_count)
    if params.algorithm == "blast" and len(engines) > 1:
        return blast_scan_batch(engines, shard, offset=start)
    return [engine.scan_raw(shard, offset=start) for engine in engines]


def search_one(
    params: SearchParams,
    query: Sequence | str,
    database: SequenceDatabase,
) -> SearchResult:
    """Unsharded single-query search (the reference for shard merges)."""
    return make_engine(params, query).search(database)


def merge_shards(
    params: SearchParams,
    query: Sequence | str,
    scans: list[ShardScan],
    database_name: str,
) -> SearchResult:
    """Merge per-shard raw scans into the final ranked result.

    ``scans`` must be ordered by shard index so the concatenated raw
    entries are in database order — then the merged ranking (and every
    statistics annotation) is byte-identical to the unsharded scan.
    """
    return make_engine(params, query).finalize(list(scans), database_name)


# -- serialization (wire protocol + cache entries) ------------------------


def hit_to_dict(hit: SearchHit, rank: int | None = None) -> dict:
    """JSON-serializable form of one :class:`SearchHit`."""
    data = {
        "subject_id": hit.subject_id,
        "subject_index": hit.subject_index,
        "subject_length": hit.subject_length,
        "score": hit.score,
        "evalue": hit.evalue,
        "bit_score": hit.bit_score,
    }
    if rank is not None:
        data["rank"] = rank
    return data


def hit_from_dict(data: dict) -> SearchHit:
    """Rebuild a :class:`SearchHit` from :func:`hit_to_dict` output."""
    return SearchHit(
        score=int(data["score"]),
        subject_id=str(data["subject_id"]),
        subject_index=int(data["subject_index"]),
        subject_length=int(data["subject_length"]),
        evalue=float(data.get("evalue", float("inf"))),
        bit_score=float(data.get("bit_score", 0.0)),
    )


def result_to_dict(result: SearchResult) -> dict:
    """JSON-serializable form of one :class:`SearchResult`."""
    return {
        "query_id": result.query_id,
        "database_name": result.database_name,
        "sequences_searched": result.sequences_searched,
        "residues_searched": result.residues_searched,
        "hits": [
            hit_to_dict(hit, rank=rank)
            for rank, hit in enumerate(result.hits, start=1)
        ],
    }


def result_from_dict(data: dict) -> SearchResult:
    """Rebuild a :class:`SearchResult` from :func:`result_to_dict`."""
    return SearchResult(
        query_id=str(data["query_id"]),
        database_name=str(data["database_name"]),
        hits=tuple(hit_from_dict(entry) for entry in data["hits"]),
        sequences_searched=int(data["sequences_searched"]),
        residues_searched=int(data["residues_searched"]),
    )


def make_query(identifier: str, text: str) -> Sequence:
    """Build a query :class:`Sequence` from wire-level fields."""
    return as_sequence(text, identifier=identifier or "query")
