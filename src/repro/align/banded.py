"""Banded affine-gap local alignment.

FASTA's final ``opt`` stage rescans only a diagonal band around the best
initial diagonal region instead of the full DP matrix — that is where
most of its speed over Smith-Waterman comes from.  The band is defined
by diagonal offsets: cell (i, j) (1-based query/subject positions) lies
on diagonal ``d = j - i`` and is evaluated only when
``center - width <= d <= center + width``.

When the band covers every diagonal the result equals the full
Smith-Waterman score — a property the test suite checks.

Two implementations compute the identical integer score:

* :func:`_banded_sw_score_scalar` — the reference cell-by-cell loop.
* a vectorized kernel that walks query rows and evaluates each row's
  band slice with numpy.  The within-row gap state (a gap in the query,
  ``E``) looks sequential, but because a one-residue gap never costs
  less than an extension (``open >= 0``), the recurrence
  ``E_j = max(H_{j-1} - go, E_{j-1} - ge)`` collapses exactly to a
  running maximum of ``C_u + u * ge`` over the cells to the left — one
  ``np.maximum.accumulate`` per row.  The cross-row gap state (``F``)
  and the diagonal term come elementwise from the previous row.

The vectorized path is what makes BLAST's gapped extension (and
FASTA's ``opt`` rescan) cheap enough for the serving hot path; the
scalar path remains the oracle the tests compare against and the
fallback for exotic gap models.
"""

from __future__ import annotations

import numpy as np

from repro.align.types import GapPenalties, PAPER_GAPS
from repro.bio.matrices import BLOSUM62, ScoringMatrix
from repro.bio.sequence import Sequence, as_sequence

_NEG_INF = -(10**9)

#: Scoring matrices as int64 arrays, keyed by matrix name (the rows are
#: immutable per name, so the cache never goes stale).
_MATRIX_ARRAYS: dict[str, np.ndarray] = {}


def _matrix_array(matrix: ScoringMatrix) -> np.ndarray:
    array = _MATRIX_ARRAYS.get(matrix.name)
    if array is None:
        array = np.array(matrix.rows, dtype=np.int64)
        _MATRIX_ARRAYS[matrix.name] = array
    return array


def banded_sw_score(
    query: Sequence | str,
    subject: Sequence | str,
    center: int,
    width: int,
    matrix: ScoringMatrix = BLOSUM62,
    gaps: GapPenalties = PAPER_GAPS,
) -> int:
    """Best local alignment score within a diagonal band.

    Parameters
    ----------
    center:
        Center diagonal ``j - i`` of the band (0 = main diagonal).
    width:
        Half-width; the band spans ``2 * width + 1`` diagonals.
    """
    if width < 0:
        raise ValueError("band width must be non-negative")
    q = as_sequence(query).codes
    s = as_sequence(subject).codes
    if not q or not s:
        return 0

    gap_first = gaps.first_residue_cost
    gap_extend = gaps.extend
    if gap_first < gap_extend:
        # The accumulate trick needs opening a gap to cost at least one
        # extension; no sane affine model violates this, but the scalar
        # loop handles it regardless.
        return _banded_sw_score_scalar(
            q, s, center, width, matrix, gaps
        )

    m = len(q)
    n = len(s)
    lo_diag = center - width
    hi_diag = center + width
    band = hi_diag - lo_diag + 1

    scores = _matrix_array(matrix)
    q_codes = np.frombuffer(bytes(q), dtype=np.uint8)
    s_codes = np.frombuffer(bytes(s), dtype=np.uint8)

    # Banded match-score plane, gathered once: ``match_band[i - 1, t]``
    # is the substitution score of query residue i against the subject
    # residue on diagonal ``lo_diag + t`` of row i.  Out-of-range cells
    # gather a clipped garbage value, but the row windows below never
    # read them.  m x band stays small even for long FASTA rescans.
    if m * band <= (1 << 22):
        diag_j = (
            np.arange(m, dtype=np.intp)[:, None]
            + np.arange(band, dtype=np.intp)[None, :]
            + lo_diag
        )
        match_band = scores[q_codes[:, None], s_codes[diag_j.clip(0, n - 1)]]
    else:
        # Very long sequences with a wide band: gather row by row
        # rather than materializing a huge plane.
        match_band = None

    # Row state over diagonals d in [lo_diag, hi_diag] (index d - lo).
    # Cells outside the row's valid j-range hold H = 0 / F = -inf,
    # which is exactly how the scalar loop treats out-of-band
    # neighbours; the extra trailing slot is the permanent
    # above-the-band sentinel read through the d + 1 shift.  Two
    # buffers alternate so each row writes straight into "next" state
    # instead of copying through intermediates.
    h_prev = np.zeros(band + 1, dtype=np.int64)
    f_prev = np.full(band + 1, _NEG_INF, dtype=np.int64)
    h_next = np.zeros(band + 1, dtype=np.int64)
    f_next = np.full(band + 1, _NEG_INF, dtype=np.int64)
    scratch = np.empty(band, dtype=np.int64)
    extend_ramp = np.arange(band, dtype=np.int64) * gap_extend
    open_ramp = extend_ramp + gap_first
    maximum, subtract, add = np.maximum, np.subtract, np.add
    run_max = np.maximum.accumulate
    best = 0
    for i in range(1, m + 1):
        d_lo = max(lo_diag, 1 - i)
        d_hi = min(hi_diag, n - i)
        if d_lo > d_hi:
            if n - i < lo_diag:
                break  # band has moved past the subject for good
            h_prev[:band] = 0
            f_prev[:band] = _NEG_INF
            continue
        a = d_lo - lo_diag
        b = d_hi - lo_diag + 1
        length = b - a
        if match_band is not None:
            match = match_band[i - 1, a:b]
        else:
            match = scores[q[i - 1]][s_codes[i + d_lo - 1:i + d_hi]]
        # F comes from the cell above: diagonal d + 1 in the previous
        # row (the sentinel slot covers d = hi_diag).
        f_row = f_next[a:b]
        subtract(h_prev[a + 1:b + 1], gap_first, out=f_row)
        c_row = h_next[a:b]
        subtract(f_prev[a + 1:b + 1], gap_extend, out=c_row)
        maximum(f_row, c_row, out=f_row)
        add(h_prev[a:b], match, out=c_row)
        maximum(c_row, f_row, out=c_row)
        maximum(c_row, 0, out=c_row)
        if length > 1:
            # E_t = max_{u<t} (C_u - gap_first - (t-1-u) * gap_extend)
            #     = runmax(C_u + u*ge)[t-1] - gap_first - (t-1) * ge
            run = scratch[:length]
            add(c_row, extend_ramp[:length], out=run)
            run_max(run, out=run)
            e_row = run[:-1]
            subtract(e_row, open_ramp[:length - 1], out=e_row)
            maximum(c_row[1:], e_row, out=c_row[1:])
        row_best = int(c_row.max())
        if row_best > best:
            best = row_best
        if a:
            h_next[:a] = 0
            f_next[:a] = _NEG_INF
        if b < band:
            h_next[b:band] = 0
            f_next[b:band] = _NEG_INF
        h_prev, h_next = h_next, h_prev
        f_prev, f_next = f_next, f_prev
    return best


def banded_sw_scores_batch(
    jobs: list[tuple],
    width: int,
    matrix: ScoringMatrix = BLOSUM62,
    gaps: GapPenalties = PAPER_GAPS,
) -> list[int]:
    """Banded scores for many (query, subject, center) pairs at once.

    ``jobs`` is a list of ``(query_codes, subject_codes, center)``
    triples sharing one band width, matrix, and gap model.  The K DP
    recurrences run in lockstep on stacked ``(K, band)`` rows, so the
    per-row numpy dispatch cost — which dominates these small banded
    problems — is paid once for the whole batch instead of once per
    pair.  This is what makes BLAST's gapped-extension stage cheap in
    batched database scans: a scan's extensions are collected and
    resolved here in one call.

    Each score is exactly ``banded_sw_score(q, s, center, width)``.
    Out-of-range cells carry a large negative match score, which makes
    them compute ``H = 0`` — precisely the out-of-band treatment of the
    single-pair kernels — without per-pair window arithmetic.
    """
    if width < 0:
        raise ValueError("band width must be non-negative")
    if not jobs:
        return []
    gap_first = gaps.first_residue_cost
    gap_extend = gaps.extend
    if gap_first < gap_extend:
        return [
            _banded_sw_score_scalar(q, s, center, width, matrix, gaps)
            for q, s, center in jobs
        ]
    count = len(jobs)
    band = 2 * width + 1
    rows = max(len(q) for q, _, _ in jobs)
    if rows == 0:
        return [0] * count
    scores = _matrix_array(matrix)
    # Match planes: match[k, i - 1, t] scores query residue i of job k
    # against the subject residue on band diagonal t; cells outside the
    # job's query/subject ranges get a poison value that forces H = 0.
    invalid = -(10**7)
    match = np.full((count, rows, band), invalid, dtype=np.int64)
    offsets = np.arange(band, dtype=np.intp)
    for k, (q, s, center) in enumerate(jobs):
        if not q or not s:
            continue
        q_codes = np.frombuffer(bytes(q), dtype=np.uint8)
        s_codes = np.frombuffer(bytes(s), dtype=np.uint8)
        m, n = len(q_codes), len(s_codes)
        diag_j = (
            np.arange(m, dtype=np.intp)[:, None]
            + offsets[None, :]
            + (center - width)
        )
        gathered = scores[q_codes[:, None], s_codes[diag_j.clip(0, n - 1)]]
        match[k, :m] = np.where(
            (diag_j >= 0) & (diag_j < n), gathered, invalid
        )

    h_prev = np.zeros((count, band + 1), dtype=np.int64)
    f_prev = np.full((count, band + 1), _NEG_INF, dtype=np.int64)
    h_next = np.zeros((count, band + 1), dtype=np.int64)
    f_next = np.full((count, band + 1), _NEG_INF, dtype=np.int64)
    scratch = np.empty((count, band), dtype=np.int64)
    best = np.zeros(count, dtype=np.int64)
    extend_ramp = np.arange(band, dtype=np.int64) * gap_extend
    open_ramp = extend_ramp + gap_first
    maximum, subtract, add = np.maximum, np.subtract, np.add
    run_max = np.maximum.accumulate
    for r in range(rows):
        f_row = f_next[:, :band]
        subtract(h_prev[:, 1:], gap_first, out=f_row)
        c_row = h_next[:, :band]
        subtract(f_prev[:, 1:], gap_extend, out=c_row)
        maximum(f_row, c_row, out=f_row)
        add(h_prev[:, :band], match[:, r, :], out=c_row)
        maximum(c_row, f_row, out=c_row)
        maximum(c_row, 0, out=c_row)
        if band > 1:
            add(c_row, extend_ramp, out=scratch)
            run_max(scratch, axis=1, out=scratch)
            subtract(scratch[:, :-1], open_ramp[:-1], out=scratch[:, :-1])
            maximum(c_row[:, 1:], scratch[:, :-1], out=c_row[:, 1:])
        maximum(best, c_row.max(axis=1), out=best)
        h_prev, h_next = h_next, h_prev
        f_prev, f_next = f_next, f_prev
    return [int(value) for value in best]


def _banded_sw_score_scalar(
    q, s, center: int, width: int, matrix: ScoringMatrix, gaps: GapPenalties
) -> int:
    """Reference implementation: one cell at a time, column-major."""
    gap_first = gaps.first_residue_cost
    gap_extend = gaps.extend
    rows = matrix.rows

    m = len(q)
    lo_diag = center - width
    hi_diag = center + width

    h_row = [0] * (m + 1)
    e_row = [_NEG_INF] * (m + 1)
    best = 0
    for j in range(1, len(s) + 1):
        score_row = rows[s[j - 1]]
        # Band limits for this column: lo_diag <= j - i <= hi_diag.
        i_min = max(1, j - hi_diag)
        i_max = min(m, j - lo_diag)
        if i_min > i_max:
            continue
        # The diagonal predecessor of the first in-band cell is
        # (i_min - 1, j - 1), which is either the H[0][*] boundary or the
        # first in-band cell of the previous column — h_row still holds it.
        diag = h_row[i_min - 1]
        f = _NEG_INF
        if i_min > 1:
            # The cell above the band edge is outside the band.
            h_row[i_min - 1] = 0
        for i in range(i_min, i_max + 1):
            on_right_edge = (j - i) == lo_diag
            e = _NEG_INF if on_right_edge else max(
                h_row[i] - gap_first, e_row[i] - gap_extend
            )
            f = max(h_row[i - 1] - gap_first, f - gap_extend)
            h = diag + score_row[q[i - 1]]
            if e > h:
                h = e
            if f > h:
                h = f
            if h < 0:
                h = 0
            diag = h_row[i]
            h_row[i] = h
            e_row[i] = e
            if h > best:
                best = h
        # Invalidate the cell below the band for the next column's F.
        if i_max < m:
            h_row[i_max + 1] = 0
            e_row[i_max + 1] = _NEG_INF
    return best
