"""Banded affine-gap local alignment.

FASTA's final ``opt`` stage rescans only a diagonal band around the best
initial diagonal region instead of the full DP matrix — that is where
most of its speed over Smith-Waterman comes from.  The band is defined
by diagonal offsets: cell (i, j) (1-based query/subject positions) lies
on diagonal ``d = j - i`` and is evaluated only when
``center - width <= d <= center + width``.

When the band covers every diagonal the result equals the full
Smith-Waterman score — a property the test suite checks.
"""

from __future__ import annotations

from repro.align.types import GapPenalties, PAPER_GAPS
from repro.bio.matrices import BLOSUM62, ScoringMatrix
from repro.bio.sequence import Sequence, as_sequence

_NEG_INF = -(10**9)


def banded_sw_score(
    query: Sequence | str,
    subject: Sequence | str,
    center: int,
    width: int,
    matrix: ScoringMatrix = BLOSUM62,
    gaps: GapPenalties = PAPER_GAPS,
) -> int:
    """Best local alignment score within a diagonal band.

    Parameters
    ----------
    center:
        Center diagonal ``j - i`` of the band (0 = main diagonal).
    width:
        Half-width; the band spans ``2 * width + 1`` diagonals.
    """
    if width < 0:
        raise ValueError("band width must be non-negative")
    q = as_sequence(query).codes
    s = as_sequence(subject).codes
    if not q or not s:
        return 0

    gap_first = gaps.first_residue_cost
    gap_extend = gaps.extend
    rows = matrix.rows

    m = len(q)
    lo_diag = center - width
    hi_diag = center + width

    h_row = [0] * (m + 1)
    e_row = [_NEG_INF] * (m + 1)
    best = 0
    for j in range(1, len(s) + 1):
        score_row = rows[s[j - 1]]
        # Band limits for this column: lo_diag <= j - i <= hi_diag.
        i_min = max(1, j - hi_diag)
        i_max = min(m, j - lo_diag)
        if i_min > i_max:
            continue
        # The diagonal predecessor of the first in-band cell is
        # (i_min - 1, j - 1), which is either the H[0][*] boundary or the
        # first in-band cell of the previous column — h_row still holds it.
        diag = h_row[i_min - 1]
        f = _NEG_INF
        if i_min > 1:
            # The cell above the band edge is outside the band.
            h_row[i_min - 1] = 0
        for i in range(i_min, i_max + 1):
            on_right_edge = (j - i) == lo_diag
            e = _NEG_INF if on_right_edge else max(
                h_row[i] - gap_first, e_row[i] - gap_extend
            )
            f = max(h_row[i - 1] - gap_first, f - gap_extend)
            h = diag + score_row[q[i - 1]]
            if e > h:
                h = e
            if f > h:
                h = f
            if h < 0:
                h = 0
            diag = h_row[i]
            h_row[i] = h
            e_row[i] = e
            if h > best:
                best = h
        # Invalidate the cell below the band for the next column's F.
        if i_max < m:
            h_row[i_max + 1] = 0
            e_row[i_max + 1] = _NEG_INF
    return best
